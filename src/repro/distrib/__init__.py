"""Distributed campaign execution: deterministic shards over the wire.

The campaign engine (:mod:`repro.campaign`) shards deterministically,
checkpoints atomically, and survives local worker death — this package
takes the same shards off the machine.  A **worker node** (``repro
worker --serve``, :mod:`.worker`) is a thin threaded JSON-lines service
that evaluates serialized :class:`~repro.campaign.spec.ShardSpec`\\ s in
its warm process pool, heartbeating while they run.  A **coordinator**
(:mod:`.coordinator`) leases unfinished shards to every connected node
(plus optional local pool slots) with per-shard deadlines, re-leases
from dead or silent nodes, and discards late duplicate results soundly
— shards are deterministic, so any attempt's result is the right one
(:mod:`.lease` states the argument).  :mod:`.run` binds the coordinator
to the checkpoint run-dir, which doubles as the coordination substrate:
a crashed fleet resumes byte-identically via ``repro campaign resume
--workers ...``.  :mod:`.wire` is the pure serialization layer over the
:mod:`repro.service.protocol` framing.

Layering (staticcheck R003): distrib is the topmost layer — it imports
campaign and the service *protocol* module, and nothing imports it but
the CLI.  Determinism (R002) holds package-wide except the three
clock-exempt process-facing files.  Protocol, lease semantics, and the
failure model are documented in ``docs/DISTRIBUTED.md``.
"""

from .coordinator import (Coordinator, DistribConfig, DistribError,
                          NodeSpec, parse_worker_nodes)
from .lease import Lease, LeaseTable
from .run import run_distributed_campaign, run_distributed_trace_campaign
from .wire import WORKER_PROTOCOL_VERSION, WORKER_VERBS
from .worker import WorkerServer, serve_worker

__all__ = [
    "WORKER_PROTOCOL_VERSION",
    "WORKER_VERBS",
    "Lease",
    "LeaseTable",
    "NodeSpec",
    "parse_worker_nodes",
    "DistribConfig",
    "DistribError",
    "Coordinator",
    "WorkerServer",
    "serve_worker",
    "run_distributed_campaign",
    "run_distributed_trace_campaign",
]
