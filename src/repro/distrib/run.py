"""Distributed campaigns end to end: grid in, byte-identical rows out.

:func:`run_distributed_campaign` is the distributed twin of
:func:`repro.campaign.sched.run_schedulability_campaign` — same grid
planning, same checkpoint store, same row assembly, same ``result.json``
serialisation — with shard evaluation farmed out through a
:class:`~repro.distrib.coordinator.Coordinator` instead of (or mixed
with) the local pool.  The byte-identity guarantee follows from three
shared pieces: shards are planned and seeded identically, wire points
reuse the checkpoint codec (JSON round-trips ints and doubles exactly),
and rows are assembled by the very same ``assemble_rows`` call — so
``result.json`` from a distributed, interrupted, resumed run matches a
pure-local uninterrupted run bit for bit (the CI ``distrib-smoke`` job
and ``tests/test_distrib.py`` both assert it).

:func:`run_distributed_trace_campaign` is the same machine pointed at a
real log: the grid is a :class:`~repro.traces.replay.TraceGrid`, each
``shard-run`` frame additionally carries its window's task pool, and
rows come from ``assemble_trace_rows`` — the coordination, leasing,
checkpointing, and resume code paths are literally shared
(:func:`_drive`), so the trace path inherits every fault-tolerance
property the synthetic path is tested for.

A ``run_dir`` is **required** here, unlike the local path: the
checkpoint run-dir *is* the coordination substrate — completed shards
on disk are exactly the shards never leased again, which is what makes
``repro campaign resume --workers ...`` correct after killing any
subset of the fleet.

Status written here extends the local schema with per-worker
attribution (from the progress tracker), per-shard lease history (from
the lease table), and the coordinator's backpressure counters.  This
file reads clocks for those snapshots and is R002 clock-exempt like
``campaign/runner.py``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Set, Union)

from ..analysis.experiments import CampaignRow
from ..analysis.persistence import save_campaign
from ..analysis.schedulability import SchedulabilityPoint
from ..campaign.checkpoint import CheckpointStore, RunDirError
from ..campaign.progress import ProgressTracker
from ..campaign.runner import CampaignIncomplete, _utc_now
from ..campaign.sched import assemble_rows
from ..campaign.spec import CampaignGrid, GridLike
from ..overheads.model import OverheadModel
from ..traces.mapping import MappingConfig
from ..traces.replay import (TraceGrid, TraceWindowPayload,
                             assemble_trace_rows, build_window_payloads)
from ..traces.fetch import sha256_file
from ..traces.swf import parse_swf
from .coordinator import Coordinator, DistribConfig, NodeSpec

__all__ = ["run_distributed_campaign", "run_distributed_trace_campaign"]


def run_distributed_campaign(
    n_tasks: int,
    utilizations: Sequence[float],
    *,
    nodes: Sequence[NodeSpec],
    run_dir: str,
    sets_per_point: int = 50,
    seed: int = 0,
    model: Optional[OverheadModel] = None,
    progress: Optional[Callable[[str], None]] = None,
    replicas: int = 1,
    resume: bool = False,
    config: Optional[DistribConfig] = None,
) -> List[CampaignRow]:
    """The Fig. 3/4 campaign across a worker fleet (plus optional local
    slots via ``config.local_jobs``); returns the assembled rows.

    Semantics match :func:`~repro.campaign.sched.
    run_schedulability_campaign` with a durable run directory: shards
    checkpoint atomically as they arrive (now with ``worker``
    provenance), failures past the retry budget raise
    :class:`~repro.campaign.runner.CampaignIncomplete` with the
    directory left resumable, and ``KeyboardInterrupt`` writes an
    ``interrupted`` status before propagating.
    """
    grid = CampaignGrid(n_tasks=n_tasks, utilizations=tuple(utilizations),
                        sets_per_point=sets_per_point, seed=seed,
                        replicas=replicas)
    return _drive(
        grid, nodes=nodes, run_dir=run_dir, model=model, resume=resume,
        config=config, payloads=None,
        assemble=lambda results: assemble_rows(grid, results,
                                               progress=progress),
        result_note=f"campaign N={grid.n_tasks} "
                    f"({len(grid.utilizations)} points)",
        manifest_note=f"distributed: {len(nodes)} node(s)")


def run_distributed_trace_campaign(
    trace_path: Union[str, Path],
    *,
    nodes: Sequence[NodeSpec],
    run_dir: str,
    utilizations: Sequence[float] = (),
    n_tasks: int = 0,
    window_seconds: int = 3600,
    window_offsets: Sequence[int] = (0,),
    sets_per_point: int = 50,
    seed: int = 0,
    mapping: Optional[MappingConfig] = None,
    model: Optional[OverheadModel] = None,
    progress: Optional[Callable[[str], None]] = None,
    replicas: int = 1,
    resume: bool = False,
    config: Optional[DistribConfig] = None,
    grid: Optional[TraceGrid] = None,
) -> List[CampaignRow]:
    """A trace-replay campaign across a worker fleet.

    Mirrors :func:`repro.traces.replay.run_trace_campaign` the way
    :func:`run_distributed_campaign` mirrors the local synthetic path:
    the trace file is hashed and pinned (resume refuses a modified
    log), each window is mapped once here on the coordinator, and the
    payloads ride inside the ``shard-run`` frames so worker nodes need
    no access to the trace file.
    """
    path = Path(trace_path)
    digest = sha256_file(path)
    if grid is None:
        grid = TraceGrid(trace_name=path.name, trace_sha256=digest,
                         window_seconds=window_seconds,
                         window_offsets=tuple(window_offsets),
                         utilizations=tuple(utilizations),
                         n_tasks=n_tasks, sets_per_point=sets_per_point,
                         seed=seed, replicas=replicas,
                         mapping=mapping or MappingConfig())
    elif digest != grid.trace_sha256:
        raise ValueError(
            f"{path}: SHA-256 {digest} does not match the campaign's "
            f"pinned trace {grid.trace_sha256} ({grid.trace_name}) — "
            f"the log changed since the run started; resume needs the "
            f"original file")
    log = parse_swf(path, strict=False)
    payloads, rejected = build_window_payloads(log, grid)
    if rejected and progress is not None:
        progress(f"skipped {len(rejected)} degenerate job(s) "
                 f"(zero runtime / unusable width)")
    final_grid = grid
    return _drive(
        grid, nodes=nodes, run_dir=run_dir, model=model, resume=resume,
        config=config, payloads=payloads,
        assemble=lambda results: assemble_trace_rows(final_grid, results,
                                                     progress=progress),
        result_note=f"trace-replay {grid.trace_name} "
                    f"({len(grid.window_offsets)} window(s) x "
                    f"{len(grid.utilizations)} points, "
                    f"window={grid.window_seconds}s)",
        manifest_note=f"distributed trace-replay: {len(nodes)} node(s)")


def _drive(grid: GridLike, *, nodes: Sequence[NodeSpec], run_dir: str,
           model: Optional[OverheadModel], resume: bool,
           config: Optional[DistribConfig],
           payloads: Optional[Mapping[str, TraceWindowPayload]],
           assemble: Callable[[Dict[str, List[SchedulabilityPoint]]],
                              List[CampaignRow]],
           result_note: str, manifest_note: str) -> List[CampaignRow]:
    """The shared coordination body: plan, restore, lease, checkpoint,
    assemble.  Synthetic and trace campaigns differ only in the grid
    that plans the shards, the optional per-shard payloads, and the
    assembler — everything fault-tolerant lives here, once."""
    store = CheckpointStore(run_dir)
    fingerprint = None if model is None else repr(model)
    store.initialize(grid, model_fingerprint=fingerprint,
                     created=_utc_now(), note=manifest_note)

    shards = grid.plan()
    by_id = {s.shard_id: s for s in shards}
    results: Dict[str, List[SchedulabilityPoint]] = {}
    done_before: Set[str] = set()

    existing = store.completed_shards() & set(by_id)
    if existing and not resume:
        raise RunDirError(
            f"{store.run_dir} already holds {len(existing)} completed "
            f"shard(s); use resume, or a fresh directory for a new run")
    if resume:
        for sid in sorted(existing):
            results[sid] = store.read_shard(sid)
        done_before = existing

    tracker = ProgressTracker(len(shards),
                              completed_before_start=len(done_before))
    tracker.start(time.monotonic())
    todo = [s for s in shards if s.shard_id not in done_before]

    def finish() -> List[CampaignRow]:
        rows = assemble(results)
        # Same save_campaign call as the local path, argument for
        # argument — the byte-identity contract.
        save_campaign(store.result_path(), rows,
                      seed=getattr(grid, "seed", 0),
                      sets_per_point=getattr(grid, "sets_per_point", 0),
                      note=result_note)
        return rows

    if not todo:
        # Everything was already checkpointed: assemble and finish
        # without touching the fleet.
        store.write_status(tracker.snapshot(time.monotonic(),
                                            state="complete",
                                            updated=_utc_now()))
        return finish()

    todo_payloads: Optional[Dict[str, Any]] = None
    if payloads is not None:
        todo_payloads = {s.shard_id: payloads[s.shard_id] for s in todo}
    coord = Coordinator(todo, model, nodes=nodes, config=config,
                        payloads=todo_payloads)

    def write_status(state: str) -> None:
        snap = tracker.snapshot(time.monotonic(), state=state,
                                updated=_utc_now())
        snap["distrib"] = coord.stats()
        snap["shards"] = coord.attribution()
        store.write_status(snap)

    def on_success(shard_id: str, points: List[SchedulabilityPoint],
                   attempts: int, elapsed: float, worker: str) -> None:
        results[shard_id] = points
        store.write_shard(by_id[shard_id], points, attempts=attempts,
                          elapsed_seconds=round(elapsed, 6), worker=worker)
        tracker.record_success(elapsed, worker)
        write_status("running")

    def on_retry(shard_id: str, reason: str,
                 worker: Optional[str]) -> None:
        tracker.record_retry(reason, worker)
        write_status("running")

    write_status("running")
    try:
        failed = coord.run(on_success=on_success, on_retry=on_retry,
                           on_tick=lambda: write_status("running"))
    except KeyboardInterrupt:
        write_status("interrupted")
        raise
    if failed:
        write_status("failed")
        raise CampaignIncomplete(failed)
    write_status("complete")
    return finish()
