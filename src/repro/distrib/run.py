"""Distributed campaigns end to end: grid in, byte-identical rows out.

:func:`run_distributed_campaign` is the distributed twin of
:func:`repro.campaign.sched.run_schedulability_campaign` — same grid
planning, same checkpoint store, same row assembly, same ``result.json``
serialisation — with shard evaluation farmed out through a
:class:`~repro.distrib.coordinator.Coordinator` instead of (or mixed
with) the local pool.  The byte-identity guarantee follows from three
shared pieces: shards are planned and seeded identically, wire points
reuse the checkpoint codec (JSON round-trips ints and doubles exactly),
and rows are assembled by the very same ``assemble_rows`` call — so
``result.json`` from a distributed, interrupted, resumed run matches a
pure-local uninterrupted run bit for bit (the CI ``distrib-smoke`` job
and ``tests/test_distrib.py`` both assert it).

A ``run_dir`` is **required** here, unlike the local path: the
checkpoint run-dir *is* the coordination substrate — completed shards
on disk are exactly the shards never leased again, which is what makes
``repro campaign resume --workers ...`` correct after killing any
subset of the fleet.

Status written here extends the local schema with per-worker
attribution (from the progress tracker), per-shard lease history (from
the lease table), and the coordinator's backpressure counters.  This
file reads clocks for those snapshots and is R002 clock-exempt like
``campaign/runner.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..analysis.experiments import CampaignRow
from ..analysis.persistence import save_campaign
from ..analysis.schedulability import SchedulabilityPoint
from ..campaign.checkpoint import CheckpointStore, RunDirError
from ..campaign.progress import ProgressTracker
from ..campaign.runner import CampaignIncomplete, _utc_now
from ..campaign.sched import assemble_rows
from ..campaign.spec import CampaignGrid, plan_shards
from ..overheads.model import OverheadModel
from .coordinator import Coordinator, DistribConfig, NodeSpec

__all__ = ["run_distributed_campaign"]


def run_distributed_campaign(
    n_tasks: int,
    utilizations: Sequence[float],
    *,
    nodes: Sequence[NodeSpec],
    run_dir: str,
    sets_per_point: int = 50,
    seed: int = 0,
    model: Optional[OverheadModel] = None,
    progress: Optional[Callable[[str], None]] = None,
    replicas: int = 1,
    resume: bool = False,
    config: Optional[DistribConfig] = None,
) -> List[CampaignRow]:
    """The Fig. 3/4 campaign across a worker fleet (plus optional local
    slots via ``config.local_jobs``); returns the assembled rows.

    Semantics match :func:`~repro.campaign.sched.
    run_schedulability_campaign` with a durable run directory: shards
    checkpoint atomically as they arrive (now with ``worker``
    provenance), failures past the retry budget raise
    :class:`~repro.campaign.runner.CampaignIncomplete` with the
    directory left resumable, and ``KeyboardInterrupt`` writes an
    ``interrupted`` status before propagating.
    """
    grid = CampaignGrid(n_tasks=n_tasks, utilizations=tuple(utilizations),
                        sets_per_point=sets_per_point, seed=seed,
                        replicas=replicas)
    store = CheckpointStore(run_dir)
    fingerprint = None if model is None else repr(model)
    store.initialize(grid, model_fingerprint=fingerprint,
                     created=_utc_now(),
                     note=f"distributed: {len(nodes)} node(s)")

    shards = plan_shards(grid)
    by_id = {s.shard_id: s for s in shards}
    results: Dict[str, List[SchedulabilityPoint]] = {}
    done_before: Set[str] = set()

    existing = store.completed_shards() & set(by_id)
    if existing and not resume:
        raise RunDirError(
            f"{store.run_dir} already holds {len(existing)} completed "
            f"shard(s); use resume, or a fresh directory for a new run")
    if resume:
        for sid in sorted(existing):
            results[sid] = store.read_shard(sid)
        done_before = existing

    tracker = ProgressTracker(len(shards),
                              completed_before_start=len(done_before))
    tracker.start(time.monotonic())
    todo = [s for s in shards if s.shard_id not in done_before]

    if not todo:
        # Everything was already checkpointed: assemble and finish
        # without touching the fleet.
        store.write_status(tracker.snapshot(time.monotonic(),
                                            state="complete",
                                            updated=_utc_now()))
        return _finish(store, grid, results, progress,
                       seed=seed, sets_per_point=sets_per_point)

    coord = Coordinator(todo, model, nodes=nodes, config=config)

    def write_status(state: str) -> None:
        snap = tracker.snapshot(time.monotonic(), state=state,
                                updated=_utc_now())
        snap["distrib"] = coord.stats()
        snap["shards"] = coord.attribution()
        store.write_status(snap)

    def on_success(shard_id: str, points: List[SchedulabilityPoint],
                   attempts: int, elapsed: float, worker: str) -> None:
        results[shard_id] = points
        store.write_shard(by_id[shard_id], points, attempts=attempts,
                          elapsed_seconds=round(elapsed, 6), worker=worker)
        tracker.record_success(elapsed, worker)
        write_status("running")

    def on_retry(shard_id: str, reason: str,
                 worker: Optional[str]) -> None:
        tracker.record_retry(reason, worker)
        write_status("running")

    write_status("running")
    try:
        failed = coord.run(on_success=on_success, on_retry=on_retry,
                           on_tick=lambda: write_status("running"))
    except KeyboardInterrupt:
        write_status("interrupted")
        raise
    if failed:
        write_status("failed")
        raise CampaignIncomplete(failed)
    write_status("complete")
    return _finish(store, grid, results, progress,
                   seed=seed, sets_per_point=sets_per_point)


def _finish(store: CheckpointStore, grid: CampaignGrid,
            results: Dict[str, List[SchedulabilityPoint]],
            progress: Optional[Callable[[str], None]], *,
            seed: int, sets_per_point: int) -> List[CampaignRow]:
    """Assemble rows and write ``result.json`` exactly as the local path
    does — the same call, argument for argument, is the byte-identity
    contract (compare :func:`repro.campaign.sched.
    run_schedulability_campaign`)."""
    rows = assemble_rows(grid, results, progress=progress)
    save_campaign(store.result_path(), rows, seed=seed,
                  sets_per_point=sets_per_point,
                  note=f"campaign N={grid.n_tasks} "
                       f"({len(grid.utilizations)} points)")
    return rows
