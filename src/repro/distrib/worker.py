"""The worker node: ``repro worker --serve`` — shards in, points out.

A worker is a thin, threaded JSON-lines TCP service around the warm
campaign :class:`~repro.campaign.pool.WorkerPool`: one accept thread,
one thread per connection, evaluation in pool *processes* so a crashing
shard kills a disposable child and not the node.  Verbs are defined in
:mod:`repro.distrib.wire`; the framing is byte-compatible with the
admission service's (``nc`` works for debugging).

While a ``shard-run`` computes, the connection thread emits a heartbeat
frame every ``heartbeat_interval`` seconds.  That one detail carries the
whole failure model: the coordinator's per-shard lease deadlines can be
tight (a couple of heartbeat periods) because *liveness* — not
completion — resets them, so a dead or partitioned node is detected in
seconds while an honest long shard runs undisturbed.

Worker deaths inside the node are recovered exactly like the local
runner recovers them: the poisoned pool is discarded and the shard
resubmitted, bounded by ``max_pool_rebuilds``; past the budget the
coordinator gets an error response and charges the shard's retry
budget, never the node's liveness.

This file reads clocks (heartbeat pacing, stats uptime) and is exempted
from the R002 clock rule exactly like ``campaign/runner.py``; shard
*results* never depend on them.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, BinaryIO, Callable, Dict, Optional, Tuple

from ..campaign.pool import discard_worker_pool, worker_pool
from ..campaign.sched import evaluate_shard
from ..service.protocol import (MAX_LINE_BYTES, ProtocolError, decode_line,
                                encode, error_response, ok_response,
                                parse_request)
from ..traces.replay import evaluate_trace_shard
from ..util.metrics import Counter, LatencyHistogram
from .wire import (WORKER_PROTOCOL_VERSION, WORKER_VERBS, heartbeat_frame,
                   parse_shard_run, points_to_wire)

__all__ = ["WorkerServer", "serve_worker"]


class _WorkerMetrics:
    """Lifetime counters for one worker node, shared by every connection
    thread — all access goes through ``self._lock`` (the internally
    locked pattern staticcheck R007 recognises)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._shards = Counter()
        self._points = Counter()
        self._heartbeats = Counter()
        self._latency = LatencyHistogram()

    def record_shard(self, outcome: str, points: int,
                     elapsed: float) -> None:
        with self._lock:
            self._shards.inc(outcome)
            self._points.inc(n=points)
            self._latency.observe(elapsed)

    def record_heartbeat(self) -> None:
        with self._lock:
            self._heartbeats.inc()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "shards": self._shards.as_dict(),
                "points_produced": self._points.total(),
                "heartbeats_sent": self._heartbeats.total(),
                "shard_latency": self._latency.summary(),
            }


class WorkerServer:
    """A shard-evaluation node serving :data:`~repro.distrib.wire.
    WORKER_VERBS` over blocking sockets and threads.

    All mutable server state (listener, connection registry, stop flag)
    is guarded by ``self._lock``; the metrics object locks itself.  The
    evaluation itself runs in the warm process pool, so ``jobs``
    concurrent connections genuinely use ``jobs`` cores.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 jobs: int = 1, heartbeat_interval: float = 1.0,
                 max_pool_rebuilds: int = 1,
                 evaluator: Optional[Callable[..., Any]] = None,
                 trace_evaluator: Optional[Callable[..., Any]] = None
                 ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.jobs = jobs
        self.heartbeat_interval = heartbeat_interval
        self.max_pool_rebuilds = max_pool_rebuilds
        #: Module-level shard evaluators (pool-picklable); tests inject
        #: the fault-raising stand-ins from tests/campaign_fault_workers.
        #: ``evaluator`` answers synthetic ``shard-run`` frames,
        #: ``trace_evaluator`` the ones carrying a ``trace`` payload.
        self.evaluator = evaluator if evaluator is not None \
            else evaluate_shard
        self.trace_evaluator = trace_evaluator \
            if trace_evaluator is not None else evaluate_trace_shard
        self.metrics = _WorkerMetrics()
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: Dict[int, socket.socket] = {}
        self._conn_seq = 0
        self._stopping = threading.Event()
        self._started_at = 0.0
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and begin accepting; returns ``(host, port)``
        (the ephemeral port when 0 was requested)."""
        with self._lock:
            if self._listener is not None:
                raise RuntimeError("worker server already started")
            listener = socket.create_server((self._host, self._port))
            listener.settimeout(0.2)
            self._listener = listener
            self.address = listener.getsockname()[:2]
            self._started_at = time.monotonic()
            self._stopping.clear()
            thread = threading.Thread(target=self._accept_loop,
                                      name="repro-worker-accept",
                                      daemon=True)
            self._accept_thread = thread
        thread.start()
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 5.0) -> None:
        """Close the listener and every connection; join the accept
        thread (idempotent)."""
        self._stopping.set()
        with self._lock:
            listener, self._listener = self._listener, None
            thread, self._accept_thread = self._accept_thread, None
            conns = list(self._conns.values())
            self._conns.clear()
        if listener is not None:
            listener.close()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if thread is not None:
            thread.join(timeout)

    def wait(self) -> None:
        """Block until ``shutdown`` is requested (the CLI serve loop)."""
        self._stopping.wait()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- connection handling ------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                listener = self._listener
            if listener is None:
                return
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    continue
                self._conn_seq += 1
                key = self._conn_seq
                self._conns[key] = conn
            threading.Thread(target=self._serve_connection,
                             args=(key, conn),
                             name=f"repro-worker-conn-{key}",
                             daemon=True).start()

    def _serve_connection(self, key: int, conn: socket.socket) -> None:
        try:
            with conn.makefile("rwb") as stream:
                while not self._stopping.is_set():
                    line = stream.readline(MAX_LINE_BYTES + 1)
                    if not line:
                        return
                    if not self._answer(stream, line):
                        return
        except (OSError, ValueError):
            pass  # peer vanished mid-line: nothing to answer
        finally:
            with self._lock:
                self._conns.pop(key, None)
            conn.close()

    def _answer(self, stream: BinaryIO, line: bytes) -> bool:
        """Handle one request line; False ends the connection."""
        rid: Any = None
        try:
            obj = decode_line(line)
            rid = obj.get("id")
            rid, verb = parse_request(obj, verbs=WORKER_VERBS)
            if verb == "shutdown":
                # Answer before tripping the stop event — the serve
                # loop's stop() races this thread for the socket.
                stream.write(encode(ok_response(rid, closing=True)))
                stream.flush()
                self._stopping.set()
                return False
            if verb == "shard-run":
                response = self._run_shard(rid, obj, stream)
            else:
                response = self._dispatch(rid, verb)
        except (ProtocolError,) as exc:
            response = error_response(rid, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 — the node must not die
            response = error_response(rid, "internal",
                                      f"{type(exc).__name__}: {exc}")
        stream.write(encode(response))
        stream.flush()
        return not self._stopping.is_set()

    def _dispatch(self, rid: Any, verb: str) -> Dict[str, Any]:
        if verb == "ping":
            return ok_response(rid, pong=True, role="worker",
                               version=WORKER_PROTOCOL_VERSION)
        if verb == "worker-stats":
            return ok_response(
                rid, jobs=self.jobs,
                uptime_seconds=round(time.monotonic() - self._started_at, 3),
                **self.metrics.snapshot())
        raise ProtocolError("unknown-verb", f"unhandled verb {verb!r}")

    def _run_shard(self, rid: Any, obj: Dict[str, Any],
                   stream: BinaryIO) -> Dict[str, Any]:
        """Evaluate one shard in the pool, heartbeating while it runs."""
        spec, model, trace = parse_shard_run(obj)
        if trace is None:
            runner, args = self.evaluator, (spec, model)
        else:
            runner, args = self.trace_evaluator, (spec, model, trace)
        started = time.monotonic()
        rebuilds = 0
        fut = worker_pool(self.jobs).submit(runner, args)
        while True:
            try:
                points = fut.result(timeout=self.heartbeat_interval)
                break
            except FutureTimeout:
                stream.write(encode(heartbeat_frame(rid)))
                stream.flush()
                self.metrics.record_heartbeat()
            except BrokenProcessPool:
                # Same recovery the local runner performs: the poisoned
                # pool is discarded and the shard resubmitted, bounded
                # by the rebuild budget.
                discard_worker_pool()
                rebuilds += 1
                if rebuilds > self.max_pool_rebuilds:
                    self.metrics.record_shard(
                        "error", 0, time.monotonic() - started)
                    return error_response(
                        rid, "worker-death",
                        f"shard {spec.shard_id} killed its pool worker "
                        f"{rebuilds} time(s); rebuild budget exhausted")
                fut = worker_pool(self.jobs).submit(runner, args)
            except Exception as exc:  # the shard itself raised
                self.metrics.record_shard(
                    "error", 0, time.monotonic() - started)
                return error_response(rid, "shard-error",
                                      f"{type(exc).__name__}: {exc}")
        elapsed = time.monotonic() - started
        self.metrics.record_shard("ok", len(points), elapsed)
        return ok_response(rid, shard_id=spec.shard_id,
                           points=points_to_wire(points),
                           elapsed_seconds=round(elapsed, 6))


def serve_worker(host: str, port: int, *, jobs: int = 1,
                 heartbeat_interval: float = 1.0) -> Tuple[str, int]:
    """Run a worker node until ``shutdown`` (the ``repro worker --serve``
    body); returns the address it served on."""
    server = WorkerServer(host, port, jobs=jobs,
                          heartbeat_interval=heartbeat_interval)
    address = server.start()
    try:
        server.wait()
    finally:
        server.stop()
    return address
