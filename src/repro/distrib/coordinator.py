"""The coordinator: lease shards to a fleet, survive the fleet.

One :class:`Coordinator` drives one campaign's unfinished shards to
completion across remote worker nodes (``repro worker --serve``) and an
optional local process-pool slice.  The design is lease-based, not
push-based: every connection *slot* (one per pool job on each node)
pulls the next pending shard from the :class:`~repro.distrib.lease.
LeaseTable`, ships it over the wire, and blocks reading frames; the
table's deadlines — pushed forward by the worker's heartbeat frames —
are what detect dead, partitioned, or wedged nodes, and an expired or
lost lease simply re-pends its shard for whoever is alive.  Because
shards are deterministic, the first result to arrive is accepted and
every later duplicate is discarded unread (see ``lease.py`` for the
soundness argument).

Failure semantics mirror the local runner's (``campaign/runner.py``):

* **error** — the worker answered ``ok: false``: budgeted against the
  shard's ``max_retries``, then failed (the run directory stays
  resumable).
* **expiry / lost node** — the lease deadline passed, or the connection
  died: unbudgeted re-lease, exactly like local worker-death recovery
  (the shard did nothing wrong).
* **no sources left** — every node is gone and no local slots exist:
  outstanding shards are abandoned and reported as failed rather than
  waiting forever.

Results flow through a **bounded** queue: slot threads block once
``queue_capacity`` results are waiting for the coordinator thread to
drain (checkpointing is the slow side on huge grids), so a fast fleet
applies backpressure instead of growing the heap.  Stall counts are
surfaced in :meth:`Coordinator.stats` and ``status.json``.

Thread model: N slot threads (one per remote slot plus ``local_jobs``
local evaluators) produce into the queue; the caller's thread runs
:meth:`Coordinator.run` and is the only consumer and the only writer of
checkpoints.  All shared state (the lease table, counters) is guarded
by ``self._lock``.  This file reads clocks (deadlines, throughput) and
is R002 clock-exempt like ``campaign/runner.py``; shard *results* never
depend on them.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.schedulability import SchedulabilityPoint
from ..campaign.pool import discard_worker_pool, worker_pool
from ..campaign.sched import evaluate_shard
from ..campaign.spec import ShardSpec
from ..overheads.model import OverheadModel
from ..service.protocol import ProtocolError, decode_line, encode
from ..traces.replay import evaluate_trace_shard
from .lease import LeaseTable
from .wire import (WORKER_PROTOCOL_VERSION, is_heartbeat, model_to_wire,
                   points_from_wire, shard_run_request)

__all__ = ["NodeSpec", "parse_worker_nodes", "DistribConfig",
           "DistribError", "Coordinator"]

#: Callback fired once per accepted shard result:
#: ``(shard_id, points, attempts, elapsed_seconds, worker)``.
OnSuccess = Callable[[str, List[SchedulabilityPoint], int, float, str], None]
#: Callback fired on every requeue: ``(shard_id, reason, worker)``.
OnRetry = Callable[[str, str, Optional[str]], None]


class DistribError(RuntimeError):
    """A distributed run could not start or lost its whole fleet."""


@dataclass(frozen=True)
class NodeSpec:
    """One worker node address."""

    host: str
    port: int

    @property
    def label(self) -> str:
        """The node's name in leases, attribution, and status output."""
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "NodeSpec":
        """Parse ``host:port`` (the CLI ``--workers`` element form)."""
        host, sep, port = text.strip().rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"worker node must be host:port, got {text!r}")
        return cls(host=host, port=int(port))


def parse_worker_nodes(text: str) -> List[NodeSpec]:
    """Parse the CLI's ``--workers host1:port,host2:port`` list."""
    nodes = [NodeSpec.parse(part)
             for part in text.split(",") if part.strip()]
    if not nodes:
        raise ValueError("empty worker node list")
    if len({n.label for n in nodes}) != len(nodes):
        raise ValueError("duplicate worker nodes in list")
    return nodes


@dataclass(frozen=True)
class DistribConfig:
    """Coordination policy knobs.

    ``lease_timeout`` is the *soft* per-shard deadline — it must exceed
    the workers' heartbeat interval (1 s by default) by a comfortable
    factor, since heartbeats are what keep an honest long shard's lease
    alive.  ``shard_deadline`` is the optional *hard* cap a heartbeating
    but wedged node cannot extend.  ``local_jobs`` adds that many warm
    process-pool evaluators alongside the remote fleet (0 = remote
    only).  ``queue_capacity`` bounds the result queue (backpressure —
    see the module docstring).
    """

    local_jobs: int = 0
    lease_timeout: float = 15.0
    shard_deadline: Optional[float] = None
    connect_timeout: float = 5.0
    max_retries: int = 2
    max_pool_rebuilds: int = 3
    queue_capacity: int = 64
    poll_interval_seconds: float = 0.05
    status_interval_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.local_jobs < 0:
            raise ValueError("local_jobs must be nonnegative")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.shard_deadline is not None and \
                self.shard_deadline <= self.lease_timeout:
            raise ValueError(
                "shard_deadline (hard) must exceed lease_timeout (soft)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")


#: Result-queue items: ("done", worker, shard, epoch, points, elapsed),
#: ("fail", worker, shard, epoch, message), or ("lost", worker, detail).
_Event = Tuple[Any, ...]


class Coordinator:
    """Distributed dispatch of one campaign's unfinished shards.

    All shared state is guarded by ``self._lock``; slot threads touch it
    only through the small ``_next_lease`` / ``_note_heartbeat`` /
    ``_emit`` methods, and the run loop is the single consumer of the
    result queue and single caller of the success/retry callbacks (so
    checkpoint writes stay single-writer, as the store requires).
    """

    def __init__(self, shards: Sequence[ShardSpec],
                 model: Optional[OverheadModel], *,
                 nodes: Sequence[NodeSpec] = (),
                 config: Optional[DistribConfig] = None,
                 payloads: Optional[Dict[str, Any]] = None) -> None:
        if not shards:
            raise ValueError("a distributed run needs at least one shard")
        self.config = config or DistribConfig()
        if not nodes and self.config.local_jobs == 0:
            raise DistribError(
                "no shard sources: give at least one worker node or "
                "local_jobs > 0")
        # Fail fast on models that cannot cross the wire (custom
        # callables have no signature) — before any node is touched.
        if nodes:
            model_to_wire(model)
        self.nodes = tuple(nodes)
        self.model = model
        # Trace-replay window payloads keyed by shard id (None for
        # synthetic campaigns).  Shipped inside each shard-run frame —
        # workers stay stateless, so any node can take any lease.
        self.payloads = payloads
        self._by_id = {s.shard_id: s for s in shards}
        self._lock = threading.Lock()
        self._table = LeaseTable([s.shard_id for s in shards])
        self._results: "queue.Queue[_Event]" = queue.Queue(
            maxsize=self.config.queue_capacity)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._sockets: List[socket.socket] = []
        self._sources = 0          # live slot threads (all kinds)
        self._queue_stalls = 0     # puts that found the queue full
        self._expiries = 0
        self._lost_leases = 0

    # -- slot-thread helpers (each takes the lock briefly) ------------

    def _next_lease(self, worker: str) -> Optional[Tuple[ShardSpec, int]]:
        """Lease the next pending shard to ``worker`` (None when idle)."""
        with self._lock:
            lease = self._table.lease(
                worker, time.monotonic(), self.config.lease_timeout,
                self.config.shard_deadline)
            if lease is None:
                return None
            return self._by_id[lease.shard_id], lease.epoch

    def _note_heartbeat(self, worker: str) -> None:
        with self._lock:
            self._table.heartbeat(worker, time.monotonic(),
                                  self.config.lease_timeout)

    def _emit(self, event: _Event) -> None:
        """Queue one event, blocking when the coordinator is behind
        (the backpressure point — stalls are counted, never dropped)."""
        try:
            self._results.put_nowait(event)
        except queue.Full:
            with self._lock:
                self._queue_stalls += 1
            self._results.put(event)

    def _source_started(self) -> None:
        with self._lock:
            self._sources += 1

    def _source_stopped(self) -> None:
        with self._lock:
            self._sources -= 1

    # -- remote slots -------------------------------------------------

    def _connect(self, node: NodeSpec) -> socket.socket:
        """Open, version-check, and register one connection to a node."""
        sock = socket.create_connection(
            (node.host, node.port), timeout=self.config.connect_timeout)
        with sock.makefile("rwb") as stream:
            stream.write(encode({"id": 0, "verb": "ping"}))
            stream.flush()
            resp = decode_line(stream.readline())
        if not resp.get("ok") or resp.get("role") != "worker":
            sock.close()
            raise DistribError(f"{node.label} is not a repro worker node")
        if resp.get("version") != WORKER_PROTOCOL_VERSION:
            sock.close()
            raise DistribError(
                f"{node.label} speaks worker protocol "
                f"{resp.get('version')!r}, need {WORKER_PROTOCOL_VERSION}")
        with self._lock:
            self._sockets.append(sock)
        return sock

    def _probe_jobs(self, node: NodeSpec) -> int:
        """Ask a node how many pool jobs it runs (= slots to open)."""
        sock = self._connect(node)
        try:
            with sock.makefile("rwb") as stream:
                stream.write(encode({"id": 0, "verb": "worker-stats"}))
                stream.flush()
                resp = decode_line(stream.readline())
        finally:
            sock.close()
            with self._lock:
                if sock in self._sockets:
                    self._sockets.remove(sock)
        jobs = resp.get("jobs")
        if not resp.get("ok") or not isinstance(jobs, int) or jobs < 1:
            raise DistribError(f"{node.label}: bad worker-stats response")
        return jobs

    def _remote_slot(self, node: NodeSpec, slot: int) -> None:
        """One connection's lease→ship→collect loop (slot thread body)."""
        worker = node.label
        self._source_started()
        try:
            sock = self._connect(node)
        except (OSError, DistribError, ProtocolError) as exc:
            self._source_stopped()
            self._emit(("lost", worker, f"connect: {exc}"))
            return
        # Reads block on worker heartbeats (1 s cadence); a silent
        # connection for a whole lease period means the node is gone.
        sock.settimeout(self.config.lease_timeout)
        try:
            with sock.makefile("rwb") as stream:
                while not self._stop.is_set():
                    leased = self._next_lease(worker)
                    if leased is None:
                        time.sleep(self.config.poll_interval_seconds)
                        continue
                    spec, epoch = leased
                    trace = None if self.payloads is None \
                        else self.payloads[spec.shard_id].to_wire()
                    stream.write(encode(
                        {**shard_run_request(spec, self.model, trace),
                         "id": epoch}))
                    stream.flush()
                    started = time.monotonic()
                    while True:
                        resp = decode_line(stream.readline())
                        if is_heartbeat(resp):
                            self._note_heartbeat(worker)
                            continue
                        break
                    if resp.get("ok"):
                        self._emit(("done", worker, spec.shard_id, epoch,
                                    points_from_wire(resp.get("points")),
                                    time.monotonic() - started))
                    else:
                        err = resp.get("error") or {}
                        self._emit(("fail", worker, spec.shard_id, epoch,
                                    f"{err.get('code', 'error')}: "
                                    f"{err.get('message', '')}"))
        except (OSError, ValueError, ProtocolError) as exc:
            if not self._stop.is_set():
                self._emit(("lost", worker, f"{type(exc).__name__}: {exc}"))
        finally:
            self._source_stopped()
            sock.close()

    # -- local slots --------------------------------------------------

    def _local_slot(self, slot: int) -> None:
        """One local warm-pool evaluator (slot thread body)."""
        worker = "local"
        self._source_started()
        rebuilds = 0
        try:
            while not self._stop.is_set():
                leased = self._next_lease(worker)
                if leased is None:
                    time.sleep(self.config.poll_interval_seconds)
                    continue
                spec, epoch = leased
                started = time.monotonic()
                if self.payloads is None:
                    runner: Callable[..., Any] = evaluate_shard
                    args: Tuple[Any, ...] = (spec, self.model)
                else:
                    runner = evaluate_trace_shard
                    args = (spec, self.model,
                            self.payloads[spec.shard_id])
                try:
                    fut = worker_pool(self.config.local_jobs).submit(
                        runner, args)
                    while True:
                        try:
                            points = fut.result(timeout=0.2)
                            break
                        except FutureTimeout:
                            if self._stop.is_set():
                                # Abandon the attempt (the warm pool
                                # finishes it harmlessly; the result is
                                # simply never read).
                                return
                except BrokenProcessPool:
                    # Unbudgeted pool rebuild, like the local runner —
                    # but bounded per slot so a poisoned environment
                    # cannot spin forever.
                    discard_worker_pool()
                    rebuilds += 1
                    if rebuilds > self.config.max_pool_rebuilds:
                        self._emit(("lost", worker,
                                    "local pool rebuild budget exhausted"))
                        return
                    self._emit(("fail", worker, spec.shard_id, epoch,
                                "worker-death: local pool broke"))
                    continue
                except Exception as exc:  # the shard itself raised
                    self._emit(("fail", worker, spec.shard_id, epoch,
                                f"shard-error: {exc}"))
                    continue
                self._emit(("done", worker, spec.shard_id, epoch, points,
                            time.monotonic() - started))
        finally:
            self._source_stopped()

    # -- the run loop (caller's thread; single consumer) --------------

    def run(self, *, on_success: OnSuccess,
            on_retry: Optional[OnRetry] = None,
            on_tick: Optional[Callable[[], None]] = None) -> List[str]:
        """Drive every shard to success or retry exhaustion.

        ``on_success(shard_id, points, attempts, elapsed, worker)``
        fires exactly once per shard, on this thread, in arrival order
        (never for discarded duplicates).  ``on_retry(shard_id, reason,
        worker)`` fires on every requeue with reason ``"error"``,
        ``"expired"``, or ``"worker-lost"``.  Returns the failed shard
        ids (empty on full success).
        """
        cfg = self.config
        for node in self.nodes:
            jobs = self._probe_jobs(node)  # raises on a dead/alien node
            for slot in range(jobs):
                self._threads.append(threading.Thread(
                    target=self._remote_slot, args=(node, slot),
                    name=f"repro-distrib-{node.label}-{slot}", daemon=True))
        for slot in range(cfg.local_jobs):
            self._threads.append(threading.Thread(
                target=self._local_slot, args=(slot,),
                name=f"repro-distrib-local-{slot}", daemon=True))
        for thread in self._threads:
            thread.start()

        attempts: Dict[str, int] = {}
        last_tick = time.monotonic()
        try:
            while True:
                with self._lock:
                    if self._table.finished:
                        break
                    sources = self._sources
                    outstanding = self._table.outstanding
                if sources == 0 and outstanding > 0:
                    # The whole fleet is gone: fail what's left loudly
                    # rather than spinning (the run dir stays resumable).
                    with self._lock:
                        abandoned = self._table.abandon_outstanding()
                    if on_retry is not None:
                        for sid in sorted(abandoned):
                            on_retry(sid, "worker-lost", None)
                    break
                try:
                    # Arrival order is thread-scheduling order, and
                    # _handle is accept-first: the first completion for
                    # a shard wins and duplicates are discarded, so any
                    # arrival order yields the same checkpoint set (the
                    # run dir is keyed by shard id, not event order).
                    event = self._results.get(  # staticcheck: allow[R014]
                        timeout=cfg.poll_interval_seconds)
                except queue.Empty:
                    event = None
                while event is not None:
                    self._handle(event, attempts, on_success, on_retry)
                    try:
                        # Same accept-first argument as above.
                        event = self._results.get_nowait()  # staticcheck: allow[R014]
                    except queue.Empty:
                        event = None

                now = time.monotonic()
                with self._lock:
                    expired = self._table.expire(now)
                    self._expiries += len(expired)
                if on_retry is not None:
                    for sid, worker in expired:
                        on_retry(sid, "expired", worker)
                if on_tick is not None and \
                        now - last_tick >= cfg.status_interval_seconds:
                    on_tick()
                    last_tick = now
        finally:
            self.close()
        with self._lock:
            return sorted(self._table.failed)

    def _handle(self, event: _Event, attempts: Dict[str, int],
                on_success: OnSuccess,
                on_retry: Optional[OnRetry]) -> None:
        """Apply one slot-thread event to the table (lock held briefly;
        callbacks run outside it)."""
        kind = event[0]
        if kind == "done":
            _, worker, shard_id, epoch, points, elapsed = event
            attempts[shard_id] = attempts.get(shard_id, 0) + 1
            with self._lock:
                accepted = self._table.complete(shard_id, worker, epoch)
            if accepted:
                on_success(shard_id, points, attempts[shard_id],
                           elapsed, worker)
        elif kind == "fail":
            _, worker, shard_id, epoch, _message = event
            attempts[shard_id] = attempts.get(shard_id, 0) + 1
            with self._lock:
                self._table.fail(shard_id, epoch, self.config.max_retries)
            if on_retry is not None:
                on_retry(shard_id, "error", worker)
        elif kind == "lost":
            _, worker, _detail = event
            with self._lock:
                dropped = self._table.drop_worker(worker)
                self._lost_leases += len(dropped)
            if on_retry is not None:
                for sid in dropped:
                    on_retry(sid, "worker-lost", worker)

    def close(self) -> None:
        """Stop slot threads and close every connection (idempotent).

        Draining continues while threads wind down so none stays blocked
        on a full result queue.
        """
        self._stop.set()
        with self._lock:
            sockets, self._sockets = self._sockets, []
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        for thread in self._threads:
            while thread.is_alive():
                try:
                    self._results.get_nowait()
                except queue.Empty:
                    pass
                thread.join(0.05)
        self._threads = []

    # -- observability ------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Coordination counters for ``status.json`` and tests:
        backpressure stalls, duplicate discards, expiries, lost leases,
        live sources."""
        with self._lock:
            return {
                "queue_stalls": self._queue_stalls,
                "queue_capacity": self.config.queue_capacity,
                "duplicates_discarded": self._table.duplicates,
                "leases_expired": self._expiries,
                "leases_lost": self._lost_leases,
                "live_sources": self._sources,
            }

    def attribution(self) -> Dict[str, Any]:
        """Per-shard attribution (see :meth:`~repro.distrib.lease.
        LeaseTable.attribution`) for ``repro campaign status --shards``."""
        with self._lock:
            return self._table.attribution()
