"""Wire format for distributed shard dispatch: worker verbs and payloads.

The distributed layer speaks the exact JSON-lines framing of
:mod:`repro.service.protocol` (one UTF-8 JSON object per line, ``id``
echoed verbatim), but with its own verb set — a worker node is a *shard
evaluator*, not an admission server, and registering the verbs here
keeps the two vocabularies from drifting into one another:

* ``ping``         — liveness; reports the worker protocol version;
* ``shard-run``    — evaluate one serialized :class:`~repro.campaign.
  spec.ShardSpec` and answer with its raw ``SchedulabilityPoint`` rows;
  while the evaluation runs the worker emits *heartbeat frames*
  (``{"id": ..., "heartbeat": true}``) so the coordinator can tell a
  slow shard from a dead node;
* ``worker-stats`` — pool size and lifetime counters, used by the
  coordinator to size its per-node connection fan-out and by
  ``repro campaign status`` for attribution;
* ``shutdown``     — drain and stop (the CI smoke jobs use it).

Everything in this module is pure serialization — no sockets, no
clocks, no RNG (staticcheck R002 covers the ``distrib`` package).  The
point codec is shared with the checkpoint store on purpose: a point
that crossed the wire re-serialises into a shard checkpoint
byte-identically to one computed locally, which is what lets a
distributed run's ``result.json`` match a pure-local run bit for bit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.schedulability import SchedulabilityPoint
from ..campaign.checkpoint import point_from_dict, point_to_dict
from ..campaign.spec import ShardSpec
from ..overheads.model import OverheadModel
from ..service.protocol import ProtocolError

__all__ = [
    "WORKER_PROTOCOL_VERSION",
    "WORKER_VERBS",
    "model_to_wire",
    "model_from_wire",
    "shard_run_request",
    "parse_shard_run",
    "points_to_wire",
    "points_from_wire",
    "heartbeat_frame",
    "is_heartbeat",
]

#: Bumped on incompatible changes to the worker verbs; checked by the
#: coordinator against every node's ``ping`` before leasing it shards.
WORKER_PROTOCOL_VERSION = 1

#: Every verb a worker node understands.
WORKER_VERBS = ("ping", "shard-run", "worker-stats", "shutdown")


def model_to_wire(model: Optional[OverheadModel]) -> Optional[List[Any]]:
    """Serialise an overhead model as its :meth:`~repro.overheads.model.
    OverheadModel.signature` — ``None`` means "worker default".

    Models with custom scheduling-cost callables have no signature and
    cannot cross the wire (a worker could not reconstruct the curves);
    those campaigns must run locally.
    """
    if model is None:
        return None
    sig = model.signature()
    if sig is None:
        raise ValueError(
            "overhead models with custom sched_edf/sched_pd2 callables "
            "cannot be sent to remote workers — run locally instead")
    return list(sig)


def model_from_wire(data: Optional[Sequence[Any]]) -> Optional[OverheadModel]:
    """Rebuild a model from its wire signature (inverse of
    :func:`model_to_wire`); raises :class:`ProtocolError` on junk."""
    if data is None:
        return None
    try:
        curves, context_switch, quantum = data
        context_switch = int(context_switch)
        quantum = int(quantum)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad-request",
                            f"malformed model signature {data!r}") from exc
    if curves == "paper-fig2":
        model = OverheadModel(context_switch=context_switch, quantum=quantum)
    elif curves == "zero":
        model = replace(OverheadModel.zero(quantum),
                        context_switch=context_switch)
    else:
        raise ProtocolError("bad-request",
                            f"unknown model curve family {curves!r}")
    if list(model.signature() or ()) != [curves, context_switch, quantum]:
        raise ProtocolError("bad-request",
                            "model signature did not round-trip")
    return model


def shard_run_request(spec: ShardSpec, model: Optional[OverheadModel],
                      trace: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
    """The ``shard-run`` request body (the client layers the ``id`` on).

    ``trace`` is a trace-replay window payload in wire form
    (:meth:`repro.traces.replay.TraceWindowPayload.to_wire`); when
    present the worker evaluates the shard against the trace pool
    instead of the synthetic generator.  Absent for synthetic shards —
    the key is omitted entirely, so protocol-v1 synthetic frames are
    byte-identical to before.
    """
    body = {"verb": "shard-run", "shard": spec.to_dict(),
            "model": model_to_wire(model)}
    if trace is not None:
        body["trace"] = trace
    return body


def parse_shard_run(obj: Dict[str, Any]
                    ) -> tuple[ShardSpec, Optional[OverheadModel],
                               Optional[Dict[str, Any]]]:
    """Validate and decode a ``shard-run`` request.

    Returns ``(spec, model, trace)`` — ``trace`` is the raw wire
    payload dict (``None`` for synthetic shards); the worker hands it
    to the trace evaluator, which owns the deep decode.
    """
    shard = obj.get("shard")
    if not isinstance(shard, dict):
        raise ProtocolError("bad-request",
                            "'shard' must be a ShardSpec object")
    try:
        spec = ShardSpec.from_dict(shard)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("bad-request",
                            f"malformed shard spec: {exc}") from exc
    trace = obj.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise ProtocolError("bad-request",
                            "'trace' must be a payload object when present")
    return spec, model_from_wire(obj.get("model")), trace


def points_to_wire(points: Sequence[SchedulabilityPoint]
                   ) -> List[Dict[str, Any]]:
    """Serialise evaluated points with the checkpoint codec — JSON
    round-trips ints and IEEE-754 doubles exactly, so a point that
    crossed the wire checkpoints byte-identically to a local one."""
    return [point_to_dict(p) for p in points]


def points_from_wire(data: Any) -> List[SchedulabilityPoint]:
    """Decode a ``shard-run`` response's point rows."""
    if not isinstance(data, list):
        raise ProtocolError("bad-response", "'points' must be a list")
    try:
        return [point_from_dict(pd) for pd in data]
    except (KeyError, TypeError) as exc:
        raise ProtocolError("bad-response",
                            f"malformed point row: {exc}") from exc


def heartbeat_frame(rid: Any) -> Dict[str, Any]:
    """An interim liveness frame emitted while a ``shard-run`` computes.

    Heartbeats share the request's ``id`` but are *not* its response —
    clients must keep reading until a frame without ``heartbeat``.
    """
    return {"id": rid, "heartbeat": True}


def is_heartbeat(obj: Dict[str, Any]) -> bool:
    """True for interim heartbeat frames (see :func:`heartbeat_frame`)."""
    return bool(obj.get("heartbeat"))
