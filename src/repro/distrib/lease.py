"""Shard leases: who is computing what, until when — and what happened.

The coordinator's single source of truth for distributed dispatch.  A
shard moves ``pending → leased → done`` (or back to ``pending`` when a
lease expires, its node dies, or the evaluation errors within budget;
or to ``failed`` past the retry budget).  The table is deliberately
**clock-free**: every method takes the current monotonic time as an
argument, exactly like :class:`~repro.campaign.progress.ProgressTracker`
— staticcheck R002 holds the ``distrib`` package to the same
determinism contract as ``campaign``, and synthetic timestamps make the
lease arithmetic trivially unit-testable.

Soundness of the *accept-first, discard-the-rest* policy: shards are
deterministic (independently seeded, pure evaluators), so every attempt
at a shard computes the identical points.  The first result to arrive —
even from a lease that already expired — is therefore always correct to
accept, and every later arrival is a byte-identical duplicate that can
be dropped without looking at it.  The table records those drops
(``duplicates``) and the full lease history per shard, which is what
``repro campaign status --shards`` renders as attribution.

Thread-safety: none here by design.  The table is confined behind the
coordinator's lock (:class:`~repro.distrib.coordinator.Coordinator` is
the self-locking class staticcheck R007 recognises); keeping this class
lock-free keeps every transition testable without threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One grant of one shard to one worker.

    ``epoch`` is the zero-based attempt number for the shard — it indexes
    the shard's lease history and lets a result be attributed to the
    attempt that produced it even after re-leases.  ``deadline`` is the
    *soft* deadline, pushed forward by heartbeats; ``hard_deadline``
    (when set) caps the lease regardless of heartbeats, so a node that
    is alive but wedged cannot hold a shard forever.
    """

    shard_id: str
    worker: str
    epoch: int
    granted_at: float
    deadline: float
    hard_deadline: Optional[float]

    def expired(self, now: float) -> bool:
        """True once the soft or hard deadline has passed."""
        if now > self.deadline:
            return True
        return self.hard_deadline is not None and now > self.hard_deadline


class LeaseTable:
    """Pending/leased/done/failed bookkeeping for one distributed run."""

    def __init__(self, shard_ids: Sequence[str]) -> None:
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("shard ids must be unique")
        #: Work not currently leased, in stable sorted order (re-pended
        #: shards go to the back so fresh work is not starved).
        self._pending: Deque[str] = deque(sorted(shard_ids))
        self._leases: Dict[str, Lease] = {}
        self._done: Set[str] = set()
        self._failed: Set[str] = set()
        #: Budgeted requeues (errors) per shard — mirrors the local
        #: runner's ``max_retries`` accounting.  Expiries and lost
        #: workers are unbudgeted, like local worker-death recovery.
        self._errors: Dict[str, int] = {}
        #: Per-shard lease history: one record per grant, in epoch
        #: order, each ``{"worker": ..., "outcome": ...}`` with outcome
        #: in {running, done, duplicate, error, expired, lost, failed}.
        self._history: Dict[str, List[Dict[str, Any]]] = {}
        self._produced_by: Dict[str, str] = {}
        #: Late/duplicate results soundly discarded (see module docstring).
        self.duplicates = 0

    # -- queries ------------------------------------------------------

    @property
    def done(self) -> Set[str]:
        """Shards with an accepted result."""
        return set(self._done)

    @property
    def failed(self) -> Set[str]:
        """Shards past their retry budget (or abandoned at shutdown)."""
        return set(self._failed)

    @property
    def outstanding(self) -> int:
        """Shards not yet done or failed (pending + leased)."""
        return len(self._pending) + len(self._leases)

    @property
    def finished(self) -> bool:
        """True once nothing is pending or in flight."""
        return self.outstanding == 0

    def active_leases(self) -> List[Lease]:
        """The current grants (snapshot copy, coordinator-lock held)."""
        return list(self._leases.values())

    # -- transitions --------------------------------------------------

    def lease(self, worker: str, now: float, timeout: float,
              hard_timeout: Optional[float] = None) -> Optional[Lease]:
        """Grant the next pending shard to ``worker`` (None when idle).

        Entries that settled (done/failed) while waiting in the queue —
        e.g. an expired lease's late result was accepted after the shard
        was already re-pended — are skipped, never re-granted.
        """
        while self._pending and (self._pending[0] in self._done
                                 or self._pending[0] in self._failed):
            self._pending.popleft()
        if not self._pending:
            return None
        shard_id = self._pending.popleft()
        history = self._history.setdefault(shard_id, [])
        lease = Lease(
            shard_id=shard_id, worker=worker, epoch=len(history),
            granted_at=now, deadline=now + timeout,
            hard_deadline=None if hard_timeout is None
            else now + hard_timeout)
        history.append({"worker": worker, "outcome": "running"})
        self._leases[shard_id] = lease
        return lease

    def heartbeat(self, worker: str, now: float, timeout: float) -> int:
        """Push the soft deadline of ``worker``'s leases to ``now +
        timeout``; returns how many leases were extended."""
        extended = 0
        for lease in self._leases.values():
            if lease.worker == worker:
                lease.deadline = max(lease.deadline, now + timeout)
                extended += 1
        return extended

    def complete(self, shard_id: str, worker: str, epoch: int) -> bool:
        """Record a result arrival; True iff it is the accepted first.

        A result from a superseded epoch is still *accepted* when it
        arrives first — determinism makes it identical to whatever the
        replacement lease would have produced.  Anything after the first
        is a duplicate: counted, marked in the history, and discarded by
        the caller without deserialising the points.
        """
        history = self._history.setdefault(shard_id, [])
        if shard_id in self._done or shard_id in self._failed:
            self.duplicates += 1
            if 0 <= epoch < len(history):
                history[epoch]["outcome"] = "duplicate"
            return False
        self._done.add(shard_id)
        self._produced_by[shard_id] = worker
        if 0 <= epoch < len(history):
            history[epoch]["outcome"] = "done"
        # A concurrent re-lease of the same shard (ours expired, or the
        # result beat the expiry scan) is now moot: retire it so the
        # shard cannot be granted again.  The other attempt's eventual
        # result will land in the duplicate branch above.  Likewise a
        # stale *pending* entry from an earlier expiry: drop it, or
        # ``outstanding`` would never reach zero.
        self._leases.pop(shard_id, None)
        if shard_id in self._pending:
            self._pending.remove(shard_id)
        return True

    def fail(self, shard_id: str, epoch: int, max_retries: int) -> bool:
        """Record an evaluation error; True iff the shard was requeued.

        Errors are budgeted exactly like the local runner's: past
        ``max_retries`` the shard is failed and the campaign continues,
        leaving the run directory resumable.
        """
        history = self._history.setdefault(shard_id, [])
        if 0 <= epoch < len(history):
            history[epoch]["outcome"] = "error"
        if shard_id in self._done or shard_id in self._failed:
            self.duplicates += 1
            return False
        self._leases.pop(shard_id, None)
        self._errors[shard_id] = self._errors.get(shard_id, 0) + 1
        if self._errors[shard_id] > max_retries:
            self._failed.add(shard_id)
            history.append({"worker": "", "outcome": "failed"})
            # Drop any stale pending entry left by an earlier expiry.
            if shard_id in self._pending:
                self._pending.remove(shard_id)
            return False
        # An expired lease's error may arrive after the expiry scan
        # already re-pended the shard — never queue it twice.
        if shard_id not in self._pending:
            self._pending.append(shard_id)
        return True

    def expire(self, now: float) -> List[Tuple[str, str]]:
        """Re-pend every lease past its deadline; returns the
        ``(shard_id, worker)`` pairs taken back (unbudgeted — a slow or
        silent node is indistinguishable from a dead one, and the shard
        itself did nothing wrong)."""
        taken: List[Tuple[str, str]] = []
        # ``_leases`` insertion order is grant order — which slot thread
        # asked first — so scan in sorted shard-id order to keep the
        # re-pend queue and the returned pairs deterministic.
        for shard_id, lease in sorted(self._leases.items()):
            if lease.expired(now):
                self._history[shard_id][lease.epoch]["outcome"] = "expired"
                del self._leases[shard_id]
                self._pending.append(shard_id)
                taken.append((shard_id, lease.worker))
        return taken

    def drop_worker(self, worker: str) -> List[str]:
        """A node's connection died: take back all its leases
        (unbudgeted), returning the re-pended shard ids."""
        dropped: List[str] = []
        # Sorted for the same reason as expire(): grant order is
        # thread-scheduling order and must not leak into the queue.
        for shard_id, lease in sorted(self._leases.items()):
            if lease.worker == worker:
                self._history[shard_id][lease.epoch]["outcome"] = "lost"
                del self._leases[shard_id]
                self._pending.append(shard_id)
                dropped.append(shard_id)
        return dropped

    def abandon_outstanding(self) -> Set[str]:
        """Fail everything still pending or leased (no sources left);
        returns the newly failed ids."""
        abandoned: Set[str] = set(self._pending)
        self._pending.clear()
        for shard_id, lease in list(self._leases.items()):
            self._history[shard_id][lease.epoch]["outcome"] = "lost"
            abandoned.add(shard_id)
        self._leases.clear()
        self._failed |= abandoned
        return abandoned

    # -- attribution --------------------------------------------------

    def attribution(self) -> Dict[str, Any]:
        """The per-shard record behind ``repro campaign status --shards``:
        producing worker, budgeted error count, and full lease history
        (grant order = epoch order)."""
        shards: Dict[str, Any] = {}
        for shard_id in sorted(self._history):
            shards[shard_id] = {
                "worker": self._produced_by.get(shard_id),
                "errors": self._errors.get(shard_id, 0),
                "leases": list(self._history[shard_id]),
            }
        return shards
