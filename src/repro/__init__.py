"""repro — reproduction of "The Case for Fair Multiprocessor Scheduling".

A production-quality implementation of Pfair multiprocessor scheduling
(PF, PD, PD², ERfair, intra-sporadic tasks, supertasking) and the EDF-FF
partitioning approach it is compared against, together with the overhead
models, workload generators, and experiment harnesses needed to regenerate
every figure of the paper.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.
"""

__version__ = "1.0.0"

from .core import (
    EPDFPriority,
    ERPD2Scheduler,
    PD2Scheduler,
    IntraSporadicTask,
    PD2Priority,
    PDPriority,
    PeriodicTask,
    PFPriority,
    PfairTask,
    SporadicTask,
    TaskSet,
    Weight,
    weight_sum,
)
from .core import schedule_erfair, schedule_pd2
from .sim import QuantumSimulator, SimResult, simulate_pfair

__all__ = [
    "__version__",
    "Weight",
    "weight_sum",
    "PfairTask",
    "PeriodicTask",
    "SporadicTask",
    "IntraSporadicTask",
    "TaskSet",
    "PD2Priority",
    "PDPriority",
    "PFPriority",
    "EPDFPriority",
    "QuantumSimulator",
    "SimResult",
    "simulate_pfair",
    "PD2Scheduler",
    "schedule_pd2",
    "ERPD2Scheduler",
    "schedule_erfair",
]
