"""repro — reproduction of "The Case for Fair Multiprocessor Scheduling".

A production-quality implementation of Pfair multiprocessor scheduling
(PF, PD, PD², ERfair, intra-sporadic tasks, supertasking) and the EDF-FF
partitioning approach it is compared against, together with the overhead
models, workload generators, and experiment harnesses needed to regenerate
every figure of the paper.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.

The public names below are re-exported lazily (PEP 562): importing
``repro`` itself pulls in nothing beyond the stdlib, so dependency-free
entry points — ``python -m repro.staticcheck`` in particular, which CI
and pre-commit run before numpy is installed — stay dependency-free.
The heavy subpackages (``repro.core``, ``repro.sim`` → numpy) load on
first attribute access.
"""

from typing import TYPE_CHECKING, Any, List

__version__ = "1.0.0"

if TYPE_CHECKING:  # static importers see the eager form
    from .core import (
        EPDFPriority,
        ERPD2Scheduler,
        IntraSporadicTask,
        PD2Priority,
        PD2Scheduler,
        PDPriority,
        PeriodicTask,
        PfairTask,
        PFPriority,
        SporadicTask,
        TaskSet,
        Weight,
        schedule_erfair,
        schedule_pd2,
        weight_sum,
    )
    from .sim import QuantumSimulator, SimResult, simulate_pfair

#: Public name → defining submodule, for the lazy ``__getattr__`` below.
_EXPORTS = {
    "Weight": "core",
    "weight_sum": "core",
    "PfairTask": "core",
    "PeriodicTask": "core",
    "SporadicTask": "core",
    "IntraSporadicTask": "core",
    "TaskSet": "core",
    "PD2Priority": "core",
    "PDPriority": "core",
    "PFPriority": "core",
    "EPDFPriority": "core",
    "PD2Scheduler": "core",
    "schedule_pd2": "core",
    "ERPD2Scheduler": "core",
    "schedule_erfair": "core",
    "QuantumSimulator": "sim",
    "SimResult": "sim",
    "simulate_pfair": "sim",
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str) -> Any:
    try:
        submodule = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
