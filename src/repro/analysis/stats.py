"""Sample statistics with the paper's 99% confidence intervals.

Every figure in the paper carries 99% CIs ("not shown because the relative
error ... is very small"); we compute and *print* them so the scaled-down
default campaigns make their Monte-Carlo error visible.  Student-t
quantiles are used below 30 samples, the normal approximation above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["SampleStats", "summarize", "confidence_halfwidth"]

# Two-sided 99% quantiles of Student's t for df = 1..29 (df = n - 1).
_T99 = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756,
]
_Z99 = 2.576


def _quantile99(n: int) -> float:
    if n <= 1:
        return float("inf")
    df = n - 1
    return _T99[df - 1] if df <= len(_T99) else _Z99


@dataclass(frozen=True)
class SampleStats:
    """Mean, spread, and a 99% CI for one sample."""

    n: int
    mean: float
    std: float            # sample standard deviation (ddof=1)
    ci99_halfwidth: float

    @property
    def relative_error(self) -> float:
        """CI half-width over |mean| — the paper's "relative error"."""
        if self.mean == 0:
            return 0.0 if self.ci99_halfwidth == 0 else float("inf")
        return self.ci99_halfwidth / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci99_halfwidth:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> SampleStats:
    """Summary statistics of a sample (n >= 1)."""
    vals = [float(v) for v in values]
    n = len(vals)
    if n == 0:
        raise ValueError("empty sample")
    mean = sum(vals) / n
    if n == 1:
        return SampleStats(n=1, mean=mean, std=0.0, ci99_halfwidth=float("inf"))
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    half = _quantile99(n) * std / math.sqrt(n)
    return SampleStats(n=n, mean=mean, std=std, ci99_halfwidth=half)


def confidence_halfwidth(values: Sequence[float]) -> float:
    """99% CI half-width of the sample mean."""
    return summarize(values).ci99_halfwidth
