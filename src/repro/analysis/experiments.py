"""Campaign runner: seeded parameter sweeps over random task sets.

The paper's Figs. 3–4 are Monte-Carlo sweeps: for each task count ``N``
and each target total utilization (from ``N/30`` to ``N/3``), generate
many random sets, evaluate each, and plot means with 99% CIs.  This module
runs exactly that, scaled by ``sets_per_point`` (the paper used 1000; the
default benches use fewer and print CIs so the precision is visible —
``REPRO_FULL=1`` restores paper scale).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..overheads.model import OverheadModel
from ..util.toggles import fastpath_enabled
from ..workload.generator import TaskSetGenerator
from .schedulability import SchedulabilityPoint, evaluate_task_set
from .stats import SampleStats, summarize

__all__ = [
    "full_scale",
    "utilization_grid",
    "CampaignRow",
    "run_schedulability_campaign",
    "shutdown_worker_pool",
]


def _evaluate_grid_point(args: Tuple[int, float, int, int,
                                     Optional[OverheadModel]]
                         ) -> List[SchedulabilityPoint]:
    """Worker for one (N, U) grid point — module-level so it pickles.

    Campaign points are embarrassingly parallel: each owns a generator
    seeded from ``(seed, point index)``, so the parallel and serial runs
    produce byte-identical statistics.
    """
    n_tasks, u, sets_per_point, point_seed, model = args
    if model is None:
        model = OverheadModel()
    gen = TaskSetGenerator(point_seed)
    return [evaluate_task_set(gen.generate(n_tasks, u), model)
            for _ in range(sets_per_point)]


def _warm_init(fastpath_on: bool) -> None:
    """Worker initializer: inherit the fast-path toggle and pay the heavy
    imports once per worker instead of once per task batch."""
    from ..util.toggles import set_fastpath

    set_fastpath(fastpath_on)
    from . import schedulability  # noqa: F401  (pulls in the whole chain)


#: The persistent campaign pool.  Spawning a ProcessPoolExecutor per
#: campaign call re-pays worker startup and module imports on every
#: figure; one warm pool is reused across every campaign in the process
#: and torn down at exit.  Main-thread confined (docs/CONCURRENCY.md):
#: only campaign drivers rebind these, never the service or a worker, so
#: no lock is needed — R007 tracks exactly this kind of global.
_pool: Optional[ProcessPoolExecutor] = None
_pool_config: Optional[Tuple[int, bool]] = None


def _worker_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_config
    config = (workers, fastpath_enabled())
    if _pool is None or _pool_config != config:
        shutdown_worker_pool()
        _pool = ProcessPoolExecutor(max_workers=workers,
                                    initializer=_warm_init,
                                    initargs=(config[1],))
        _pool_config = config
    return _pool


def shutdown_worker_pool() -> None:
    """Tear down the warm campaign pool (idempotent; re-created on use)."""
    global _pool, _pool_config
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_config = None


atexit.register(shutdown_worker_pool)


def full_scale() -> bool:
    """True when the environment asks for paper-scale campaigns."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def utilization_grid(n_tasks: int, points: int = 20) -> List[float]:
    """The paper's Fig. 3 x-axis: total utilizations from N/30 to N/3."""
    lo, hi = n_tasks / 30, n_tasks / 3
    if points < 2:
        return [hi]
    step = (hi - lo) / (points - 1)
    return [lo + i * step for i in range(points)]


@dataclass
class CampaignRow:
    """Aggregated results for one (N, U) grid point."""

    n_tasks: int
    utilization: float
    mean_utilization: float       # mean task utilization U/N (Fig. 4 x-axis)
    m_pd2: SampleStats
    m_ff: SampleStats
    loss_pfair: SampleStats
    loss_edf: SampleStats
    loss_ff: SampleStats
    infeasible_pd2: int
    infeasible_ff: int


def run_schedulability_campaign(
    n_tasks: int,
    utilizations: Sequence[float],
    *,
    sets_per_point: int = 50,
    seed: int = 0,
    model: Optional[OverheadModel] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
) -> List[CampaignRow]:
    """The Fig. 3/4 campaign for one task count.

    One seeded generator per grid point (seed offset by the point index)
    keeps points independently reproducible and embarrassingly parallel:
    with ``workers > 1`` the grid points run in a process pool and the
    results are byte-identical to the serial run.  (The per-set work is
    pure Python, so processes — not threads — are what buys wall-clock;
    default models pickle fine, custom ``sched_*`` callables must too.)
    """
    jobs = [(n_tasks, u, sets_per_point, seed + 7919 * k, model)
            for k, u in enumerate(utilizations)]
    if workers > 1:
        if fastpath_enabled():
            # The pool is warm (persistent across campaign calls, workers
            # pre-seeded with the fast-path toggle and the analysis
            # imports); chunking amortises pickling over several grid
            # points per trip.
            pool = _worker_pool(workers)
            chunk = max(1, len(jobs) // (workers * 4))
            all_points = list(pool.map(_evaluate_grid_point, jobs,
                                       chunksize=chunk))
        else:
            # --no-fastpath: the original throwaway pool, for A/B runs.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                all_points = list(pool.map(_evaluate_grid_point, jobs))
    else:
        all_points = [_evaluate_grid_point(job) for job in jobs]
    rows: List[CampaignRow] = []
    for u, points in zip(utilizations, all_points):
        if progress is not None:
            progress(f"N={n_tasks} U={u:.2f}: {len(points)} sets evaluated")
        m_pd2 = [p.m_pd2 for p in points if p.m_pd2 is not None]
        m_ff = [p.m_ff for p in points if p.m_ff is not None]
        lp = [p.loss_pfair for p in points if p.loss_pfair is not None]
        le = [p.loss_edf for p in points if p.loss_edf is not None]
        lf = [p.loss_ff for p in points if p.loss_ff is not None]
        rows.append(CampaignRow(
            n_tasks=n_tasks,
            utilization=u,
            mean_utilization=u / n_tasks,
            m_pd2=summarize(m_pd2 or [float("nan")]),
            m_ff=summarize(m_ff or [float("nan")]),
            loss_pfair=summarize(lp or [float("nan")]),
            loss_edf=summarize(le or [float("nan")]),
            loss_ff=summarize(lf or [float("nan")]),
            infeasible_pd2=sum(1 for p in points if p.m_pd2 is None),
            infeasible_ff=sum(1 for p in points if p.m_ff is None),
        ))
    return rows
