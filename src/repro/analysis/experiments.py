"""Campaign vocabulary: grids, scale flags, and the aggregated row.

The paper's Figs. 3–4 are Monte-Carlo sweeps: for each task count ``N``
and each target total utilization (from ``N/30`` to ``N/3``), generate
many random sets, evaluate each, and plot means with 99% CIs.  The
*execution* of those sweeps — sharding, dispatch, retry, checkpointing —
lives in :mod:`repro.campaign` (see ``docs/CAMPAIGNS.md``); this module
keeps the pieces the rest of the analysis layer shares with it: the
utilization grid, the paper-scale environment flag, and
:class:`CampaignRow`, the aggregate that persistence and the figure
formatters consume.  (``run_schedulability_campaign`` itself moved to
:func:`repro.campaign.sched.run_schedulability_campaign`; the campaign
layer sits above analysis in the import DAG, so the driver could not
stay here once it grew checkpointing and a worker-pool policy.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List

from .stats import SampleStats

__all__ = [
    "full_scale",
    "utilization_grid",
    "CampaignRow",
]


def full_scale() -> bool:
    """True when the environment asks for paper-scale campaigns."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def utilization_grid(n_tasks: int, points: int = 20) -> List[float]:
    """The paper's Fig. 3 x-axis: total utilizations from N/30 to N/3."""
    lo, hi = n_tasks / 30, n_tasks / 3
    if points < 2:
        return [hi]
    step = (hi - lo) / (points - 1)
    return [lo + i * step for i in range(points)]


@dataclass
class CampaignRow:
    """Aggregated results for one (N, U) grid point."""

    n_tasks: int
    utilization: float
    mean_utilization: float       # mean task utilization U/N (Fig. 4 x-axis)
    m_pd2: SampleStats
    m_ff: SampleStats
    loss_pfair: SampleStats
    loss_edf: SampleStats
    loss_ff: SampleStats
    infeasible_pd2: int
    infeasible_ff: int
