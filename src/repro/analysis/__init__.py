"""Analysis: sample statistics with 99% CIs, overhead-aware schedulability
evaluation (Figs. 3–4), campaign persistence, and ASCII reporting.

Campaign *execution* (the sweep driver, crossover scan, and worker pool)
lives one layer up in :mod:`repro.campaign`; this package provides what
those sweeps evaluate and how their results are summarised and stored.
"""

from .experiments import CampaignRow, full_scale, utilization_grid
from .persistence import load_campaign, merge_campaigns, save_campaign
from .report import format_series_plot, format_table, print_table
from .schedulability import (
    SchedulabilityPoint,
    edf_ff_min_processors,
    evaluate_task_set,
    pd2_min_processors,
)
from .stats import SampleStats, confidence_halfwidth, summarize
from .tardiness import TardinessProfile, epdf_tardiness_experiment, tardiness_profile

__all__ = [
    "save_campaign",
    "load_campaign",
    "merge_campaigns",
    "CampaignRow",
    "full_scale",
    "utilization_grid",
    "format_table",
    "format_series_plot",
    "print_table",
    "SchedulabilityPoint",
    "evaluate_task_set",
    "pd2_min_processors",
    "edf_ff_min_processors",
    "SampleStats",
    "summarize",
    "confidence_halfwidth",
    "TardinessProfile",
    "tardiness_profile",
    "epdf_tardiness_experiment",
]
