"""ASCII reporting: print the same rows/series the paper's figures plot."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table", "format_series_plot"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                 title: Optional[str] = None) -> str:
    """Monospace table with right-aligned numeric-looking cells."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                title: Optional[str] = None) -> None:
    """Print :func:`format_table` output to stdout."""
    print(format_table(headers, rows, title=title))


def _cell(v: object) -> str:
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        return f"{v:.4g}"
    return str(v)


def format_series_plot(xs: Sequence[float], series: dict, *,
                       width: int = 68, height: int = 16,
                       title: Optional[str] = None) -> str:
    """A small ASCII scatter of several named series against shared axes —
    enough to eyeball the crossovers the paper's figures show.

    ``series`` maps a single-character label to a list of y values aligned
    with ``xs``.
    """
    pts = [(x, y, label)
           for label, ys in series.items()
           for x, y in zip(xs, ys)
           if y == y]  # drop NaN
    if not pts:
        return "(no data)"
    xmin, xmax = min(p[0] for p in pts), max(p[0] for p in pts)
    ymin, ymax = min(p[1] for p in pts), max(p[1] for p in pts)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, label in pts:
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        cell = grid[row][col]
        grid[row][col] = "*" if cell not in (" ", label) else label
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"y: {ymin:.3g} .. {ymax:.3g}   ('*' = overlap)")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(f"x: {xmin:.3g} .. {xmax:.3g}")
    return "\n".join(lines)
