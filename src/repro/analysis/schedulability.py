"""Overhead-aware schedulability: the computations behind Figs. 3 and 4.

For each random task set the paper computes, after Eq. (3) inflation, the
minimum number of processors each approach needs:

* **PD²** — smallest ``M`` with ``sum of quantised inflated weights <= M``
  (Eq. (2)).  The scheduling cost ``S_PD2(N, M)`` grows with ``M``, so the
  search re-inflates at every candidate ``M``; the total weight is
  monotone in ``M``, so the first success is minimal.
* **EDF-FF** — the number of bins first fit opens with the overhead-aware
  EDF acceptance test, tasks fed in decreasing-period order (Sec. 4).

Fig. 4 decomposes the gap between raw utilization and provisioned
processors into named losses (formulas fixed in DESIGN.md §5, since the
paper plots but does not define them):

* ``loss_edf  = (U'_EDF − U) / M_FF``   — capacity lost to EDF-side
  overhead inflation;
* ``loss_ff   = (M_FF − ceil(U'_EDF)) / M_FF`` — capacity lost to
  bin-packing fragmentation *beyond* the unavoidable whole-processor
  ceiling (any approach, including an ideal packer, needs
  ``ceil(U'_EDF)`` processors — counting that slack as "partitioning
  loss" would swamp the curve at small M);
* ``loss_pfair = (U'_PD2 − U) / M_PD2`` — capacity lost to PD² overheads,
  including quantisation.  PD² provisions exactly ``ceil(U'_PD2)``
  processors — it never fragments — so it has no analogue of ``loss_ff``.

where ``U`` is raw utilization, ``U'_EDF`` the packed inflated utilization
and ``U'_PD2`` the total quantised inflated weight.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from ..overheads.inflation import pd2_inflate_set
from ..overheads.model import OverheadModel
from ..partition.heuristics import PartitionFailure
from ..partition.partitioner import edf_ff
from ..util.lru import LRUCache
from ..util.toggles import fastpath_enabled
from ..workload.spec import TaskSpec, total_utilization

__all__ = [
    "ANALYSIS_CACHE",
    "pd2_min_processors",
    "edf_ff_min_processors",
    "SchedulabilityPoint",
    "evaluate_task_set",
    "task_set_signature",
    "task_set_cache_key",
]

#: Process-wide schedulability results, shared by every consumer of this
#: module: :func:`pd2_min_processors` / :func:`edf_ff_min_processors`
#: (and hence :func:`evaluate_task_set`, the campaign workers, and the
#: admission service's ``analyze`` verb) all read and write one keyspace,
#: keyed by :func:`task_set_cache_key` digests.  Campaigns draw duplicate
#: task sets across grid points and the service re-analyzes the sets it
#: admits, so sharing one cache turns those repeats into dict lookups.
#: Analyses under models whose cost curves cannot be fingerprinted
#: (``task_set_cache_key`` returns ``None``) bypass the cache entirely.
#: Written from two thread domains — the main thread (campaigns) and the
#: ``ServerThread`` event loop (service ``analyze``) — which is safe
#: because :class:`~repro.util.lru.LRUCache` locks internally
#: (staticcheck R007 verifies exactly this; see docs/CONCURRENCY.md).
ANALYSIS_CACHE = LRUCache(capacity=65536)


def task_set_signature(specs: Sequence[TaskSpec]) -> Tuple:
    """Canonical hashable identity of a task set for result caching.

    Every field that the schedulability analyses read is included; names
    are not (two sets differing only in task names schedule identically).
    The tuple is *sorted*, so permutations of the same multiset of tasks
    share a signature — both analyses are order-insensitive (PD² sums
    weights; overhead-aware EDF-FF re-sorts by decreasing period).
    """
    return tuple(sorted(
        (s.execution, s.period, s.cache_delay,
         s.period if s.deadline is None else s.deadline,  # relative_deadline
         s.max_section, s.resource)
        for s in specs
    ))


def task_set_cache_key(specs: Sequence[TaskSpec],
                       model: OverheadModel) -> Optional[str]:
    """Stable digest keying one ``(task set, overhead model)`` analysis.

    Returns ``None`` when ``model`` carries custom cost curves that cannot
    be fingerprinted (see :meth:`OverheadModel.signature`) — results under
    such a model must not be cached.  The digest is stable across
    processes and Python versions, so it can key on-disk caches too.
    """
    sig = model.signature()
    if sig is None:
        return None
    payload = repr((sig, task_set_signature(specs)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_UNSET = object()  # "caller did not precompute" sentinel (None is a value)


def _pd2_analysis(specs: Sequence[TaskSpec], model: OverheadModel,
                  cap: int, digest: object = _UNSET,
                  u_total: Optional[Fraction] = None
                  ) -> Tuple[Optional[int], Optional[float], int]:
    """The PD² search, cached: ``(m, inflated total weight at m, max
    fixed-point iterations at m)``, with ``m = None`` when no M up to
    ``cap`` suffices.

    One search serves both :func:`pd2_min_processors` (which wants ``m``)
    and :func:`evaluate_task_set` (which previously re-inflated the whole
    set at ``m`` a second time for the Fig. 4 loss terms).
    ``digest`` / ``u_total`` let callers that already computed the cache
    key or the exact total utilization pass them in.
    """
    ckey = None
    if fastpath_enabled():
        if digest is _UNSET:
            digest = task_set_cache_key(specs, model)
        if digest is not None:
            ckey = ("pd2", digest, cap)
            hit = ANALYSIS_CACHE.get(ckey)
            if hit is not None:
                return hit
    result: Tuple[Optional[int], Optional[float], int] = (None, None, 0)
    u_raw = total_utilization(specs) if u_total is None else u_total
    m = max(1, -(-u_raw.numerator // u_raw.denominator))  # ceil
    while m <= cap:
        inflations = pd2_inflate_set(specs, model, m)
        # One pass: feasibility, the exact total weight (unnormalised
        # num/den, as in pd2_total_weight), and the max iteration count.
        feasible = True
        num, den, iters = 0, 1, 0
        for inf in inflations:
            e_q, p_q = inf.quanta, inf.period_quanta
            if e_q > p_q:
                feasible = False
                break
            num = num * p_q + e_q * den
            den *= p_q
            if inf.iterations > iters:
                iters = inf.iterations
        if feasible:
            if num <= m * den:      # total <= m, cross-multiplied
                result = (m, float(Fraction(num, den)), iters)
                break
            # Jump straight to the implied lower bound instead of +1 steps.
            m = max(m + 1, -(-num // den))  # ceil(total)
        else:
            break  # some task infeasible alone; more CPUs won't help
    if ckey is not None:
        ANALYSIS_CACHE.put(ckey, result)
    return result


def pd2_min_processors(specs: Sequence[TaskSpec], model: OverheadModel, *,
                       max_processors: Optional[int] = None) -> Optional[int]:
    """Smallest M passing the PD² feasibility test with Eq. (3) inflation.

    Returns ``None`` if no M up to ``max_processors`` (default: task count,
    since one processor per task is the most any feasible set needs —
    a task whose inflated weight still exceeds 1 can never be scheduled)
    suffices.  Results are memoised in :data:`ANALYSIS_CACHE`.
    """
    if not specs:
        return 1
    cap = max_processors if max_processors is not None else len(specs)
    return _pd2_analysis(specs, model, cap)[0]


def _edf_ff_analysis(specs: Sequence[TaskSpec], model: OverheadModel,
                     digest: object = _UNSET
                     ) -> Tuple[Optional[int], Optional[float]]:
    """The EDF-FF packing, cached: ``(processors, packed inflated
    utilization)``, both ``None`` on packing failure."""
    ckey = None
    if fastpath_enabled():
        if digest is _UNSET:
            digest = task_set_cache_key(specs, model)
        if digest is not None:
            ckey = ("edfff", digest)
            hit = ANALYSIS_CACHE.get(ckey)
            if hit is not None:
                return hit
    try:
        packing = edf_ff(specs,
                         overhead_inflation=model.edf_fixed_inflation(len(specs)))
        result: Tuple[Optional[int], Optional[float]] = (
            packing.processors, float(packing.partition.total_load()))
    except PartitionFailure:
        result = (None, None)
    if ckey is not None:
        ANALYSIS_CACHE.put(ckey, result)
    return result


def edf_ff_min_processors(specs: Sequence[TaskSpec],
                          model: OverheadModel) -> Optional[int]:
    """Processors EDF-FF opens with overhead-aware acceptance (Sec. 4).

    Results are memoised in :data:`ANALYSIS_CACHE`.
    """
    if not specs:
        return 1
    return _edf_ff_analysis(specs, model)[0]


@dataclass(frozen=True)
class SchedulabilityPoint:
    """Everything Figs. 3 and 4 need about one task set."""

    n_tasks: int
    utilization: float          # raw U
    m_pd2: Optional[int]
    m_ff: Optional[int]
    inflated_u_pd2: Optional[float]   # U'_PD2 at m_pd2
    inflated_u_edf: Optional[float]   # U'_EDF as packed by FF
    pd2_iterations_max: int            # Eq. (3) fixed-point iteration count

    @property
    def loss_pfair(self) -> Optional[float]:
        if self.m_pd2 is None or self.inflated_u_pd2 is None:
            return None
        return (self.inflated_u_pd2 - self.utilization) / self.m_pd2

    @property
    def loss_edf(self) -> Optional[float]:
        if self.m_ff is None or self.inflated_u_edf is None:
            return None
        return (self.inflated_u_edf - self.utilization) / self.m_ff

    @property
    def loss_ff(self) -> Optional[float]:
        if self.m_ff is None or self.inflated_u_edf is None:
            return None
        import math

        return (self.m_ff - math.ceil(self.inflated_u_edf)) / self.m_ff


def evaluate_task_set(specs: Sequence[TaskSpec],
                      model: OverheadModel) -> SchedulabilityPoint:
    """Compute the Fig. 3/Fig. 4 quantities for one task set.

    Shares the cached analyses with the ``*_min_processors`` entry points
    — the inflated totals fall straight out of the searches, so nothing
    is computed twice.
    """
    u_exact = total_utilization(specs)
    u_raw = float(u_exact)
    if specs:
        digest = (task_set_cache_key(specs, model) if fastpath_enabled()
                  else _UNSET)
        m_pd2, u_pd2, iters = _pd2_analysis(specs, model, len(specs),
                                            digest, u_exact)
        m_ff, u_edf = _edf_ff_analysis(specs, model, digest)
    else:
        m_pd2, u_pd2, iters = 1, 0.0, 0
        m_ff, u_edf = None, None
    return SchedulabilityPoint(
        n_tasks=len(specs),
        utilization=u_raw,
        m_pd2=m_pd2,
        m_ff=m_ff,
        inflated_u_pd2=u_pd2,
        inflated_u_edf=u_edf,
        pd2_iterations_max=iters,
    )
