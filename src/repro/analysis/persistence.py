"""Campaign persistence: save, load, and merge Monte-Carlo results.

Paper-scale campaigns (1000 sets per point, several task counts) take
hours in Python; this module makes them restartable and shareable:

* :func:`save_campaign` / :func:`load_campaign` — JSON round trip of
  :class:`~repro.analysis.experiments.CampaignRow` lists, with enough
  provenance (seed, sets per point, generator identity) to refuse
  accidental mixing;
* :func:`merge_campaigns` — combine runs of the *same* grid made with
  different seeds into one higher-precision campaign (statistics are
  merged exactly from the sufficient statistics n, mean, M2).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from .experiments import CampaignRow
from .stats import SampleStats

__all__ = ["atomic_write_text", "save_campaign", "load_campaign",
           "merge_campaigns"]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` so readers never observe a torn file.

    The content goes to a ``.tmp`` sibling first and is renamed into place
    with :func:`os.replace` (atomic on POSIX and Windows for same-directory
    renames).  A crash mid-write leaves the previous version of ``path``
    intact; the stray ``.tmp`` is removed on the failure paths we control.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise

_STAT_FIELDS = ("m_pd2", "m_ff", "loss_pfair", "loss_edf", "loss_ff")


def _stats_to_dict(s: SampleStats) -> Dict[str, Any]:
    return {"n": s.n, "mean": s.mean, "std": s.std,
            "ci99_halfwidth": None if math.isinf(s.ci99_halfwidth)
            else s.ci99_halfwidth}


def _stats_from_dict(d: Dict[str, Any]) -> SampleStats:
    half = d["ci99_halfwidth"]
    return SampleStats(n=d["n"], mean=d["mean"], std=d["std"],
                       ci99_halfwidth=float("inf") if half is None else half)


def save_campaign(path: Union[str, Path], rows: Sequence[CampaignRow], *,
                  seed: int, sets_per_point: int,
                  note: str = "") -> None:
    """Write campaign rows plus provenance to ``path`` (JSON).

    The write is crash-safe (see :func:`atomic_write_text`): interrupting
    a paper-scale campaign mid-save never leaves a truncated file — the
    previous save, if any, survives intact.
    """
    payload = {
        "format": "repro-campaign-v1",
        "seed": seed,
        "sets_per_point": sets_per_point,
        "note": note,
        "rows": [
            {
                "n_tasks": r.n_tasks,
                "utilization": r.utilization,
                "mean_utilization": r.mean_utilization,
                "infeasible_pd2": r.infeasible_pd2,
                "infeasible_ff": r.infeasible_ff,
                **{f: _stats_to_dict(getattr(r, f)) for f in _STAT_FIELDS},
            }
            for r in rows
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")


def load_campaign(path: Union[str, Path]) -> List[CampaignRow]:
    """Read campaign rows back; raises ``ValueError`` on format mismatch."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != "repro-campaign-v1":
        raise ValueError(f"{path}: not a repro campaign file")
    rows: List[CampaignRow] = []
    for rd in data["rows"]:
        rows.append(CampaignRow(
            n_tasks=rd["n_tasks"],
            utilization=rd["utilization"],
            mean_utilization=rd["mean_utilization"],
            infeasible_pd2=rd["infeasible_pd2"],
            infeasible_ff=rd["infeasible_ff"],
            **{f: _stats_from_dict(rd[f]) for f in _STAT_FIELDS},
        ))
    return rows


def _merge_stats(a: SampleStats, b: SampleStats) -> SampleStats:
    """Exact pooled mean/std from the two samples' sufficient statistics."""
    n = a.n + b.n
    if n == 0:
        raise ValueError("cannot merge empty samples")
    mean = (a.n * a.mean + b.n * b.mean) / n
    # Pooled M2 (sum of squared deviations) via Chan et al.'s update.
    m2 = (a.std ** 2) * max(a.n - 1, 0) + (b.std ** 2) * max(b.n - 1, 0)
    delta = b.mean - a.mean
    m2 += delta * delta * a.n * b.n / n
    std = math.sqrt(m2 / (n - 1)) if n > 1 else 0.0
    from .stats import _quantile99  # reuse the table

    half = _quantile99(n) * std / math.sqrt(n) if n > 1 else float("inf")
    return SampleStats(n=n, mean=mean, std=std, ci99_halfwidth=half)


def merge_campaigns(a: Sequence[CampaignRow],
                    b: Sequence[CampaignRow]) -> List[CampaignRow]:
    """Pool two campaigns over the same (N, U) grid.

    The inputs must align row for row (same task counts and utilization
    grid); seeds should differ or the pooled CI will be misleadingly
    narrow — callers own that discipline, as with any Monte-Carlo merge.
    """
    if len(a) != len(b):
        raise ValueError("campaigns have different grid sizes")
    out: List[CampaignRow] = []
    for ra, rb in zip(a, b):
        if ra.n_tasks != rb.n_tasks or \
                abs(ra.utilization - rb.utilization) > 1e-9:
            raise ValueError(
                f"grid mismatch: ({ra.n_tasks}, {ra.utilization}) vs "
                f"({rb.n_tasks}, {rb.utilization})"
            )
        out.append(CampaignRow(
            n_tasks=ra.n_tasks,
            utilization=ra.utilization,
            mean_utilization=ra.mean_utilization,
            infeasible_pd2=ra.infeasible_pd2 + rb.infeasible_pd2,
            infeasible_ff=ra.infeasible_ff + rb.infeasible_ff,
            **{f: _merge_stats(getattr(ra, f), getattr(rb, f))
               for f in _STAT_FIELDS},
        ))
    return out
