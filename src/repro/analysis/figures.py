"""Reusable builders for the paper's figure reproductions.

The benchmark harness (``benchmarks/``) and the command-line interface
(``python -m repro``) both need the same artefacts — Fig. 1's window
diagrams, Fig. 5's supertask run, the Fig. 3/4 campaign tables.  The
campaign machinery already lives in :mod:`repro.analysis.experiments`;
this module holds the remaining figure-specific builders so they exist
exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.supertask import ComponentDispatch, Supertask, SupertaskSystem
from ..core.task import IntraSporadicTask, PeriodicTask, PfairTask
from ..sim.quantum import SimResult
from ..sim.trace import render_schedule, render_windows
from .experiments import CampaignRow
from .report import format_table

__all__ = ["fig1_report", "fig5_build", "fig5_report", "fig3_table", "fig4_table"]


def fig1_report() -> str:
    """Both panels of Fig. 1 as ASCII art plus the parameter table."""
    lines = ["Fig. 1(a): windows of the first two jobs of a periodic task "
             "with weight 8/11"]
    task = PeriodicTask(8, 11, name="T")
    lines.append(render_windows(task, 1, 16))
    lines.append("")
    lines.append("subtask   r   d   b   group-deadline")
    for i in range(1, 9):
        s = task.subtask(i)
        lines.append(f"  T{i:<6} {s.release:3d} {s.deadline:3d} "
                     f"{s.b_bit:3d}   {s.group_deadline}")
    lines.append("")
    lines.append("Fig. 1(b): IS variant — subtask T5 released one slot late")
    is_task = IntraSporadicTask(8, 11, offsets=[0, 0, 0, 0, 1, 1, 1, 1],
                                name="T")
    lines.append(render_windows(is_task, 1, 8))
    return "\n".join(lines)


def fig5_build(reweight: bool) -> Tuple[List[PfairTask], Supertask]:
    """The Fig. 5 task set: V=1/2, W=X=1/3, Y=2/9, S={T=1/5, U=1/45}."""
    T = PeriodicTask(1, 5, name="T")
    U = PeriodicTask(1, 45, name="U")
    V = PeriodicTask(1, 2, name="V")
    W = PeriodicTask(1, 3, name="W")
    X = PeriodicTask(1, 3, name="X")
    Y = PeriodicTask(2, 9, name="Y")
    S = Supertask([T, U], name="S", reweight=reweight)
    return [V, W, X, Y, S], S


def fig5_report(horizon: int = 900
                ) -> Tuple[str, Dict[bool, Tuple[SimResult, ComponentDispatch]]]:
    """Run Fig. 5 with and without reweighting; return (report, results)."""
    lines = []
    results: Dict[bool, Tuple[SimResult, ComponentDispatch]] = {}
    picture = None
    for reweight in (False, True):
        tasks, S = fig5_build(reweight)
        system = SupertaskSystem(tasks, 2)
        res, dispatches = system.run(horizon)
        d = dispatches[S.task_id]
        results[reweight] = (res, d)
        label = "reweighted 19/45" if reweight else "cumulative 2/9"
        lines.append(f"wt(S) = {S.weight} ({label}): "
                     f"top-level misses = {res.stats.miss_count}, "
                     f"component misses = {d.miss_count}")
        if d.misses:
            m = d.misses[0]
            lines.append(f"  first miss: {m.task.name}[{m.subtask_index}] "
                         f"deadline {m.deadline}, completed {m.completed_at}")
        if not reweight:
            picture = render_schedule(res.trace, tasks, 12)
    lines.append("")
    lines.append("First 12 slots of the unweighted schedule (cf. Fig. 5):")
    lines.append(picture or "")
    return "\n".join(lines), results


def fig3_table(rows: List[CampaignRow], n_tasks: int, sets: int) -> str:
    """Format a Fig. 3 campaign as the paper's series."""
    table = [[round(r.utilization, 2),
              round(r.m_pd2.mean, 2), round(r.m_pd2.ci99_halfwidth, 2),
              round(r.m_ff.mean, 2), round(r.m_ff.ci99_halfwidth, 2)]
             for r in rows]
    return format_table(
        ["total U", "M Pfair", "ci99", "M EDF-FF", "ci99"], table,
        title=f"Fig. 3: processors required for {n_tasks} tasks "
              f"({sets} sets/point)")


def fig4_table(rows: List[CampaignRow], n_tasks: int, sets: int) -> str:
    """Format a Fig. 4 campaign as the paper's series."""
    table = [[round(r.mean_utilization, 3),
              round(r.loss_pfair.mean, 4),
              round(r.loss_edf.mean, 4),
              round(r.loss_ff.mean, 4),
              round(r.loss_ff.relative_error, 2)]
             for r in rows]
    return format_table(
        ["mean task U", "Pfair loss", "EDF loss", "FF loss", "FF rel.err"],
        table,
        title=f"Fig. 4: fraction of schedulability lost, {n_tasks} tasks "
              f"({sets} sets/point)")
