"""Tardiness analysis: how late is late?

Hard-real-time analysis asks *whether* deadlines are met; the soft-real-
time follow-up literature (Srinivasan & Anderson's EPDF work, later
Devi & Anderson) asks *by how much* they are missed.  Two of this repo's
findings are tardiness statements — EPDF (no tie-breaks) misses with
small tardiness, and variable-length/staggered quanta miss by less than a
quantum — so tardiness summarisation is a first-class analysis tool here:

* :func:`tardiness_profile` — per-run summary (count, max, mean, and the
  full histogram) from a quantum-simulator result;
* :func:`epdf_tardiness_experiment` — the companion to the tie-break
  ablation: EPDF's misses on fully loaded systems are not crashes but
  bounded lateness, which is exactly why EPDF remains interesting for
  soft-real-time despite non-optimality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.epdf import EPDFScheduler
from ..core.rational import Weight, weight_sum
from ..core.task import PeriodicTask
from ..sim.quantum import SimResult

__all__ = ["TardinessProfile", "tardiness_profile", "epdf_tardiness_experiment"]


@dataclass
class TardinessProfile:
    """Summary of lateness in one run (slot units)."""

    misses: int = 0
    unfinished: int = 0          # misses with no completion by the horizon
    max_tardiness: int = 0
    mean_tardiness: float = 0.0
    histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def bounded(self) -> bool:
        """True iff every miss completed (tardiness observable and finite)."""
        return self.unfinished == 0


def tardiness_profile(result: SimResult) -> TardinessProfile:
    """Summarise the misses of a quantum-simulator run."""
    prof = TardinessProfile()
    total = 0
    for m in result.stats.misses:
        prof.misses += 1
        if m.completed_at is None:
            prof.unfinished += 1
            continue
        t = m.tardiness
        total += t
        prof.max_tardiness = max(prof.max_tardiness, t)
        prof.histogram[t] = prof.histogram.get(t, 0) + 1
    finished = prof.misses - prof.unfinished
    prof.mean_tardiness = total / finished if finished else 0.0
    return prof


def _exact_fill_set(rng: np.random.Generator, processors: int,
                    max_period: int = 12
                    ) -> Optional[List[Tuple[int, int]]]:
    pairs: List[Tuple[int, int]] = []
    total = Weight(0, 1)
    for _ in range(200):
        p = int(rng.integers(2, max_period))
        e = int(rng.integers(1, p + 1))
        w = Weight.of_task(e, p)
        nt = weight_sum([Weight.of_task(*x) for x in pairs] + [w])
        if nt <= processors:
            pairs.append((e, p))
            total = nt
            if total == processors:
                return pairs
        else:
            rem = processors * total.den - total.num
            if 0 < rem <= total.den <= max_period:
                pairs.append((rem, total.den))
                return pairs
            return None
    return None


def epdf_tardiness_experiment(*, processors: int = 4, trials: int = 60,
                              horizon: int = 240, seed: int = 0
                              ) -> Tuple[int, int, TardinessProfile]:
    """Run EPDF over fully loaded random sets; pool the tardiness.

    Returns ``(sets_run, sets_with_misses, pooled_profile)``.  The
    headline numbers: misses are rare and their tardiness small (1–2
    slots at these scales) — EPDF degrades, it does not collapse.
    """
    rng = np.random.default_rng(seed)
    pooled = TardinessProfile()
    total_t = 0
    runs = miss_sets = 0
    while runs < trials:
        pairs = _exact_fill_set(rng, processors)
        if pairs is None:
            continue
        runs += 1
        tasks = [PeriodicTask(e, p) for e, p in pairs]
        res = EPDFScheduler(tasks, processors).run(horizon)
        if not res.stats.misses:
            continue
        miss_sets += 1
        prof = tardiness_profile(res)
        pooled.misses += prof.misses
        pooled.unfinished += prof.unfinished
        pooled.max_tardiness = max(pooled.max_tardiness, prof.max_tardiness)
        for t, c in prof.histogram.items():
            pooled.histogram[t] = pooled.histogram.get(t, 0) + c
            total_t += t * c
    finished = pooled.misses - pooled.unfinished
    pooled.mean_tardiness = total_t / finished if finished else 0.0
    return runs, miss_sets, pooled
