"""Dynamic task systems: joins, leaves, and reweighting under PD².

Srinivasan & Anderson derived conditions under which intra-sporadic tasks
may join and leave a running Pfair-scheduled system without causing missed
deadlines (paper, Sec. 2, "Dynamic task systems"):

* **Join** — a task may join whenever the feasibility condition Eq. (2),
  ``sum of weights <= M``, continues to hold.
* **Leave** — a departing task's weight cannot be freed immediately: a task
  that ran *ahead* of its fluid rate (negative lag) could otherwise leave
  and immediately rejoin, effectively executing above its weight.  A light
  task may leave at or after ``d(T_i) + b(T_i)``, a heavy task after its
  next group deadline, where ``T_i`` is its last-scheduled subtask.  A task
  that never ran since joining has nonnegative lag and may leave at once.

:class:`DynamicPfairSystem` wraps the quantum simulator with this admission
control and exposes ``try_join`` / ``request_leave`` / ``reweight``.  Task
*reweighting* (the paper's virtual-reality rendering example, Sec. 5.2) is
modelled exactly as the paper says: the task with the old weight leaves and
a task with the new weight joins as soon as both the departure has taken
effect and capacity allows.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from .quantum import QuantumSimulator, SimResult
from .priority import PriorityPolicy
from .rational import Weight
from .task import PeriodicTask, PfairTask

__all__ = ["AdmissionError", "DynamicPfairSystem", "earliest_leave_time"]


class AdmissionError(Exception):
    """A join would violate the feasibility condition Eq. (2)."""


def earliest_leave_time(task: PfairTask, last_scheduled: int, now: int) -> int:
    """Earliest slot at which ``task`` may depart, per the paper's rules.

    ``last_scheduled`` is the index of the task's last-scheduled subtask
    (0 if it never ran, in which case its lag is nonnegative and it may
    leave immediately).
    """
    if last_scheduled <= 0:
        return now
    st = task.table  # pattern parameters; IS offsets only delay, never hasten
    # Use the task's *actual* subtask record so IS offsets are honoured.
    sub = task.subtask(last_scheduled)
    if sub is None:  # stream already truncated at/below this index
        d = st.deadline(last_scheduled)
        b = st.b_bit(last_scheduled)
        gd = st.group_deadline(last_scheduled)
    else:
        d, b, gd = sub.deadline, sub.b_bit, sub.group_deadline
    if task.weight.is_heavy():
        return max(now, gd)
    return max(now, d + b)


class DynamicPfairSystem:
    """A running PD²-scheduled system that tasks may join and leave.

    Drive it with :meth:`advance` (slot by slot) or :meth:`run_until`;
    interleave :meth:`try_join` / :meth:`request_leave` calls at slot
    boundaries.  The admission invariant maintained is exact: the summed
    weight of all tasks whose departure has not yet taken effect never
    exceeds the processor count.
    """

    def __init__(self, processors: int, *, policy: Optional[PriorityPolicy] = None,
                 early_release: bool = False, trace: bool = False,
                 on_miss: str = "record") -> None:
        self.processors = processors
        self.sim = QuantumSimulator(
            [], processors, policy, early_release=early_release,
            trace=trace, on_miss=on_miss,
        )
        self.now = 0
        self._weights: Dict[int, Weight] = {}
        #: tid -> slot at which the departure takes effect (weight freed).
        self._departures: Dict[int, int] = {}
        self._tasks: Dict[int, PfairTask] = {}
        self._pending_joins: List[Tuple[int, PfairTask]] = []

    # -- capacity ------------------------------------------------------------

    def committed_weight(self) -> Weight:
        """Exact summed weight of tasks still holding capacity."""
        total = Weight.zero()
        for tid, w in self._weights.items():
            dep = self._departures.get(tid)
            if dep is None or dep > self.now:
                total = total + w
        return total

    def can_admit(self, task: PfairTask) -> bool:
        return self.committed_weight() + task.weight <= self.processors

    def tasks(self) -> List[PfairTask]:
        """All tasks ever admitted (including ones whose departure is
        pending or complete), in join order."""
        return list(self._tasks.values())

    def find_task(self, task_id: int) -> Optional[PfairTask]:
        """The admitted or pending-join task with ``task_id``, or ``None``.

        After a :meth:`restore`, previously held task references are stale
        (the snapshot carries copies); re-resolve them through this."""
        task = self._tasks.get(task_id)
        if task is not None:
            return task
        for _, pending in self._pending_joins:
            if pending.task_id == task_id:
                return pending
        return None

    def departure_time(self, task_id: int) -> Optional[int]:
        """Slot at which ``task_id``'s departure takes effect, or ``None``
        if no leave has been requested."""
        return self._departures.get(task_id)

    # -- joins / leaves --------------------------------------------------------

    def try_join(self, task: PfairTask) -> bool:
        """Admit ``task`` now if Eq. (2) allows; returns success.

        The task's first subtask must not be eligible before the current
        time (create periodic tasks with ``phase=system.now``).
        """
        if task.task_id in self._tasks:
            raise AdmissionError(f"{task.name} already joined")
        first = task.subtask(1)
        if first is not None and first.eligible < self.now:
            raise AdmissionError(
                f"{task.name} first subtask eligible at {first.eligible}, "
                f"before join time {self.now}"
            )
        if not self.can_admit(task):
            return False
        self._tasks[task.task_id] = task
        self._weights[task.task_id] = task.weight
        self.sim.add_task(task, self.now)
        return True

    def join(self, task: PfairTask) -> None:
        """Like :meth:`try_join` but raises :class:`AdmissionError` on
        insufficient capacity."""
        if not self.try_join(task):
            raise AdmissionError(
                f"admitting {task.name} (weight {task.weight}) would exceed "
                f"{self.processors} processors (committed {self.committed_weight()})"
            )

    def request_leave(self, task: PfairTask) -> int:
        """Begin ``task``'s departure; returns the slot at which its weight
        is freed.

        The task stops executing immediately (its subtask stream is
        truncated at the last-scheduled subtask), but its capacity stays
        committed until the paper's leave condition is met.

        A task whose join is still pending (queued by :meth:`reweight`)
        was never scheduled, so it may leave immediately: the queued join
        is cancelled and the departure takes effect now.
        """
        if task.task_id not in self._tasks:
            for i, (_, pending) in enumerate(self._pending_joins):
                if pending.task_id == task.task_id:
                    del self._pending_joins[i]
                    self._departures[task.task_id] = self.now
                    return self.now
            raise KeyError(f"{task.name} is not in the system")
        if task.task_id in self._departures:
            return self._departures[task.task_id]
        last = self.sim.last_scheduled_index.get(task.task_id, 0)
        departure = earliest_leave_time(task, last, self.now)
        task.last_subtask = last  # no further subtasks
        self._departures[task.task_id] = departure
        return departure

    def reweight(self, task: PfairTask, execution: int, period: int,
                 *, name: Optional[str] = None) -> Tuple[int, PeriodicTask]:
        """Schedule a weight change: old task leaves, replacement joins.

        Returns ``(join_time, new_task)``; the new task is created with a
        phase equal to the old task's departure time and joins then (the
        caller keeps advancing the system; the join is queued internally).
        """
        departure = self.request_leave(task)
        new_task = PeriodicTask(
            execution, period, phase=departure,
            name=name or f"{task.name}'",
        )
        self._pending_joins.append((departure, new_task))
        self._pending_joins.sort(key=lambda x: x[0])
        return departure, new_task

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> "DynamicPfairSystem":
        """Capture the complete system state (simulator included).

        Returns an independent deep copy: advancing or mutating ``self``
        afterwards does not disturb the snapshot.  Shared immutable window
        tables are not duplicated.  Long-running services use this to make
        multi-task admissions transactional — snapshot, attempt the joins,
        and :meth:`restore` on partial failure so a rejected request leaves
        no trace.
        """
        return copy.deepcopy(self)

    def restore(self, snap: "DynamicPfairSystem") -> None:
        """Adopt the state captured by :meth:`snapshot`, discarding all
        changes made since.

        The snapshot's internals are adopted *directly* (not re-copied), so
        a snapshot is one-shot: after a restore, take a fresh snapshot
        rather than restoring the same one twice.
        """
        if snap is self:
            raise ValueError("cannot restore a system from itself")
        if not isinstance(snap, DynamicPfairSystem):
            raise TypeError(f"expected a DynamicPfairSystem snapshot, "
                            f"got {type(snap).__name__}")
        self.__dict__.clear()
        self.__dict__.update(snap.__dict__)

    # -- time ------------------------------------------------------------------

    def advance(self, slots: int = 1) -> None:
        """Advance the system by ``slots`` quanta."""
        for _ in range(slots):
            for dep_time, new_task in list(self._pending_joins):
                if dep_time <= self.now:
                    self._pending_joins.remove((dep_time, new_task))
                    self.join(new_task)
            self.sim.step(self.now)
            self.now += 1

    def run_until(self, time: int) -> None:
        if time < self.now:
            raise ValueError(f"cannot run backwards ({time} < {self.now})")
        self.advance(time - self.now)

    def finish(self) -> SimResult:
        """Close out the run and return the simulator's result."""
        return self.sim.finalize(self.now)
