"""Temporal isolation: misbehaving tasks cannot steal others' shares.

The paper (Sec. 5.3) argues fairness *is* isolation: under PD², a task
that tries to execute beyond its prescribed share simply has no released
subtasks to schedule — excess demand becomes *future* subtasks whose
deadlines lie further out (exactly the IS treatment of early packet
arrivals), and every other task's windows are untouched.  EDF needs an
added mechanism (e.g. the constant-bandwidth server of
:class:`repro.core.uniproc.CBSServer`) to get the same guarantee.

This module provides the experiment used by the example and the tests:

* :func:`pfair_isolation_experiment` — victims plus an aggressor that
  demands ``demand_factor`` times its declared weight (as an IS stream of
  early arrivals).  The victims' miss count is structurally zero and their
  received allocation stays at their entitlement.
* :func:`edf_overrun_experiment` — the EDF contrast: the same nominal
  shares on one processor, the aggressor overrunning its WCET, with and
  without a CBS wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .quantum import QuantumSimulator
from .uniproc import CBSServer, UniprocSimulator, UniTask
from .task import IntraSporadicTask, PeriodicTask

__all__ = [
    "IsolationReport",
    "pfair_isolation_experiment",
    "edf_overrun_experiment",
]


@dataclass(frozen=True)
class IsolationReport:
    """Victim-side outcome of an isolation experiment."""

    victim_misses: int
    aggressor_misses: int
    victim_quanta: int
    victim_entitlement: int  # fluid share over the horizon, floored
    aggressor_quanta: int


def pfair_isolation_experiment(victim_weights: List[Tuple[int, int]],
                               aggressor_weight: Tuple[int, int],
                               processors: int, horizon: int, *,
                               demand_factor: int = 4) -> IsolationReport:
    """PD² with an aggressor demanding ``demand_factor``× its share.

    The aggressor is an IS task whose subtasks all arrive (become
    *eligible*) as early as possible — slot 0 — modelling a task that is
    always hungry; its deadlines still follow its declared weight, so PD²
    never grants it more than its share when others need their own.
    """
    victims = [PeriodicTask(e, p, name=f"victim{i}")
               for i, (e, p) in enumerate(victim_weights)]
    e_a, p_a = aggressor_weight
    # Pre-arrived stream: many subtasks already queued (a burst), eligible
    # immediately, deadlines spaced by the declared weight.
    n_sub = demand_factor * (horizon * e_a // p_a + 1)
    aggressor = IntraSporadicTask(
        e_a, p_a,
        offsets=[0] * n_sub,
        eligible_times=[0] * n_sub,
        name="aggressor",
    )
    tasks = victims + [aggressor]
    sim = QuantumSimulator(tasks, processors, trace=True)
    result = sim.run(horizon)
    victim_misses = sum(1 for m in result.stats.misses
                        if m.task.name.startswith("victim"))
    aggressor_misses = result.stats.miss_count - victim_misses
    victim_quanta = sum(result.stats.stats_for(v).quanta for v in victims)
    entitlement = sum(e * horizon // p for (e, p) in victim_weights)
    return IsolationReport(
        victim_misses=victim_misses,
        aggressor_misses=aggressor_misses,
        victim_quanta=victim_quanta,
        victim_entitlement=entitlement,
        aggressor_quanta=result.stats.stats_for(aggressor).quanta,
    )


def edf_overrun_experiment(victim: Tuple[int, int], aggressor: Tuple[int, int],
                           horizon: int, *, overrun_factor: int = 4,
                           use_cbs: bool = False) -> IsolationReport:
    """Uniprocessor EDF with the aggressor overrunning its WCET.

    Without CBS the overrun steals the victim's slack and the victim
    misses; with the aggressor wrapped in a CBS of its declared bandwidth,
    the victim is untouched.
    """
    e_v, p_v = victim
    e_a, p_a = aggressor
    victim_task = UniTask(e_v, p_v, name="victim")
    if use_cbs:
        requests = [(k * p_a, e_a * overrun_factor)
                    for k in range(horizon // p_a + 1)]
        server = CBSServer(e_a, p_a, name="aggressor", requests=requests)
        sim = UniprocSimulator([victim_task], servers=[server])
        res = sim.run(horizon)
        return IsolationReport(
            victim_misses=sum(1 for m in res.misses if m[0] == "victim"),
            aggressor_misses=0,
            victim_quanta=0,
            victim_entitlement=0,
            aggressor_quanta=server.served,
        )
    bad = UniTask(e_a, p_a, name="aggressor",
                  actual_exec=lambda i: e_a * overrun_factor)
    res = UniprocSimulator([victim_task, bad]).run(horizon)
    return IsolationReport(
        victim_misses=sum(1 for m in res.misses if m[0] == "victim"),
        aggressor_misses=sum(1 for m in res.misses if m[0] == "aggressor"),
        victim_quanta=0,
        victim_entitlement=0,
        aggressor_quanta=0,
    )
