"""Task models: periodic, sporadic, and intra-sporadic (IS) Pfair tasks.

The paper's task hierarchy, most general last:

* **Periodic** — an infinite sequence of identical jobs released every
  ``p`` slots (synchronous when the phase is 0).  Each job of execution
  cost ``e`` contributes ``e`` quantum-length subtasks whose windows are
  given by :mod:`repro.core.subtask`.
* **Sporadic** — the period is a *minimum* separation between job
  releases; a job released late shifts all of its subtasks' windows right
  by the same amount.
* **Intra-sporadic (IS)** — sporadic separation is allowed *within* a job:
  each individual subtask ``T_i`` may be shifted right by an offset
  ``theta(T_i)``, with offsets nondecreasing in ``i``.  This models e.g.
  packets of one flow arriving late or in bursts (paper, Sec. 2).  An early
  packet is handled by letting the subtask become *eligible* before its
  Pfair release while its deadline stays anchored to the release.

All three expose the same interface: :meth:`PfairTask.subtask` returns the
absolute :class:`Subtask` record (eligibility, release, deadline, b-bit,
group deadline) for a 1-based index, and the simulator is model-agnostic.

ERfair early releasing ("a subtask becomes eligible as soon as its
predecessor in the same job completes") is *dynamic* — it depends on the
schedule — so the mechanism lives in the scheduler
(:class:`repro.core.pd2.PD2Scheduler` with ``early_release=True``); tasks
only carry the per-task opt-in flag (``early_release=True`` here) used by
mixed Pfair/ERfair systems.  Static early eligibility (bursty IS
arrivals) is per-task data and lives here.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence

from .rational import Weight, weight_sum
from .subtask import WindowTable, window_table

__all__ = [
    "Subtask",
    "PfairTask",
    "PeriodicTask",
    "SporadicTask",
    "IntraSporadicTask",
    "TaskSet",
]

_task_counter = itertools.count()


class Subtask:
    """One quantum of work, with its absolute Pfair parameters.

    ``eligible <= release`` always holds; a subtask may be scheduled in any
    slot ``t`` with ``t >= eligible`` (subject to its predecessor having
    been scheduled), but its *priority* is determined by ``release``,
    ``deadline``, ``b_bit`` and ``group_deadline``.
    """

    __slots__ = ("task", "index", "eligible", "release", "deadline", "b_bit",
                 "group_deadline")

    def __init__(self, task: "PfairTask", index: int, eligible: int,
                 release: int, deadline: int, b_bit: int,
                 group_deadline: int) -> None:
        self.task = task
        self.index = index
        self.eligible = eligible
        self.release = release
        self.deadline = deadline
        self.b_bit = b_bit
        self.group_deadline = group_deadline

    @property
    def window(self) -> tuple:
        """The half-open interval ``[release, deadline)``."""
        return (self.release, self.deadline)

    @property
    def job_index(self) -> int:
        """1-based index of the job this subtask belongs to."""
        return (self.index - 1) // self.task.execution + 1

    def is_last_of_job(self) -> bool:
        return self.index % self.task.execution == 0

    def __repr__(self) -> str:
        return (f"Subtask({self.task.name}[{self.index}] "
                f"w=[{self.release},{self.deadline}) b={self.b_bit} "
                f"D={self.group_deadline})")


class PfairTask:
    """Base class: a recurrent task with integer weight ``e/p`` in quanta.

    Subclasses control how subtask windows are placed in absolute time via
    :meth:`_offset` (the IS ``theta``) and :meth:`_eligible`.
    """

    def __init__(self, execution: int, period: int, *, name: Optional[str] = None,
                 task_id: Optional[int] = None,
                 early_release: bool = False) -> None:
        self.weight = Weight.of_task(execution, period)
        self.execution = execution
        self.period = period
        #: Per-task ERfair flag: this task's subtasks become eligible as
        #: soon as their same-job predecessor completes, even if the
        #: scheduler-wide flag is off.  Mixed Pfair/ERfair systems
        #: (Anderson & Srinivasan 2001, cited by the paper) set this on a
        #: subset of tasks; optimality is preserved.
        self.early_release = early_release
        self.table: WindowTable = window_table(execution, period)
        self.task_id = next(_task_counter) if task_id is None else task_id
        self.name = name if name is not None else f"T{self.task_id}"
        #: When set, the task generates no subtasks beyond this index — how a
        #: dynamic *leave* (see :mod:`repro.core.dynamic`) truncates the
        #: stream.  ``None`` means the stream is infinite.
        self.last_subtask: Optional[int] = None

    # -- model-specific hooks ----------------------------------------------

    def _offset(self, index: int) -> Optional[int]:
        """IS offset ``theta(T_index)``; ``None`` if not yet known
        (e.g. a sporadic job that has not arrived)."""
        return 0

    def _eligible(self, index: int, release: int) -> int:
        """Static eligibility time (``<= release``)."""
        return release

    # -- public API ----------------------------------------------------------

    def subtask(self, index: int) -> Optional[Subtask]:
        """Absolute parameters of subtask ``index`` (1-based), or ``None``
        if its arrival is not yet determined or the task has left."""
        if self.last_subtask is not None and index > self.last_subtask:
            return None
        theta = self._offset(index)
        if theta is None:
            return None
        base = self.table.params(index)
        release = base.release + theta
        gd = base.group_deadline + theta if base.group_deadline else 0
        return Subtask(
            task=self,
            index=index,
            eligible=self._eligible(index, release),
            release=release,
            deadline=base.deadline + theta,
            b_bit=base.b_bit,
            group_deadline=gd,
        )

    def subtasks_until(self, horizon: int) -> Iterable[Subtask]:
        """Yield subtasks in index order while ``release < horizon``."""
        i = 1
        while True:
            st = self.subtask(i)
            if st is None or st.release >= horizon:
                return
            yield st
            i += 1

    def is_light(self) -> bool:
        """True iff the weight is below 1/2 (paper, Sec. 2)."""
        return self.weight.is_light()

    def is_heavy(self) -> bool:
        """True iff the weight is at least 1/2 (paper, Sec. 2)."""
        return self.weight.is_heavy()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.execution}/{self.period})"


class PeriodicTask(PfairTask):
    """Synchronous (phase 0) or asynchronous periodic task."""

    def __init__(self, execution: int, period: int, *, phase: int = 0,
                 name: Optional[str] = None, task_id: Optional[int] = None,
                 early_release: bool = False) -> None:
        super().__init__(execution, period, name=name, task_id=task_id,
                         early_release=early_release)
        if phase < 0:
            raise ValueError(f"phase must be nonnegative, got {phase}")
        self.phase = phase

    def _offset(self, index: int) -> int:
        return self.phase


class SporadicTask(PfairTask):
    """Job releases separated by *at least* the period.

    ``job_releases`` lists the absolute release times of jobs 1, 2, ...;
    consecutive entries must differ by at least ``period``.  Subtasks of
    jobs beyond the supplied list are unknown (``subtask`` returns
    ``None``) until :meth:`release_job` records their arrival — this is how
    an online simulation feeds arrivals in.
    """

    def __init__(self, execution: int, period: int,
                 job_releases: Sequence[int] = (), *,
                 name: Optional[str] = None, task_id: Optional[int] = None,
                 early_release: bool = False) -> None:
        super().__init__(execution, period, name=name, task_id=task_id,
                         early_release=early_release)
        self.job_releases: List[int] = []
        for r in job_releases:
            self.release_job(r)

    def release_job(self, time: int) -> int:
        """Record the arrival of the next job at ``time``; returns its
        1-based job index."""
        if self.job_releases:
            min_next = self.job_releases[-1] + self.period
            if time < min_next:
                raise ValueError(
                    f"{self.name}: sporadic separation violated — job at {time} "
                    f"but previous job at {self.job_releases[-1]} implies >= {min_next}"
                )
        elif time < 0:
            raise ValueError(f"release time must be nonnegative, got {time}")
        self.job_releases.append(time)
        return len(self.job_releases)

    def _offset(self, index: int) -> Optional[int]:
        job = (index - 1) // self.execution  # 0-based job index
        if job >= len(self.job_releases):
            return None
        # theta = actual release minus the synchronous-periodic release.
        return self.job_releases[job] - job * self.period


class IntraSporadicTask(PfairTask):
    """IS task: per-subtask offsets ``theta(T_i)``, nondecreasing.

    ``offsets[i-1]`` is ``theta(T_i)``.  Subtasks beyond the supplied list
    are unknown until :meth:`arrive` appends more.  Optional
    ``eligible_times`` (absolute, per subtask) allow *early* arrivals:
    ``eligible_times[i-1] <= r(T_i)`` makes subtask ``i`` schedulable
    before its window opens while its deadline stays put — the paper's
    treatment of bursty packet arrivals.
    """

    def __init__(self, execution: int, period: int,
                 offsets: Sequence[int] = (), *,
                 eligible_times: Optional[Sequence[int]] = None,
                 name: Optional[str] = None, task_id: Optional[int] = None,
                 early_release: bool = False) -> None:
        super().__init__(execution, period, name=name, task_id=task_id,
                         early_release=early_release)
        self.offsets: List[int] = []
        self.eligible_times: List[Optional[int]] = []
        for k, theta in enumerate(offsets):
            elig = None
            if eligible_times is not None and k < len(eligible_times):
                elig = eligible_times[k]
            self.arrive(theta, eligible=elig)

    def arrive(self, theta: int, *, eligible: Optional[int] = None) -> int:
        """Record the arrival of the next subtask with offset ``theta``;
        returns its 1-based index."""
        if theta < 0:
            raise ValueError(f"IS offsets must be nonnegative, got {theta}")
        if self.offsets and theta < self.offsets[-1]:
            raise ValueError(
                f"{self.name}: IS offsets must be nondecreasing "
                f"({theta} after {self.offsets[-1]})"
            )
        index = len(self.offsets) + 1
        release = self.table.release(index) + theta
        if eligible is not None and eligible > release:
            raise ValueError(
                f"{self.name}: eligibility {eligible} after release {release}"
            )
        self.offsets.append(theta)
        self.eligible_times.append(eligible)
        return index

    def _offset(self, index: int) -> Optional[int]:
        if index > len(self.offsets):
            return None
        return self.offsets[index - 1]

    def _eligible(self, index: int, release: int) -> int:
        elig = self.eligible_times[index - 1]
        return release if elig is None else elig


class TaskSet:
    """An ordered collection of Pfair tasks with exact feasibility checks."""

    def __init__(self, tasks: Iterable[PfairTask] = ()) -> None:
        self.tasks: List[PfairTask] = list(tasks)

    def add(self, task: PfairTask) -> None:
        """Append a task to the set."""
        self.tasks.append(task)

    def total_weight(self) -> Weight:
        """Exact summed weight of all tasks."""
        return weight_sum(t.weight for t in self.tasks)

    def is_feasible(self, processors: int) -> bool:
        """Eq. (2) of the paper: feasible on M processors iff
        ``sum wt(T) <= M`` (exact)."""
        if processors < 1:
            raise ValueError("need at least one processor")
        return self.total_weight() <= processors

    def min_processors(self) -> int:
        """Smallest M on which the set is Pfair-feasible (no overheads)."""
        return max(1, self.total_weight().ceil())

    def hyperperiod(self) -> int:
        """LCM of periods — one full cycle of a synchronous periodic set."""
        from math import lcm

        if not self.tasks:
            return 1
        return lcm(*(t.period for t in self.tasks))

    def __iter__(self) -> "Iterator[PfairTask]":
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __getitem__(self, i: int) -> PfairTask:
        return self.tasks[i]

    def __repr__(self) -> str:
        return f"TaskSet({len(self.tasks)} tasks, U={self.total_weight()})"
