"""Minimal discrete-event core shared by the event-driven simulators.

The quantum (Pfair) simulator is slot-synchronous and does not need this;
the uniprocessor EDF/RM simulator and the global-EDF/RM simulator are
event-driven (releases, completions, budget exhaustions) and share this
tiny time-ordered event queue.  Events are ``(time, seq, payload)`` with a
monotonically increasing sequence number so payloads never need to be
comparable and simultaneous events pop in insertion order (deterministic
replays matter for tests).
"""

from __future__ import annotations

import heapq
from typing import Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["EventQueue"]


class EventQueue(Generic[T]):
    """A deterministic time-ordered event heap."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, T]] = []
        self._seq = 0

    def push(self, time: int, payload: T) -> None:
        if time < 0:
            raise ValueError(f"event time must be nonnegative, got {time}")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, payload))

    def peek_time(self) -> Optional[int]:
        """Time of the next event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[int, T]:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def pop_at(self, time: int) -> List[T]:
        """Pop and return every payload whose event time equals ``time``."""
        out: List[T] = []
        while self._heap and self._heap[0][0] == time:
            out.append(heapq.heappop(self._heap)[2])
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
