"""Packed PD² priority keys: the whole tie-break chain in one integer.

The reference ready queue (:class:`~repro.core.quantum.QuantumSimulator`)
is a heap of tuples ``(deadline, 1 - b, -D, task_id, index)`` built by
:meth:`~repro.core.priority.PD2Priority.key`.  Every push/pop compares
tuples element by element and every activation allocates a fresh tuple.
This module packs the same chain into a single Python ``int`` so the heap
holds plain integers — one machine comparison per level instead of up to
five object comparisons — and so a whole period's worth of keys can be
precomputed once per weight and reused for every job by adding a constant.

Layout (most significant first)::

    | deadline (unbounded) | 1-b : 1 | gd-field : 40 | task_id : 22 | index : 32 |

* ``deadline`` occupies the (unbounded) top of the integer, so it
  dominates the comparison exactly as it does in the tuple.
* the ``1-b`` bit follows: b-bit 1 beats b-bit 0.
* the group-deadline field must *reverse* the order (later group deadline
  = higher priority) inside a fixed-width field.  We exploit that the
  field is only ever compared between keys with **equal deadlines** (the
  deadline field above differs otherwise), and that a heavy subtask's
  group deadline satisfies ``D(T_i) >= d(T_i)``, to store the bounded
  difference::

      gd-field = GD_LIGHT              if D = 0   (light task: ties last)
      gd-field = GD_LIGHT - 1 - (D-d)  otherwise  (later D -> smaller field)

  Comparing gd-fields at equal ``d`` is then exactly comparing ``-D``:
  both branches of PD²'s second tie-break.  ``D - d`` is bounded by the
  period (the group-deadline walk ends at the job boundary), far below
  the 40-bit field.
* ``task_id`` and ``index`` make the order total, mirroring the tuple's
  deterministic tail.

The packed and tuple keys induce the same total order over all subtasks
whose parameters fit the fixed-width fields — the hypothesis property
test in ``tests/test_core_keytab.py`` is the load-bearing correctness
argument for the fast path, and :func:`check_capacity` rejects systems
that would overflow a field (they fall back to the reference simulator).

Like :class:`~repro.core.subtask.WindowTable`, packed keys are periodic
in the subtask index: subtask ``i = q*e + j`` has key
``base[j] + q * job_step`` where ``job_step`` advances the deadline field
by one period and the index field by one job's worth of subtasks.
:class:`TaskKeyTable` precomputes ``base`` per task (folding in the task
id and phase), making key generation two integer operations per subtask.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, List, Tuple

import numpy as np

from .subtask import window_table

if TYPE_CHECKING:
    from .task import PeriodicTask

__all__ = [
    "IDX_BITS",
    "ID_BITS",
    "GD_BITS",
    "MAX_TASK_ID",
    "MAX_INDEX",
    "pack_key",
    "unpack_key",
    "TaskKeyTable",
    "task_key_table",
    "check_capacity",
    "column_block",
]

#: Field widths.  A 32-bit index field allows ~4e9 subtasks per task
#: (simulation horizons beyond any campaign), 22 bits allow 4M concurrent
#: task ids, and the 40-bit group-deadline field holds any ``D - d``
#: difference for periods up to ~10^12 quanta.
IDX_BITS = 32
ID_BITS = 22
GD_BITS = 40

_ID_SHIFT = IDX_BITS
_GD_SHIFT = IDX_BITS + ID_BITS
_B_SHIFT = IDX_BITS + ID_BITS + GD_BITS
_D_SHIFT = _B_SHIFT + 1

_IDX_MASK = (1 << IDX_BITS) - 1
_ID_MASK = (1 << ID_BITS) - 1
_GD_MASK = (1 << GD_BITS) - 1

#: Light tasks (group deadline 0) sort after every heavy task in a
#: deadline/b-bit tie: the largest value of the reversed field.
GD_LIGHT = _GD_MASK
_GD_TOP = GD_LIGHT - 1

MAX_TASK_ID = _ID_MASK
MAX_INDEX = _IDX_MASK
_MAX_GD_DELTA = _GD_TOP


def pack_key(deadline: int, b_bit: int, group_deadline: int,
             task_id: int, index: int) -> int:
    """Pack one subtask's PD² priority into a single integer.

    Induces the same order as the tuple
    ``(deadline, 1 - b_bit, -group_deadline, task_id, index)`` over all
    real subtask parameter combinations (where ``group_deadline`` is
    either 0 or ``>= deadline``) within the field bounds.
    """
    if not 0 <= b_bit <= 1:
        raise OverflowError(f"b bit {b_bit} outside [0, 1]")
    if group_deadline:
        delta = group_deadline - deadline
        if not 0 <= delta <= _MAX_GD_DELTA:
            raise OverflowError(
                f"group deadline offset {delta} outside [0, {_MAX_GD_DELTA}]"
            )
        gd_field = _GD_TOP - delta
    else:
        gd_field = GD_LIGHT
    if not 0 <= task_id <= MAX_TASK_ID:
        raise OverflowError(f"task id {task_id} outside [0, {MAX_TASK_ID}]")
    if not 0 <= index <= MAX_INDEX:
        raise OverflowError(f"subtask index {index} outside [0, {MAX_INDEX}]")
    return (((deadline << 1 | (1 - b_bit)) << GD_BITS | gd_field)
            << ID_BITS | task_id) << IDX_BITS | index


def unpack_key(key: int) -> Tuple[int, int, int]:
    """``(deadline, task_id, index)`` of a packed key.

    The b-bit and group deadline are recoverable too, but the simulator
    only ever needs these three (for miss records and bookkeeping).
    """
    return key >> _D_SHIFT, (key >> _ID_SHIFT) & _ID_MASK, key & _IDX_MASK


class _SharedKeyTable:
    """Per-weight packed parameters, shared by all tasks of one ``(e, p)``.

    ``base[j]`` is the packed key of subtask ``j+1`` of job 1 with task id
    0 and phase 0; ``rel[j]`` is its pseudo-release.  A concrete task
    obtains its keys by adding ``task_id`` into the id field and its phase
    into the deadline field — see :class:`TaskKeyTable`.
    """

    __slots__ = ("execution", "period", "base", "rel", "job_step")

    def __init__(self, execution: int, period: int) -> None:
        table = window_table(execution, period)
        self.execution = execution
        self.period = period
        self.rel: List[int] = [table.release(i)
                               for i in range(1, execution + 1)]
        self.base: List[int] = [
            pack_key(table.deadline(i), table.b_bit(i),
                     table.group_deadline(i), 0, i)
            for i in range(1, execution + 1)
        ]
        #: Key increment from one job to the next: the deadline field
        #: advances by the period, the index field by ``e`` subtasks.
        #: (The group-deadline field stores ``D - d``, which is
        #: job-invariant, and the b-bit pattern repeats.)
        self.job_step = (period << _D_SHIFT) + execution


@lru_cache(maxsize=None)
def _shared_key_table(execution: int, period: int) -> _SharedKeyTable:
    return _SharedKeyTable(execution, period)


class TaskKeyTable:
    """O(1) packed-key generator for one task.

    ``key(i)`` returns the packed PD² priority of subtask ``i`` (1-based)
    and ``release(i)`` its pseudo-release, both in absolute slots
    (the task's phase included).
    """

    __slots__ = ("execution", "period", "phase", "base", "rel", "job_step")

    def __init__(self, execution: int, period: int, task_id: int,
                 phase: int = 0) -> None:
        shared = _shared_key_table(execution, period)
        if not 0 <= task_id <= MAX_TASK_ID:
            raise OverflowError(f"task id {task_id} outside [0, {MAX_TASK_ID}]")
        self.execution = execution
        self.period = period
        self.phase = phase
        offset = (phase << _D_SHIFT) | (task_id << _ID_SHIFT)
        self.base: List[int] = [k + offset for k in shared.base]
        self.rel: List[int] = ([r + phase for r in shared.rel]
                               if phase else shared.rel)
        self.job_step = shared.job_step

    def key(self, index: int) -> int:
        q, j = divmod(index - 1, self.execution)
        return self.base[j] + q * self.job_step

    def release(self, index: int) -> int:
        q, j = divmod(index - 1, self.execution)
        return self.rel[j] + q * self.period


@lru_cache(maxsize=None)
def _column_base(
    execution: int, period: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One job's subtask parameter columns for ``(e, p)``, phase 0.

    Arrays of length ``e`` indexed by the within-job offset ``j`` (subtask
    ``j+1`` of job 1): pseudo-release, pseudo-deadline, ``1 - b`` and the
    job-invariant group-deadline offset ``D - d`` (``-1`` marks a light
    task, whose group deadline is 0 by convention).  All int64.
    """
    table = window_table(execution, period)
    rel = np.empty(execution, dtype=np.int64)
    dl = np.empty(execution, dtype=np.int64)
    bbar = np.empty(execution, dtype=np.int64)
    gdd = np.empty(execution, dtype=np.int64)
    for j in range(execution):
        i = j + 1
        d = table.deadline(i)
        gd = table.group_deadline(i)
        rel[j] = table.release(i)
        dl[j] = d
        bbar[j] = 1 - table.b_bit(i)
        gdd[j] = (gd - d) if gd else -1
    rel.setflags(write=False)
    dl.setflags(write=False)
    bbar.setflags(write=False)
    gdd.setflags(write=False)
    return rel, dl, bbar, gdd


def column_block(
    execution: int, period: int, phase: int, start_index: int, count: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized subtask parameter columns for the struct-of-arrays kernel.

    Returns int64 arrays ``(release, deadline, b_bar, gd_delta)`` of
    length ``count`` covering subtasks ``start_index ..
    start_index + count - 1`` (1-based) of a periodic task, releases and
    deadlines in absolute slots (phase included).  Every parameter is
    periodic in the index with period ``e`` (a job shifts times by ``p``),
    so the whole block is one gather plus one vectorized add over the
    cached :func:`_column_base` row — no per-subtask Python arithmetic.
    """
    rel0, dl0, bbar0, gdd0 = _column_base(execution, period)
    idx0 = np.arange(start_index - 1, start_index - 1 + count, dtype=np.int64)
    q, j = np.divmod(idx0, execution)
    shift = q * period + phase
    return rel0[j] + shift, dl0[j] + shift, bbar0[j], gdd0[j]


def task_key_table(task: "PeriodicTask") -> TaskKeyTable:
    """Build the :class:`TaskKeyTable` of a synchronous periodic task."""
    return TaskKeyTable(task.execution, task.period, task.task_id,
                        getattr(task, "phase", 0))


def check_capacity(tasks: "Iterable[PeriodicTask]", horizon: int) -> bool:
    """True when every packed-key field fits for ``tasks`` over ``horizon``.

    Overflow is astronomically unlikely at realistic scales (ids beyond
    4M, single-task horizons beyond 4G subtasks), but the fast path
    degrades to the reference simulator rather than corrupting an order.
    """
    for t in tasks:
        if t.task_id > MAX_TASK_ID:
            return False
        # Subtasks released within the horizon: at most ceil(h/p)*e + e.
        if ((horizon // t.period + 2) * t.execution) > MAX_INDEX:
            return False
    return True
