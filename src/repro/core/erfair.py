"""ER-PD² — early-release fair scheduling (work-conserving PD²).

Plain Pfair scheduling is *not* work conserving: a subtask that executes
early in its window makes its successor ineligible until the successor's
window opens, so processors can idle while work is pending.  Anderson &
Srinivasan's ERfair model lets a subtask become eligible as soon as its
predecessor in the same job completes; priorities are unchanged, lags are
only bounded above (``lag < 1``), deadlines are still never missed, and
job response times improve in lightly loaded systems.

``ERPD2Scheduler`` is simply :class:`~repro.core.pd2.PD2Scheduler` with
``early_release=True``; it exists as a named algorithm because the paper
treats ERfair as a distinct scheme.  The work-conservation property (no
processor idles while some task has pending eligible-or-early-releasable
work) is checked by :func:`is_work_conserving_run`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from .quantum import SimResult
from .pd2 import PD2Scheduler
from .task import PfairTask

__all__ = ["ERPD2Scheduler", "schedule_erfair", "is_work_conserving_run"]


class ERPD2Scheduler(PD2Scheduler):
    """PD² with ERfair early releases (work-conserving)."""

    def __init__(self, tasks: Iterable[PfairTask], processors: int, *,
                 trace: bool = False, on_miss: str = "record",
                 arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
                 capacity_fn: Optional[Callable[[int], int]] = None) -> None:
        super().__init__(
            tasks, processors, early_release=True, trace=trace,
            on_miss=on_miss, arrivals=arrivals, capacity_fn=capacity_fn,
        )


def schedule_erfair(tasks: Iterable[PfairTask], processors: int, horizon: int,
                    *, trace: bool = True, on_miss: str = "record") -> SimResult:
    """Run ER-PD² over ``horizon`` slots and return the :class:`SimResult`."""
    return ERPD2Scheduler(tasks, processors, trace=trace, on_miss=on_miss).run(horizon)


def is_work_conserving_run(result: SimResult) -> bool:
    """True iff no slot idled a processor while a job had unfinished work.

    Checked against the ERfair notion of pending work for synchronous
    periodic tasks: task ``T`` has work pending at slot ``t`` if some job
    released at or before ``t`` has unfinished subtasks.  This is the
    property plain Pfair lacks and ERfair restores.
    """
    if result.trace is None:
        raise ValueError("run with trace=True to check work conservation")
    trace = result.trace
    tasks = list(result.tasks)
    # Completed quanta per task, swept forward in time.
    done = {t.task_id: 0 for t in tasks}
    for slot in range(result.horizon):
        allocs = trace.at(slot)
        idle = result.processors - len(allocs)
        if idle > 0:
            scheduled_ids = {a.task.task_id for a in allocs}
            for task in tasks:
                if task.task_id in scheduled_ids:
                    continue
                # Work released by now: all subtasks of jobs whose release
                # (job k releases at (k-1)*p + phase) is <= slot.
                phase = getattr(task, "phase", 0)
                jobs_released = max(0, (slot - phase) // task.period + 1) \
                    if slot >= phase else 0
                demand = jobs_released * task.execution
                if done[task.task_id] < demand:
                    return False
        for a in allocs:
            done[a.task.task_id] += 1
    return True
