"""Subtask parameters: pseudo-releases, pseudo-deadlines, b-bits, group deadlines.

Under Pfair scheduling a task ``T`` of weight ``wt(T) = e/p`` is divided into
an infinite sequence of quantum-length *subtasks* ``T_1, T_2, ...``.  The
paper (Sec. 2) defines, for subtask ``T_i`` (``i >= 1``)::

    r(T_i) = floor((i-1) / wt(T))        pseudo-release
    d(T_i) = ceil(i / wt(T))             pseudo-deadline
    w(T_i) = [r(T_i), d(T_i))            window

``T_i`` must be scheduled within its window or the Pfair lag bound
``-1 < lag < 1`` is violated.  The PD² tie-break parameters are:

* the *b-bit* ``b(T_i)``: 1 iff ``T_i``'s window overlaps ``T_{i+1}``'s
  (consecutive windows overlap by one slot or are disjoint);
* the *group deadline* ``D(T_i)``: the earliest time by which a cascade of
  forced allocations through length-2 windows must end — the earliest
  ``t >= d(T_i)`` such that for some subtask ``T_k`` either
  ``t = d(T_k) and b(T_k) = 0`` or ``t + 1 = d(T_k) and |w(T_k)| = 3``.

Everything here is exact integer arithmetic on the pair ``(e, p)``:

    r(T_i) = (i-1)*p // e
    d(T_i) = ceil(i*p / e) = (i*p + e - 1) // e
    b(T_i) = 1  iff  i*p mod e != 0

All four parameters are periodic in the subtask index with period ``e``
(shifting the index by ``e`` shifts times by ``p``), so :class:`WindowTable`
precomputes one job's worth of parameters and answers queries for any index
in O(1).  This memoisation is what keeps the PD² simulator's per-slot cost
at O(M log N) instead of recomputing group deadlines by walking cascades.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, NamedTuple

__all__ = [
    "SubtaskParams",
    "WindowTable",
    "window_table",
    "pseudo_release",
    "pseudo_deadline",
    "b_bit",
    "window_length",
    "group_deadline",
]


def pseudo_release(execution: int, period: int, index: int) -> int:
    """``r(T_i) = floor((i-1)*p/e)`` for 1-based subtask ``index``."""
    _check(execution, period, index)
    return (index - 1) * period // execution


def pseudo_deadline(execution: int, period: int, index: int) -> int:
    """``d(T_i) = ceil(i*p/e)`` for 1-based subtask ``index``."""
    _check(execution, period, index)
    return (index * period + execution - 1) // execution


def b_bit(execution: int, period: int, index: int) -> int:
    """``b(T_i)``: 1 iff ``T_i``'s window overlaps ``T_{i+1}``'s.

    The windows overlap iff ``r(T_{i+1}) = d(T_i) - 1``, which holds iff
    ``i*p`` is not a multiple of ``e``.
    """
    _check(execution, period, index)
    return 1 if (index * period) % execution != 0 else 0


def window_length(execution: int, period: int, index: int) -> int:
    """``|w(T_i)| = d(T_i) - r(T_i)``."""
    return pseudo_deadline(execution, period, index) - pseudo_release(
        execution, period, index
    )


def group_deadline(execution: int, period: int, index: int) -> int:
    """``D(T_i)`` — the paper's group deadline, 0 for light tasks.

    For a heavy task (``2e >= p``) the value is found by walking subtasks
    ``k = i, i+1, ...`` and returning the first *candidate* time at or after
    ``d(T_i)``, where subtask ``T_k`` contributes candidate ``d(T_k)`` when
    ``b(T_k) = 0`` and candidate ``d(T_k) - 1`` when ``|w(T_k)| = 3``.
    Candidates are nondecreasing in ``k`` so the first hit is the minimum.
    The walk always terminates: at a job boundary (``e | k``) the b-bit is 0.

    Light tasks (weight < 1/2) have no length-2 windows, so no cascades can
    form; by convention their group deadline is 0 (ties among them are
    broken arbitrarily by PD²).
    """
    _check(execution, period, index)
    if 2 * execution < period:  # light task
        return 0
    d_i = pseudo_deadline(execution, period, index)
    k = index
    while True:
        d_k = pseudo_deadline(execution, period, k)
        if window_length(execution, period, k) == 3 and d_k - 1 >= d_i:
            return d_k - 1
        if b_bit(execution, period, k) == 0 and d_k >= d_i:
            return d_k
        k += 1


def _check(execution: int, period: int, index: int) -> None:
    if execution <= 0 or period <= 0 or execution > period:
        raise ValueError(
            f"invalid weight {execution}/{period}: need 0 < e <= p in integer quanta"
        )
    if index < 1:
        raise ValueError(f"subtask indices are 1-based, got {index}")


class SubtaskParams(NamedTuple):
    """All PD²-relevant parameters of one subtask, in absolute slots."""

    release: int
    deadline: int
    b_bit: int
    group_deadline: int

    @property
    def window_length(self) -> int:
        return self.deadline - self.release


class WindowTable:
    """Memoised subtask parameters for a weight ``e/p``.

    One job's worth (indices ``1..e``) of ``(r, d, b, D)`` is computed once;
    parameters for subtask ``i = q*e + j`` are the job-1 parameters shifted
    by ``q*p`` slots (b-bits are unshifted).  Obtain instances through
    :func:`window_table`, which caches by ``(e, p)`` so all tasks sharing a
    weight share one table.
    """

    __slots__ = ("execution", "period", "_rel", "_dl", "_b", "_gd")

    def __init__(self, execution: int, period: int) -> None:
        _check(execution, period, 1)
        self.execution = execution
        self.period = period
        e, p = execution, period
        self._rel: List[int] = [(i - 1) * p // e for i in range(1, e + 1)]
        self._dl: List[int] = [(i * p + e - 1) // e for i in range(1, e + 1)]
        self._b: List[int] = [1 if (i * p) % e != 0 else 0 for i in range(1, e + 1)]
        self._gd: List[int] = [group_deadline(e, p, i) for i in range(1, e + 1)]

    def _split(self, index: int) -> tuple:
        if index < 1:
            raise ValueError(f"subtask indices are 1-based, got {index}")
        q, j = divmod(index - 1, self.execution)
        return q, j

    def release(self, index: int) -> int:
        q, j = self._split(index)
        return self._rel[j] + q * self.period

    def deadline(self, index: int) -> int:
        q, j = self._split(index)
        return self._dl[j] + q * self.period

    def b_bit(self, index: int) -> int:
        _, j = self._split(index)
        return self._b[j]

    def group_deadline(self, index: int) -> int:
        q, j = self._split(index)
        gd = self._gd[j]
        return gd + q * self.period if gd else 0

    def window_length(self, index: int) -> int:
        _, j = self._split(index)
        return self._dl[j] - self._rel[j]

    def params(self, index: int) -> SubtaskParams:
        q, j = self._split(index)
        shift = q * self.period
        gd = self._gd[j]
        return SubtaskParams(
            release=self._rel[j] + shift,
            deadline=self._dl[j] + shift,
            b_bit=self._b[j],
            group_deadline=gd + shift if gd else 0,
        )

    def __deepcopy__(self, memo: object) -> "WindowTable":
        """Tables are immutable and shared per weight (see
        :func:`window_table`); deep copies of task systems — e.g.
        :meth:`repro.core.dynamic.DynamicPfairSystem.snapshot` — keep
        sharing them rather than duplicating the precomputed lists."""
        return self

    def __repr__(self) -> str:
        return f"WindowTable({self.execution}/{self.period})"


@lru_cache(maxsize=None)
def window_table(execution: int, period: int) -> WindowTable:
    """Shared, cached :class:`WindowTable` for the weight ``e/p``.

    ``(e, p)`` is *not* reduced to lowest terms: a task with ``e=4, p=6``
    has a different window pattern within its period-6 job than one with
    ``e=2, p=3`` has across two jobs only at job boundaries — the Pfair
    window formulas depend only on the ratio, so the tables coincide, but
    job-boundary bookkeeping (e.g. job indices for ERfair eligibility)
    depends on the unreduced pair.  Caching unreduced keys keeps both
    correct and costs a few duplicate tables at most.
    """
    return WindowTable(execution, period)
