"""Schedule traces and ASCII rendering of windows and schedules.

A :class:`ScheduleTrace` is the full record of who ran where in every slot.
Long Monte-Carlo campaigns run the simulator with tracing disabled (stats
only); traces are for tests, validators, and the figure reproductions that
are literally pictures of schedules (Fig. 1's window diagrams and Fig. 5's
supertask schedule are reproduced as ASCII art by :func:`render_windows`
and :func:`render_schedule`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from .task import PfairTask

__all__ = ["Allocation", "ScheduleTrace", "render_windows", "render_schedule"]


class Allocation(Tuple[int, int, PfairTask, int]):
    """``(slot, processor, task, subtask_index)`` record."""

    __slots__ = ()

    def __new__(cls, slot: int, processor: int, task: PfairTask,
                index: int) -> "Allocation":
        return super().__new__(cls, (slot, processor, task, index))

    @property
    def slot(self) -> int:
        return self[0]

    @property
    def processor(self) -> int:
        return self[1]

    @property
    def task(self) -> PfairTask:
        return self[2]

    @property
    def subtask_index(self) -> int:
        return self[3]


class ScheduleTrace:
    """Append-only allocation record with per-slot and per-task views."""

    def __init__(self) -> None:
        self._by_slot: Dict[int, List[Allocation]] = defaultdict(list)
        self._by_task: Dict[int, List[Allocation]] = defaultdict(list)
        self.horizon = 0

    def record(self, slot: int, processor: int, task: PfairTask, index: int) -> None:
        alloc = Allocation(slot, processor, task, index)
        self._by_slot[slot].append(alloc)
        self._by_task[task.task_id].append(alloc)
        if slot + 1 > self.horizon:
            self.horizon = slot + 1

    def at(self, slot: int) -> List[Allocation]:
        """Allocations in ``slot`` (possibly empty)."""
        return self._by_slot.get(slot, [])

    def of_task(self, task: PfairTask) -> List[Allocation]:
        """All allocations of ``task``, in slot order."""
        return self._by_task.get(task.task_id, [])

    def slots_of(self, task: PfairTask) -> List[int]:
        return [a.slot for a in self.of_task(task)]

    def allocations(self) -> Iterable[Allocation]:
        for slot in sorted(self._by_slot):
            yield from self._by_slot[slot]

    def quanta_in(self, task: PfairTask, start: int, end: int) -> int:
        """Number of quanta allocated to ``task`` in ``[start, end)``."""
        return sum(1 for a in self.of_task(task) if start <= a.slot < end)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_slot.values())


def render_windows(task: PfairTask, first: int = 1, last: Optional[int] = None,
                   *, scheduled: Optional[Dict[int, int]] = None,
                   width: Optional[int] = None) -> str:
    """ASCII picture of subtask windows, one subtask per line (cf. Fig. 1).

    Each line shows subtask ``T_i`` as dashes over its window
    ``[r(T_i), d(T_i))``; a ``#`` marks the slot where it was scheduled
    (``scheduled`` maps subtask index to slot).  Example for weight 8/11::

        T1  |--      ...
        T2  | --     ...
    """
    if last is None:
        last = first + task.execution - 1
    rows = []
    subtasks = []
    for i in range(first, last + 1):
        st = task.subtask(i)
        if st is None:
            break
        subtasks.append(st)
    if not subtasks:
        return "(no subtasks)"
    end = max(st.deadline for st in subtasks)
    if width is not None:
        end = max(end, width)
    label_w = max(len(f"{task.name}[{st.index}]") for st in subtasks)
    for st in subtasks:
        line = [" "] * end
        for t in range(st.release, st.deadline):
            line[t] = "-"
        if scheduled and st.index in scheduled:
            slot = scheduled[st.index]
            if 0 <= slot < end:
                line[slot] = "#"
        label = f"{task.name}[{st.index}]".ljust(label_w)
        rows.append(f"{label} |{''.join(line)}|")
    ruler = " " * label_w + "  " + "".join(
        str(t % 10) for t in range(end)
    )
    rows.append(ruler)
    return "\n".join(rows)


def render_schedule(trace: ScheduleTrace, tasks: Iterable[PfairTask],
                    horizon: Optional[int] = None) -> str:
    """ASCII Gantt chart: one row per task, columns are slots (cf. Fig. 5).

    Cells show the processor number the task ran on in that slot, or ``.``
    when the task was not scheduled.
    """
    tasks = list(tasks)
    if horizon is None:
        horizon = trace.horizon
    label_w = max((len(t.name) for t in tasks), default=1)
    rows = []
    for task in tasks:
        cells = ["."] * horizon
        for a in trace.of_task(task):
            if a.slot < horizon:
                cells[a.slot] = str(a.processor % 10)
        rows.append(f"{task.name.ljust(label_w)} |{''.join(cells)}|")
    ruler = " " * label_w + "  " + "".join(str(t % 10) for t in range(horizon))
    rows.append(ruler)
    return "\n".join(rows)
