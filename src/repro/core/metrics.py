"""Per-task and aggregate scheduling metrics.

The paper's practicality argument is about *how often* PD² preempts and
migrates relative to EDF-FF, so the simulator counts, per task:

* quanta of processor time received;
* **preemptions** — resumptions after a gap: the task was scheduled in slot
  ``t`` and next in some slot ``> t+1`` within the same job (back-to-back
  quanta continue on the same processor and cost nothing, which is exactly
  the observation behind the paper's ``1 + min(E-1, P-E)`` context-switch
  bound);
* **migrations** — consecutive scheduled quanta on different processors;
* **deadline misses** and tardiness (always 0 for PD²/PF/PD on feasible
  sets — asserting that empirically is half the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .task import PfairTask

if TYPE_CHECKING:
    from .trace import ScheduleTrace

__all__ = ["TaskStats", "SimStats", "DeadlineMiss", "job_response_times"]


def job_response_times(trace: "ScheduleTrace",
                       task: PfairTask) -> List[Tuple[int, int]]:
    """Per-job response times from a schedule trace.

    Returns ``(job_index, response)`` pairs where the response is the
    completion slot of the job's last subtask plus one, minus the job's
    release slot.  Only jobs whose final subtask appears in the trace are
    reported.  Work-conservation comparisons (plain PD² vs ER-PD²) read
    directly off these numbers.
    """
    out: List[Tuple[int, int]] = []
    e = task.execution
    for a in trace.of_task(task):
        if a.subtask_index % e == 0:  # last subtask of its job
            job = a.subtask_index // e
            first = task.subtask((job - 1) * e + 1)
            if first is None:
                continue
            out.append((job, a.slot + 1 - first.release))
    return out


@dataclass
class DeadlineMiss:
    """A subtask scheduled (or left unscheduled) past its pseudo-deadline."""

    task: PfairTask
    subtask_index: int
    deadline: int
    completed_at: Optional[int]  # slot+1 of late completion; None = never ran

    @property
    def tardiness(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.deadline


@dataclass
class TaskStats:
    """Counters for one task over one simulation run."""

    quanta: int = 0
    preemptions: int = 0
    migrations: int = 0
    job_preemptions: Dict[int, int] = field(default_factory=dict)
    last_slot: Optional[int] = None
    last_proc: Optional[int] = None
    last_job: Optional[int] = None

    def on_scheduled(self, slot: int, proc: int, job: int) -> Tuple[bool, bool]:
        """Update counters for an allocation; returns (preempted, migrated)."""
        preempted = migrated = False
        if self.last_slot is not None:
            contiguous = slot == self.last_slot + 1
            if not contiguous and job == self.last_job:
                # Resumed after a gap within the same job: a preemption.
                preempted = True
                self.preemptions += 1
                self.job_preemptions[job] = self.job_preemptions.get(job, 0) + 1
            if self.last_proc is not None and proc != self.last_proc:
                migrated = True
                self.migrations += 1
        self.quanta += 1
        self.last_slot = slot
        self.last_proc = proc
        self.last_job = job
        return preempted, migrated


@dataclass
class SimStats:
    """Aggregate counters for a whole run."""

    per_task: Dict[int, TaskStats] = field(default_factory=dict)
    misses: List[DeadlineMiss] = field(default_factory=list)
    idle_quanta: int = 0
    busy_quanta: int = 0
    slots: int = 0

    def stats_for(self, task: PfairTask) -> TaskStats:
        st = self.per_task.get(task.task_id)
        if st is None:
            st = self.per_task[task.task_id] = TaskStats()
        return st

    @property
    def total_preemptions(self) -> int:
        return sum(s.preemptions for s in self.per_task.values())

    @property
    def total_migrations(self) -> int:
        return sum(s.migrations for s in self.per_task.values())

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    def utilization(self, processors: int) -> float:
        """Fraction of processor capacity actually used over the run."""
        if self.slots == 0:
            # Reporting-only conversion; no scheduling decision reads it.
            return 0.0  # staticcheck: allow[R001]
        return self.busy_quanta / (self.slots * processors)  # staticcheck: allow[R001]
