"""PF — the original optimal Pfair algorithm (Baruah, Cohen, Plaxton, Varvel).

PF introduced Pfair scheduling and proved the first optimality result
(Algorithmica 1996).  Deadline ties are broken by comparing the infinite
lexicographic strings of b-bits of successor subtasks — a comparison-based
rule that is correct but more expensive than PD²'s two scalar tie-breaks,
which is why the paper calls PD² "the most efficient of the three".  The
comparison is lazy and always terminates (every task has a 0 b-bit at each
job boundary); see :class:`repro.core.priority.PFPriority`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from .quantum import QuantumSimulator, SimResult
from .priority import PFPriority
from .task import PfairTask

__all__ = ["PFScheduler", "schedule_pf"]


class PFScheduler(QuantumSimulator):
    """The PF algorithm bound to the quantum simulator."""

    def __init__(self, tasks: Iterable[PfairTask], processors: int, *,
                 early_release: bool = False, trace: bool = False,
                 on_miss: str = "record",
                 arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
                 capacity_fn: Optional[Callable[[int], int]] = None) -> None:
        super().__init__(
            tasks, processors, PFPriority(),
            early_release=early_release, trace=trace, on_miss=on_miss,
            arrivals=arrivals, capacity_fn=capacity_fn,
        )


def schedule_pf(tasks: Iterable[PfairTask], processors: int, horizon: int,
                *, trace: bool = True, on_miss: str = "record") -> SimResult:
    """Run PF over ``horizon`` slots and return the :class:`SimResult`."""
    return PFScheduler(tasks, processors, trace=trace, on_miss=on_miss).run(horizon)
