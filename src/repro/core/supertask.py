"""Supertasking: non-migratory component tasks inside one Pfair server.

Moir & Ramamurthy observed that tasks which communicate with external
devices may need to run on one specific processor, which global Pfair
scheduling cannot promise.  Their *supertask* approach binds a set of
*component* tasks to a processor and lets a single stand-in task — the
supertask — compete under PD² with the cumulative weight of its
components; whenever the supertask is allocated a quantum, an internal
scheduler picks which component runs in it (paper, Sec. 5.5).

Two facts from the paper are reproduced here and in Fig. 5's benchmark:

* **Supertasking can fail.**  With the supertask competing at exactly the
  cumulative weight, a component can miss deadlines — Fig. 5's set
  (V=1/2, W=X=1/3, Y=2/9 and S={T=1/5, U=1/45} with wt(S)=2/9 on two
  processors) makes T miss at time 10 because S receives no quantum in
  [5, 10).
* **Reweighting restores the guarantee.**  Holman & Anderson showed that
  inflating the supertask's weight by ``1/p_min`` (the smallest component
  period) suffices when the internal scheduler is EDF.

Caveat (ours, found empirically — see
``tests/test_integration_combined.py``): a supertask must compete with
*plain* Pfair eligibility.  ERfair early releasing lets the stand-in run
quanta before its components' releases; those grants go idle inside the
supertask and components miss even with the reweighting inflation.  Other
tasks in the system may use per-task ER freely.

The internal scheduler here is EDF over the components' pseudo-deadlines:
at each quantum granted to the supertask, the eligible component (next
pending subtask released) with the earliest pseudo-deadline runs.  Whether
internal EDF dispatches on job or subtask deadlines does not affect the
Fig. 5 phenomenon — the failure is that S gets *no* quantum in [5, 10) —
and subtask-level EDF gives the tighter notion of component lateness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import DeadlineMiss
from .quantum import QuantumSimulator, SimResult
from .priority import PriorityPolicy
from .rational import Weight, weight_sum
from .task import PeriodicTask, PfairTask

__all__ = ["Supertask", "ComponentDispatch", "SupertaskSystem", "supertask_weight"]


def supertask_weight(components: Sequence[PfairTask], *,
                     reweight: bool = False) -> Weight:
    """Cumulative component weight, optionally inflated by Holman &
    Anderson's ``1/p_min`` (capped at 1, since a server cannot exceed a
    full processor)."""
    if not components:
        raise ValueError("a supertask needs at least one component")
    w = weight_sum(c.weight for c in components)
    if reweight:
        p_min = min(c.period for c in components)
        w = w + Weight(1, p_min)
    if w > 1:
        raise ValueError(
            f"supertask weight {w} exceeds 1; split the components across "
            f"several supertasks"
        )
    return w


class Supertask(PeriodicTask):
    """The stand-in Pfair task competing on behalf of bound components.

    ``reweight=True`` applies the Holman–Anderson inflation that makes
    internal EDF dispatch deadline-safe.
    """

    def __init__(self, components: Sequence[PfairTask], *,
                 reweight: bool = False, name: Optional[str] = None) -> None:
        w = supertask_weight(components, reweight=reweight)
        super().__init__(w.num, w.den, name=name or "S")
        self.components: List[PfairTask] = list(components)
        self.reweighted = reweight


@dataclass
class ComponentDispatch:
    """Outcome of internally dispatching one supertask's quanta."""

    supertask: Supertask
    #: slot -> component that ran in it (slots granted but unused are absent).
    allocations: Dict[int, PfairTask] = field(default_factory=dict)
    #: per-component completed subtask count.
    completed: Dict[int, int] = field(default_factory=dict)
    misses: List[DeadlineMiss] = field(default_factory=list)
    idle_quanta: int = 0

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    def slots_of(self, component: PfairTask) -> List[int]:
        return sorted(s for s, c in self.allocations.items()
                      if c.task_id == component.task_id)


def dispatch_components(supertask: Supertask, granted_slots: Sequence[int],
                        horizon: int, *, policy: str = "edf") -> ComponentDispatch:
    """Run the internal scheduler over the quanta granted to ``supertask``.

    ``granted_slots`` are the slots the top-level scheduler allocated to
    the supertask, in increasing order.  Each is given to the eligible
    component (next pending subtask with release <= slot) chosen by the
    internal ``policy``: ``"edf"`` (earliest pseudo-deadline — the scheme
    Holman & Anderson's reweighting bound covers) or ``"rm"`` (smallest
    period, statically).  Misses are recorded when a component subtask
    completes at or past its deadline, or never runs although its deadline
    falls within the horizon.
    """
    if policy not in ("edf", "rm"):
        raise ValueError(f"unknown internal policy {policy!r}")
    out = ComponentDispatch(supertask=supertask)
    next_idx: Dict[int, int] = {c.task_id: 1 for c in supertask.components}
    for slot in granted_slots:
        best: Optional[PfairTask] = None
        best_key: Optional[Tuple[int, int]] = None
        for comp in supertask.components:
            st = comp.subtask(next_idx[comp.task_id])
            if st is None or st.release > slot:
                continue
            if policy == "edf":
                key = (st.deadline, comp.task_id)
            else:
                key = (comp.period, comp.task_id)
            if best_key is None or key < best_key:
                best, best_key = comp, key
        if best is None:
            out.idle_quanta += 1
            continue
        idx = next_idx[best.task_id]
        st = best.subtask(idx)
        if slot >= st.deadline:
            out.misses.append(DeadlineMiss(best, idx, st.deadline, slot + 1))
        out.allocations[slot] = best
        out.completed[best.task_id] = idx
        next_idx[best.task_id] = idx + 1
    # Components whose pending subtask's deadline expired without running.
    for comp in supertask.components:
        idx = next_idx[comp.task_id]
        while True:
            st = comp.subtask(idx)
            if st is None or st.deadline > horizon:
                break
            out.misses.append(DeadlineMiss(comp, idx, st.deadline, None))
            idx += 1
    return out


class SupertaskSystem:
    """Top-level PD² over normal tasks and supertasks, plus internal dispatch.

    Components of each supertask implicitly execute on whatever processor
    their supertask was given in that slot — since a supertask, being one
    Pfair task, is never on two processors in a slot, binding it to a fixed
    processor changes nothing observable at this level of the model.
    """

    def __init__(self, tasks: Iterable[PfairTask], processors: int, *,
                 policy: Optional[PriorityPolicy] = None,
                 internal_policy: str = "edf",
                 early_release: bool = False, on_miss: str = "record") -> None:
        self.tasks = list(tasks)
        self.processors = processors
        self.internal_policy = internal_policy
        self.supertasks = [t for t in self.tasks if isinstance(t, Supertask)]
        self.sim = QuantumSimulator(
            self.tasks, processors, policy,
            early_release=early_release, trace=True, on_miss=on_miss,
        )

    def run(self, horizon: int) -> Tuple[SimResult, Dict[int, ComponentDispatch]]:
        """Simulate and dispatch; returns (top-level result, per-supertask
        dispatch keyed by supertask task id)."""
        result = self.sim.run(horizon)
        assert result.trace is not None
        dispatches: Dict[int, ComponentDispatch] = {}
        for sup in self.supertasks:
            granted = result.trace.slots_of(sup)
            dispatches[sup.task_id] = dispatch_components(
                sup, granted, horizon, policy=self.internal_policy)
        return result, dispatches
