"""Weighted round-robin — the scheduler PD² is a "deadline-based variant" of.

The paper (Sec. 4, "Challenges"): "Though Pfair scheduling algorithms
appear to be different from traditional real-time scheduling algorithms,
they are similar to the round-robin algorithm used in general-purpose
operating systems.  In fact, PD² can be thought of as a deadline-based
variant of the weighted round-robin algorithm."

This module makes that remark testable: a classic quantum-level WRR that
grants each task ``round(w·R)`` quanta per round of ``R`` slots, serving
tasks cyclically, up to ``M`` distinct tasks per slot.  WRR delivers
long-run proportional shares but has no notion of deadlines, so on
periodic hard-real-time sets it misses job deadlines that PD² (same
quanta, deadline-ordered) meets — the ablation
``benchmarks/bench_ext_wrr_baseline.py`` quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .task import PeriodicTask

__all__ = ["WRRResult", "WeightedRoundRobin", "simulate_wrr"]


@dataclass
class WRRResult:
    """Outcome of a WRR run over synchronous periodic tasks."""

    horizon: int
    processors: int
    round_length: int
    #: (task name, job index, deadline slot, quanta short at the deadline)
    misses: List[Tuple[str, int, int, int]] = field(default_factory=list)
    quanta: Dict[str, int] = field(default_factory=dict)

    @property
    def miss_count(self) -> int:
        return len(self.misses)


class WeightedRoundRobin:
    """Quantum-level weighted round-robin over synchronous periodic tasks.

    Each round of ``round_length`` slots grants task ``T`` a budget of
    ``max(1, round(wt(T) · R))`` quanta.  In every slot, up to ``M``
    distinct tasks with remaining budget *and* pending work execute, in
    cyclic order starting after the last task served.  Budgets refresh at
    round boundaries; unused budget does not carry over (classic WRR).

    Job deadlines are checked at period boundaries: job ``k`` of ``T``
    must have received ``e`` quanta by slot ``(k+1)·p``.
    """

    def __init__(self, tasks: Iterable[PeriodicTask], processors: int,
                 round_length: Optional[int] = None) -> None:
        self.tasks = list(tasks)
        if processors < 1:
            raise ValueError("need at least one processor")
        for t in self.tasks:
            if getattr(t, "phase", 0):
                raise ValueError("WRR baseline supports synchronous tasks only")
        self.processors = processors
        if round_length is None:
            round_length = max((t.period for t in self.tasks), default=1)
        if round_length < 1:
            raise ValueError("round length must be positive")
        self.round_length = round_length

    def _budget(self, task: PeriodicTask) -> int:
        r = self.round_length
        return max(1, (task.execution * r + task.period // 2) // task.period)

    def run(self, horizon: int) -> WRRResult:
        res = WRRResult(horizon=horizon, processors=self.processors,
                        round_length=self.round_length)
        n = len(self.tasks)
        done: Dict[int, int] = {t.task_id: 0 for t in self.tasks}
        budgets: Dict[int, int] = {}
        pointer = 0
        for now in range(horizon):
            if now % self.round_length == 0:
                budgets = {t.task_id: self._budget(t) for t in self.tasks}
            # Deadline checks at period boundaries (before this slot runs).
            for t in self.tasks:
                if now and now % t.period == 0:
                    job = now // t.period  # job `job` had deadline `now`
                    need = job * t.execution
                    if done[t.task_id] < need:
                        res.misses.append(
                            (t.name, job, now, need - done[t.task_id]))
            # Serve up to M distinct tasks, cyclically.
            served = 0
            scanned = 0
            while served < self.processors and scanned < n:
                t = self.tasks[pointer % n]
                pointer += 1
                scanned += 1
                tid = t.task_id
                demand = ((now // t.period) + 1) * t.execution
                if budgets.get(tid, 0) > 0 and done[tid] < demand:
                    budgets[tid] -= 1
                    done[tid] += 1
                    served += 1
        for t in self.tasks:
            res.quanta[t.name] = done[t.task_id]
        return res


def simulate_wrr(tasks: Iterable[PeriodicTask], processors: int,
                 horizon: int, *, round_length: Optional[int] = None
                 ) -> WRRResult:
    """One-call convenience wrapper."""
    return WeightedRoundRobin(tasks, processors, round_length).run(horizon)
