"""PD² — the most efficient known optimal Pfair scheduling algorithm.

PD² (Anderson & Srinivasan, 2000–2002) schedules subtasks earliest-pseudo-
deadline-first and breaks ties with exactly two parameters — the b-bit and
the group deadline (see :mod:`repro.core.priority`).  It is optimal for
periodic, sporadic, intra-sporadic and rate-based task systems on any
number of processors: every task set with total weight at most ``M`` is
scheduled with no pseudo-deadline miss, hence with all lags in (−1, 1).

This module is the user-facing entry point for the paper's algorithm:
:class:`PD2Scheduler` binds the PD² priority policy to the slot-synchronous
multiprocessor engine (:class:`~repro.core.quantum.QuantumSimulator`) and
exposes the knobs the paper discusses — ERfair early releasing (making the
scheduler work-conserving) and tracing for schedule inspection.

Example
-------
>>> from repro.core.pd2 import PD2Scheduler
>>> from repro.core.task import PeriodicTask
>>> tasks = [PeriodicTask(2, 3) for _ in range(3)]   # infeasible to partition
>>> result = PD2Scheduler(tasks, processors=2).run(30)
>>> result.stats.miss_count
0
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from .quantum import QuantumSimulator, SimResult
from .priority import PD2Priority
from .task import PfairTask

__all__ = ["PD2Scheduler", "schedule_pd2"]


class PD2Scheduler(QuantumSimulator):
    """The PD² algorithm bound to the quantum simulator.

    Parameters mirror :class:`~repro.core.quantum.QuantumSimulator` except
    that the priority policy is fixed to PD².  ``early_release=True``
    selects the ER-PD² variant (work-conserving; still optimal).
    """

    def __init__(self, tasks: Iterable[PfairTask], processors: int, *,
                 early_release: bool = False, trace: bool = False,
                 on_miss: str = "record",
                 arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
                 capacity_fn: Optional[Callable[[int], int]] = None) -> None:
        super().__init__(
            tasks,
            processors,
            PD2Priority(),
            early_release=early_release,
            trace=trace,
            on_miss=on_miss,
            arrivals=arrivals,
            capacity_fn=capacity_fn,
        )


def schedule_pd2(tasks: Iterable[PfairTask], processors: int, horizon: int,
                 *, early_release: bool = False, trace: bool = True,
                 on_miss: str = "record") -> SimResult:
    """Run PD² over ``horizon`` slots and return the :class:`SimResult`."""
    return PD2Scheduler(
        tasks, processors, early_release=early_release, trace=trace,
        on_miss=on_miss,
    ).run(horizon)
