"""Slot-synchronous M-processor simulator for Pfair scheduling algorithms.

This is the substrate every Pfair experiment in the paper runs on: time
advances in unit quanta (slots); in each slot the scheduler picks at most
one subtask per processor from a single system-wide ready queue; a task may
run on different processors in different slots (migration) but never on two
processors in the same slot (no intra-task parallelism) — exactly the model
of Sec. 2 of the paper.

Design notes (see DESIGN.md §6):

* The ready queue is a binary heap of priority keys — the same data
  structure the authors used for the Fig. 2 overhead measurements.
* Subtask releases are *event driven*: each task has at most one live
  subtask in the system (its earliest unscheduled one — subtasks of a task
  execute in index order, so no other could run anyway), and scheduling a
  subtask activates its successor.  Per-slot cost is O(M log N) plus
  arrivals, independent of the number of tasks with no work pending.
* Processor assignment preserves affinity: a task scheduled in consecutive
  slots keeps its processor (the observation behind the paper's
  ``1 + min(E-1, P-E)`` preemption bound), and otherwise prefers the
  processor it last ran on, so the migration counts reported by
  :class:`~repro.core.metrics.SimStats` reflect the paper's accounting.

Dynamic behaviour — sporadic/IS arrivals, tasks joining and leaving — is
fed in through ``arrivals``: a list of ``(time, callback)`` pairs applied
at the start of the given slot (callbacks typically call
``SporadicTask.release_job`` or ``IntraSporadicTask.arrive``, or register a
join/leave via :mod:`repro.core.dynamic`).  Processor failures are modelled
with ``capacity_fn`` mapping a slot to the number of live processors.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .priority import PD2Priority, PriorityPolicy
from .task import PfairTask, Subtask
from .metrics import DeadlineMiss, SimStats
from .trace import ScheduleTrace

__all__ = ["QuantumSimulator", "SimResult", "DeadlineMissError"]


class DeadlineMissError(Exception):
    """Raised when ``on_miss='raise'`` and a pseudo-deadline is violated."""

    def __init__(self, miss: DeadlineMiss) -> None:
        self.miss = miss
        super().__init__(
            f"{miss.task.name}[{miss.subtask_index}] missed pseudo-deadline "
            f"{miss.deadline} (completed at {miss.completed_at})"
        )


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    stats: SimStats
    trace: Optional[ScheduleTrace]
    horizon: int
    processors: int
    policy_name: str
    tasks: Sequence[PfairTask]

    @property
    def missed(self) -> bool:
        return bool(self.stats.misses)


class _Stalled:
    """A task whose next subtask's arrival is not yet known."""

    __slots__ = ("task", "index", "lower_bound")

    def __init__(self, task: PfairTask, index: int, lower_bound: int) -> None:
        self.task = task
        self.index = index
        self.lower_bound = lower_bound


class QuantumSimulator:
    """Drives a Pfair priority policy over unit quanta on M processors."""

    def __init__(
        self,
        tasks: Iterable[PfairTask],
        processors: int,
        policy: Optional[PriorityPolicy] = None,
        *,
        early_release: bool = False,
        trace: bool = False,
        on_miss: str = "record",
        arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
        capacity_fn: Optional[Callable[[int], int]] = None,
        preserve_affinity: bool = True,
    ) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        if on_miss not in ("record", "raise"):
            raise ValueError(f"on_miss must be 'record' or 'raise', got {on_miss!r}")
        self.tasks: List[PfairTask] = list(tasks)
        self.processors = processors
        self.policy = policy if policy is not None else PD2Priority()
        self.early_release = early_release
        self.on_miss = on_miss
        self.capacity_fn = capacity_fn
        #: When False, processors are assigned lowest-free-first with no
        #: regard to where a task last ran — the ablation baseline that
        #: quantifies how much the affinity heuristic saves in migrations.
        self.preserve_affinity = preserve_affinity
        self.trace: Optional[ScheduleTrace] = ScheduleTrace() if trace else None
        self.stats = SimStats()
        self._arrivals: List[Tuple[int, int, Callable[[], None]]] = []
        if arrivals is not None:
            for seq, (time, cb) in enumerate(arrivals):
                self._arrivals.append((time, seq, cb))
            heapq.heapify(self._arrivals)
        # (eligible, seq, subtask): known subtasks waiting to become eligible.
        self._pending: List[Tuple[int, int, Subtask]] = []
        # (key, seq, subtask): eligible subtasks, heap-ordered by policy key.
        self._ready: List[Tuple[object, int, Subtask]] = []
        self._stalled: Dict[int, _Stalled] = {}
        self._seq = 0
        #: Index of the most recently scheduled subtask per task id (0 if
        #: never scheduled) — needed by the dynamic leave rules, which are
        #: stated in terms of the last-scheduled subtask.
        self.last_scheduled_index: Dict[int, int] = {}
        for task in self.tasks:
            self._activate(task, 1, lower_bound=0)

    def add_task(self, task: PfairTask, now: int = 0) -> None:
        """Admit ``task`` into a (possibly running) simulation.

        The caller is responsible for admission control (Eq. (2)); see
        :mod:`repro.core.dynamic`.  The task's first subtask must not be
        eligible before ``now``.
        """
        self.tasks.append(task)
        self._activate(task, 1, lower_bound=now)

    # -- internals -----------------------------------------------------------

    def _activate(self, task: PfairTask, index: int, lower_bound: int) -> None:
        """Bring subtask ``index`` of ``task`` into the system, eligible no
        earlier than ``lower_bound``."""
        st = task.subtask(index)
        if st is None:
            # Arrival unknown (sporadic/IS) or the task has left the system.
            if task.last_subtask is None or index <= task.last_subtask:
                self._stalled[task.task_id] = _Stalled(task, index, lower_bound)
            return
        eligible = max(st.eligible, lower_bound)
        self._seq += 1
        self._pending_push(eligible, st)

    def _pending_push(self, eligible: int, st: Subtask) -> None:
        heapq.heappush(self._pending, (eligible, self._seq, st))

    def _drain_arrivals(self, now: int) -> None:
        while self._arrivals and self._arrivals[0][0] <= now:
            _, _, cb = heapq.heappop(self._arrivals)
            cb()
        if self._stalled:
            # Retry stalled tasks whose arrivals may now be known.  Only
            # entries whose subtask became known leave the dict, so this is
            # cheap when nothing changed.
            for tid in list(self._stalled):
                entry = self._stalled[tid]
                st = entry.task.subtask(entry.index)
                if st is not None:
                    del self._stalled[tid]
                    eligible = max(st.eligible, entry.lower_bound)
                    self._seq += 1
                    self._pending_push(eligible, st)
                elif (entry.task.last_subtask is not None
                      and entry.index > entry.task.last_subtask):
                    del self._stalled[tid]  # task left; drop the stall

    def _release_eligible(self, now: int) -> None:
        while self._pending and self._pending[0][0] <= now:
            _, _, st = heapq.heappop(self._pending)
            self._seq += 1
            heapq.heappush(self._ready, (self.policy.key(st), self._seq, st))

    def _record_miss(self, st: Subtask, completed_at: Optional[int]) -> None:
        miss = DeadlineMiss(st.task, st.index, st.deadline, completed_at)
        self.stats.misses.append(miss)
        if self.on_miss == "raise":
            raise DeadlineMissError(miss)

    def _assign_processors(self, now: int, scheduled: List[Subtask],
                           capacity: int) -> List[Tuple[int, Subtask]]:
        """Map this slot's subtasks to processors, preserving affinity."""
        if not self.preserve_affinity:
            return list(zip(range(capacity), scheduled))
        taken = [False] * capacity
        per_task = self.stats.per_task  # read-only: entries are created by
        assignment: List[Tuple[Optional[int], Subtask]] = []  # on_scheduled
        # Pass 1: continuations keep their processor (no preemption at all).
        for st in scheduled:
            ts = per_task.get(st.task.task_id)
            proc: Optional[int] = None
            if (ts is not None and ts.last_slot == now - 1
                    and ts.last_proc is not None
                    and ts.last_proc < capacity and not taken[ts.last_proc]):
                proc = ts.last_proc
                taken[proc] = True
            assignment.append((proc, st))
        # Pass 2: everyone else prefers their last processor, else lowest free.
        free = [p for p in range(capacity) if not taken[p]]
        free.reverse()  # pop() yields the lowest-numbered processor
        out: List[Tuple[int, Subtask]] = []
        for proc, st in assignment:
            if proc is None:
                ts = per_task.get(st.task.task_id)
                if (ts is not None and ts.last_proc is not None
                        and ts.last_proc < capacity
                        and not taken[ts.last_proc]):
                    proc = ts.last_proc
                    taken[proc] = True
                    free.remove(proc)
                else:
                    proc = free.pop()
                    taken[proc] = True
            out.append((proc, st))
        return out

    # -- main loop -----------------------------------------------------------

    def run(self, horizon: int) -> SimResult:
        """Simulate slots ``0 .. horizon-1`` and return the result.

        Subtasks still unscheduled at the horizon whose deadlines fall
        within it are counted as deadline misses with no completion time.
        """
        if horizon < 0:
            raise ValueError("horizon must be nonnegative")
        for now in range(horizon):
            self.step(now)
        return self.finalize(horizon)

    def finalize(self, horizon: int) -> SimResult:
        """Close out a run that was driven with :meth:`step` up to
        ``horizon`` slots: sweep unfinished subtasks for deadline misses
        and package the :class:`SimResult`."""
        self.stats.slots = horizon
        # Unfinished subtasks with expired deadlines are misses too (unless
        # the task left the system before generating them).  Canonical
        # order: priority-key order (with a task-id/index tail for
        # policies whose key is not total) — every simulator tier emits
        # end-of-run misses in exactly this order, and the differential
        # suite asserts it.
        leftovers = [st for _, _, st in list(self._pending) + list(self._ready)
                     if not (st.task.last_subtask is not None
                             and st.index > st.task.last_subtask)]
        leftovers.sort(
            key=lambda st: (self.policy.key(st), st.task.task_id, st.index))
        for st in leftovers:
            if st.deadline <= horizon:
                self._record_miss(st, None)
        return SimResult(
            stats=self.stats,
            trace=self.trace,
            horizon=horizon,
            processors=self.processors,
            policy_name=self.policy.name,
            tasks=self.tasks,
        )

    def step(self, now: int) -> List[Tuple[int, Subtask]]:
        """Advance one slot; returns the (processor, subtask) allocations."""
        self._drain_arrivals(now)
        self._release_eligible(now)
        capacity = self.processors
        if self.capacity_fn is not None:
            capacity = min(self.capacity_fn(now), self.processors)
        scheduled: List[Subtask] = []
        while self._ready and len(scheduled) < capacity:
            _, _, st = heapq.heappop(self._ready)
            if (st.task.last_subtask is not None
                    and st.index > st.task.last_subtask):
                continue  # task left the system; drop lazily
            scheduled.append(st)
        placed = self._assign_processors(now, scheduled, max(capacity, 1))
        for proc, st in placed:
            if now >= st.deadline:
                self._record_miss(st, now + 1)
            ts = self.stats.stats_for(st.task)
            ts.on_scheduled(now, proc, st.job_index)
            self.last_scheduled_index[st.task.task_id] = st.index
            if self.trace is not None:
                self.trace.record(now, proc, st.task, st.index)
            # Activate the successor.  ERfair early releasing applies when
            # enabled scheduler-wide or on this task (mixed Pfair/ERfair
            # systems set it per task).
            if ((self.early_release or st.task.early_release)
                    and not st.is_last_of_job()):
                # ERfair: eligible the moment its predecessor completes.
                self._activate_early(st.task, st.index + 1, now + 1)
            else:
                self._activate(st.task, st.index + 1, lower_bound=now + 1)
        self.stats.busy_quanta += len(placed)
        self.stats.idle_quanta += max(capacity, 0) - len(placed)
        return placed

    def _activate_early(self, task: PfairTask, index: int, eligible: int) -> None:
        st = task.subtask(index)
        if st is None:
            if task.last_subtask is None or index <= task.last_subtask:
                self._stalled[task.task_id] = _Stalled(task, index, eligible)
            return
        self._seq += 1
        self._pending_push(eligible, st)
