"""EPDF — earliest-pseudo-deadline-first with *no* tie-breaks.

The ablation baseline: the paper notes that "selecting appropriate
tie-breaks turns out to be the most important concern in designing correct
Pfair algorithms."  EPDF drops PD²'s b-bit and group-deadline tie-breaks
and resolves deadline ties arbitrarily (here: by task id).  It is optimal
on at most two processors but *not* in general — the tie-break ablation
benchmark (``benchmarks/bench_ablation_tiebreaks.py``) exhibits feasible
task sets on which EPDF misses pseudo-deadlines while PD² does not.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from .quantum import QuantumSimulator, SimResult
from .priority import EPDFPriority
from .task import PfairTask

__all__ = ["EPDFScheduler", "schedule_epdf"]


class EPDFScheduler(QuantumSimulator):
    """EPDF bound to the quantum simulator (misses are *expected* for some
    feasible sets on ≥3 processors; default ``on_miss='record'``)."""

    def __init__(self, tasks: Iterable[PfairTask], processors: int, *,
                 early_release: bool = False, trace: bool = False,
                 on_miss: str = "record",
                 arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
                 capacity_fn: Optional[Callable[[int], int]] = None) -> None:
        super().__init__(
            tasks, processors, EPDFPriority(),
            early_release=early_release, trace=trace, on_miss=on_miss,
            arrivals=arrivals, capacity_fn=capacity_fn,
        )


def schedule_epdf(tasks: Iterable[PfairTask], processors: int, horizon: int,
                  *, trace: bool = True) -> SimResult:
    """Run EPDF over ``horizon`` slots and return the :class:`SimResult`."""
    return EPDFScheduler(tasks, processors, trace=trace).run(horizon)
