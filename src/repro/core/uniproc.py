"""Event-driven preemptive uniprocessor simulator: EDF, RM, DM, and CBS.

This is the per-processor substrate of the EDF-FF partitioning approach the
paper compares against (Sec. 3), and the vehicle for two of its qualitative
arguments:

* **Scheduling overhead** (Fig. 2(a)): each scheduler invocation — moving a
  newly arrived or preempted job into the binary-heap ready queue and
  choosing the next job — can be timed (``time_invocations=True``), giving
  the per-invocation cost series the paper plots.
* **Temporal isolation** (Sec. 5.3): jobs may *overrun* their declared
  worst-case execution time (``actual_exec``), which under plain EDF makes
  innocent tasks miss deadlines; wrapping the misbehaving workload in a
  :class:`CBSServer` (Abeni & Buttazzo's constant-bandwidth server) pushes
  the overrun into the server's future budget instead — the mechanism the
  paper notes EDF needs *in addition* to match Pfair's built-in isolation.

Time is integer ticks (think microseconds); the simulator is event-driven —
releases, completions, and CBS budget exhaustions are the only points where
anything changes, so cost is O(events · log N), independent of tick
resolution.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import EventQueue

__all__ = [
    "UniTask",
    "UniJob",
    "CBSServer",
    "UniprocResult",
    "UniprocSimulator",
    "simulate_uniproc",
]


class UniTask:
    """A periodic or sporadic uniprocessor task (job-level, not quantum).

    ``wcet`` and ``period`` are integers in ticks; the relative deadline
    defaults to the period (implicit deadlines, as the paper assumes).
    Explicit ``releases`` turn the task sporadic: jobs are released exactly
    at those times (which must be separated by at least ``period``).
    ``actual_exec(job_index)`` may return a per-job execution time
    different from the WCET to model overruns or early completions.
    """

    _ids = iter(range(1, 10**9))

    def __init__(self, wcet: int, period: int, *, deadline: Optional[int] = None,
                 phase: int = 0, name: Optional[str] = None,
                 releases: Optional[Sequence[int]] = None,
                 actual_exec: Optional[Callable[[int], int]] = None) -> None:
        if wcet <= 0 or period <= 0:
            raise ValueError("wcet and period must be positive")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        self.wcet = wcet
        self.period = period
        self.deadline = period if deadline is None else deadline
        self.phase = phase
        self.task_id = next(self._ids)
        self.name = name or f"J{self.task_id}"
        self.releases = list(releases) if releases is not None else None
        if self.releases is not None:
            for a, b in zip(self.releases, self.releases[1:]):
                if b - a < period:
                    raise ValueError(
                        f"{self.name}: sporadic releases closer than the period"
                    )
        self.actual_exec = actual_exec

    @property
    def utilization(self) -> float:
        # Reporting-only ratio; admission tests compare exact products.
        return self.wcet / self.period  # staticcheck: allow[R001]

    def release_time(self, job_index: int) -> Optional[int]:
        """Absolute release of 1-based ``job_index``; ``None`` past the end
        of an explicit release list."""
        if self.releases is not None:
            if job_index > len(self.releases):
                return None
            return self.releases[job_index - 1]
        return self.phase + (job_index - 1) * self.period

    def exec_time(self, job_index: int) -> int:
        if self.actual_exec is not None:
            e = self.actual_exec(job_index)
            if e <= 0:
                raise ValueError(f"{self.name}: job {job_index} exec time {e} <= 0")
            return e
        return self.wcet

    def __repr__(self) -> str:
        return f"UniTask({self.name}, e={self.wcet}, p={self.period})"


class UniJob:
    """One released job.

    ``deadline`` overrides the task-relative deadline with an explicit
    absolute one — how Total-Bandwidth-Server jobs carry their assigned
    deadlines (see :mod:`repro.sim.servers`).
    """

    __slots__ = ("task", "index", "release", "abs_deadline", "remaining", "exec_total")

    def __init__(self, task: UniTask, index: int, release: int, exec_total: int,
                 *, deadline: Optional[int] = None) -> None:
        self.task = task
        self.index = index
        self.release = release
        self.abs_deadline = release + task.deadline if deadline is None else deadline
        self.remaining = exec_total
        self.exec_total = exec_total

    def __repr__(self) -> str:
        return f"UniJob({self.task.name}#{self.index} rem={self.remaining})"


class CBSServer:
    """Constant-bandwidth server (Abeni & Buttazzo 1998), EDF-schedulable.

    Serves a FIFO stream of *requests* ``(arrival, exec_time)`` with budget
    ``Q`` per server period ``T``: whenever the budget is exhausted it is
    recharged to ``Q`` and the server deadline is postponed by ``T``, so a
    misbehaving workload consumes only its reserved bandwidth ``Q/T`` and
    overruns are pushed into the server's own future — other tasks' EDF
    guarantees are untouched.
    """

    _ids = iter(range(10**9, 2 * 10**9))

    def __init__(self, budget: int, period: int, *, name: Optional[str] = None,
                 requests: Sequence[Tuple[int, int]] = ()) -> None:
        if budget <= 0 or period <= 0 or budget > period:
            raise ValueError("need 0 < budget <= period")
        self.budget_max = budget
        self.period = period
        self.task_id = next(self._ids)
        self.name = name or f"CBS{self.task_id}"
        self.requests = sorted(requests)
        self.c = budget          # remaining budget
        self.d = 0               # current absolute server deadline
        self.queue: List[List[int]] = []  # [remaining] per admitted request
        self.served = 0
        self.recharges = 0

    @property
    def utilization(self) -> float:
        # Reporting-only ratio; CBS replenishment stays on integers.
        return self.budget_max / self.period  # staticcheck: allow[R001]

    def on_arrival(self, now: int, exec_time: int) -> None:
        """CBS admission rule: if the current (c, d) pair cannot cover the
        new work at the reserved bandwidth, replenish and postpone."""
        if not self.queue:
            # c >= (d - now) * Q/T  <=>  c*T >= (d - now)*Q  (exact integers)
            if self.c * self.period >= (self.d - now) * self.budget_max:
                self.d = now + self.period
                self.c = self.budget_max
        self.queue.append([exec_time])

    def time_to_decision(self) -> int:
        """Ticks until completion of the head request or budget exhaustion."""
        return min(self.queue[0][0], self.c)

    def execute(self, dt: int) -> None:
        self.queue[0][0] -= dt
        self.c -= dt

    def decide(self) -> bool:
        """Handle a decision point; returns True if the server needs to be
        re-queued with a new deadline (budget recharge)."""
        if self.queue and self.queue[0][0] == 0:
            self.queue.pop(0)
            self.served += 1
        if self.c == 0:
            self.c = self.budget_max
            self.d += self.period
            self.recharges += 1
            return True
        return False

    @property
    def active(self) -> bool:
        return bool(self.queue)


@dataclass
class UniprocResult:
    """Outcome of one uniprocessor run."""

    horizon: int
    policy: str
    completed: int = 0
    preemptions: int = 0
    dispatches: int = 0
    invocations: int = 0
    sched_ns_total: int = 0
    #: (task name, job index, abs deadline, completion or None)
    misses: List[Tuple[str, int, int, Optional[int]]] = field(default_factory=list)
    response_max: Dict[str, int] = field(default_factory=dict)
    response_sum: Dict[str, int] = field(default_factory=dict)
    response_count: Dict[str, int] = field(default_factory=dict)

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    @property
    def mean_invocation_ns(self) -> float:
        # Reporting-only means; nothing downstream schedules off them.
        return self.sched_ns_total / self.invocations if self.invocations else 0.0  # staticcheck: allow[R001]

    def mean_response(self, name: str) -> float:
        n = self.response_count.get(name, 0)
        return self.response_sum.get(name, 0) / n if n else 0.0  # staticcheck: allow[R001]


_EDF, _RM, _DM = "edf", "rm", "dm"


class UniprocSimulator:
    """Preemptive uniprocessor scheduling of :class:`UniTask` jobs and
    :class:`CBSServer` instances under EDF, RM, or DM."""

    def __init__(self, tasks: Iterable[UniTask], *, policy: str = _EDF,
                 servers: Iterable[CBSServer] = (),
                 jobs: Iterable[UniJob] = (),
                 time_invocations: bool = False) -> None:
        policy = policy.lower()
        if policy not in (_EDF, _RM, _DM):
            raise ValueError(f"unknown policy {policy!r}")
        self.tasks = list(tasks)
        self.servers = list(servers)
        #: Explicit pre-built jobs (e.g. TBS-served aperiodic requests with
        #: assigned deadlines) released at their own times.
        self.jobs = list(jobs)
        if self.servers and policy != _EDF:
            raise ValueError("CBS servers require the EDF policy")
        if self.jobs and policy != _EDF:
            raise ValueError("explicit deadline-carrying jobs require EDF")
        self.policy = policy
        self.time_invocations = time_invocations

    # -- priority keys ------------------------------------------------------

    def _job_key(self, job: UniJob) -> Tuple[int, int, int]:
        if self.policy == _EDF:
            return (job.abs_deadline, job.task.task_id, job.index)
        if self.policy == _RM:
            return (job.task.period, job.task.task_id, job.index)
        return (job.task.deadline, job.task.task_id, job.index)

    def _server_key(self, server: CBSServer) -> Tuple[int, int, int]:
        return (server.d, server.task_id, server.recharges)

    # -- main loop ------------------------------------------------------------

    def run(self, horizon: int) -> UniprocResult:
        res = UniprocResult(horizon=horizon, policy=self.policy)
        events: EventQueue = EventQueue()
        # Seed first job release per task and all server request arrivals.
        for task in self.tasks:
            r = task.release_time(1)
            if r is not None and r < horizon:
                events.push(r, ("release", task, 1))
        for server in self.servers:
            for arrival, exec_time in server.requests:
                if arrival < horizon:
                    events.push(arrival, ("request", server, exec_time))
        for job in self.jobs:
            if job.release < horizon:
                events.push(job.release, ("job", job))

        ready: List[Tuple[Tuple[int, int, int], int, object]] = []
        seq = 0
        stale: Dict[int, Tuple[int, int, int]] = {}  # server id -> current key
        running: Optional[object] = None
        now = 0

        def push_ready(entity: object) -> None:
            nonlocal seq
            seq += 1
            if isinstance(entity, CBSServer):
                key = self._server_key(entity)
                stale[entity.task_id] = key
            else:
                key = self._job_key(entity)
            heapq.heappush(ready, (key, seq, entity))

        def pop_ready() -> Optional[object]:
            while ready:
                key, _, entity = heapq.heappop(ready)
                if isinstance(entity, CBSServer):
                    if stale.get(entity.task_id) != key or not entity.active:
                        continue
                return entity
            return None

        def peek_key() -> Optional[Tuple[int, int, int]]:
            while ready:
                key, _, entity = ready[0]
                if isinstance(entity, CBSServer) and (
                        stale.get(entity.task_id) != key or not entity.active):
                    heapq.heappop(ready)
                    continue
                return key
            return None

        def running_key() -> Tuple[int, int, int]:
            if isinstance(running, CBSServer):
                return self._server_key(running)
            return self._job_key(running)

        def time_to_decision(entity: object) -> int:
            if isinstance(entity, CBSServer):
                return entity.time_to_decision()
            return entity.remaining

        def complete_job(job: UniJob, at: int) -> None:
            res.completed += 1
            resp = at - job.release
            name = job.task.name
            res.response_max[name] = max(res.response_max.get(name, 0), resp)
            res.response_sum[name] = res.response_sum.get(name, 0) + resp
            res.response_count[name] = res.response_count.get(name, 0) + 1
            if at > job.abs_deadline:
                res.misses.append((name, job.index, job.abs_deadline, at))

        while True:
            next_event = events.peek_time()
            decision_at = now + time_to_decision(running) if running is not None else None
            candidates = [c for c in (next_event, decision_at) if c is not None]
            if not candidates:
                break
            nxt = min(candidates)
            if nxt >= horizon:
                if running is not None and horizon > now:
                    dt = horizon - now
                    if isinstance(running, CBSServer):
                        running.execute(dt)
                    else:
                        running.remaining -= dt
                now = horizon
                break
            if running is not None and nxt > now:
                dt = nxt - now
                if isinstance(running, CBSServer):
                    running.execute(dt)
                else:
                    running.remaining -= dt
            now = nxt

            # Opt-in measurement of *real* scheduler cost (overheads
            # calibration); never read unless time_invocations is set,
            # and never part of a scheduling decision.
            t0 = _time.perf_counter_ns() if self.time_invocations else 0  # staticcheck: allow[R002]

            # 1. Decision point for the running entity?
            if running is not None and time_to_decision(running) == 0:
                if isinstance(running, CBSServer):
                    needs_requeue = running.decide()
                    if needs_requeue and running.active:
                        push_ready(running)
                        running = None
                    elif not running.active:
                        running = None
                    # else: keep running with refreshed head request
                else:
                    complete_job(running, now)
                    running = None

            # 2. Releases and request arrivals at this instant.
            for payload in events.pop_at(now):
                kind = payload[0]
                if kind == "release":
                    _, task, index = payload
                    job = UniJob(task, index, now, task.exec_time(index))
                    push_ready(job)
                    nxt_rel = task.release_time(index + 1)
                    if nxt_rel is not None and nxt_rel < horizon:
                        events.push(nxt_rel, ("release", task, index + 1))
                elif kind == "job":
                    push_ready(payload[1])
                else:  # request
                    _, server, exec_time = payload
                    was_active = server.active
                    server.on_arrival(now, exec_time)
                    if not was_active and running is not server:
                        push_ready(server)

            # 3. Pick the highest-priority entity.
            top = peek_key()
            if top is not None and (running is None or top < running_key()):
                if running is not None:
                    res.preemptions += 1
                    push_ready(running)
                running = pop_ready()
                res.dispatches += 1

            if self.time_invocations:
                res.sched_ns_total += _time.perf_counter_ns() - t0  # staticcheck: allow[R002]
                res.invocations += 1

        # Jobs never completed whose deadlines fell inside the horizon.
        leftovers: List[UniJob] = []
        if running is not None and not isinstance(running, CBSServer):
            leftovers.append(running)
        for key, _, entity in ready:
            if isinstance(entity, CBSServer):
                continue
            leftovers.append(entity)
        for job in leftovers:
            if job.abs_deadline <= horizon and job.remaining > 0:
                res.misses.append((job.task.name, job.index, job.abs_deadline, None))
        return res


def simulate_uniproc(tasks: Iterable[UniTask], horizon: int, *,
                     policy: str = "edf", servers: Iterable[CBSServer] = (),
                     time_invocations: bool = False) -> UniprocResult:
    """One-call convenience wrapper over :class:`UniprocSimulator`."""
    sim = UniprocSimulator(tasks, policy=policy, servers=servers,
                           time_invocations=time_invocations)
    return sim.run(horizon)
