"""Fluid-schedule bookkeeping: ideal allocations and lags, exactly.

The defining comparison of Pfair scheduling (paper, Sec. 2) is against the
*ideal fluid schedule* in which every task receives ``wt(T)`` processor
time in each slot.  The deviation at time ``t`` is the lag::

    lag(T, t) = wt(T) · t  −  (quanta allocated to T in [0, t))

A schedule is Pfair iff every lag stays strictly inside (−1, 1), and
ERfair iff it stays below 1.  :class:`LagTracker` maintains these values
incrementally and exactly — the numerator ``e·t − p·alloc`` is an integer,
so window membership and the lag bounds are integer comparisons.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .rational import Weight
from .task import PfairTask

__all__ = ["ideal_allocation", "LagTracker"]


def ideal_allocation(task: PfairTask, t: int) -> Weight:
    """Fluid allocation ``wt(T)·t`` as an exact rational."""
    if t < 0:
        raise ValueError("time must be nonnegative")
    return task.weight * t


class LagTracker:
    """Incremental exact lag accounting for a set of tasks.

    Call :meth:`advance` once per elapsed slot with the set of tasks that
    were scheduled in it.  Lags are exposed as ``(numerator, period)``
    pairs meaning ``numerator / period``; ``is_pfair`` / ``is_erfair``
    report whether all current lags satisfy the respective bound.
    """

    def __init__(self, tasks: Iterable[PfairTask]) -> None:
        self._tasks = list(tasks)
        self._alloc: Dict[int, int] = {t.task_id: 0 for t in self._tasks}
        self.now = 0

    def advance(self, scheduled: Iterable[PfairTask]) -> None:
        """Account for one slot in which ``scheduled`` tasks each ran one
        quantum."""
        for task in scheduled:
            if task.task_id not in self._alloc:
                raise KeyError(f"unknown task {task.name}")
            self._alloc[task.task_id] += 1
        self.now += 1

    def lag(self, task: PfairTask) -> Tuple[int, int]:
        """Current lag of ``task`` as an exact ``(numerator, denominator)``."""
        num = task.execution * self.now - task.period * self._alloc[task.task_id]
        return num, task.period

    def lags(self) -> Dict[str, Tuple[int, int]]:
        return {t.name: self.lag(t) for t in self._tasks}

    def is_pfair(self) -> bool:
        """True iff every current lag lies strictly in (−1, 1)."""
        for task in self._tasks:
            num, den = self.lag(task)
            if not (-den < num < den):
                return False
        return True

    def is_erfair(self) -> bool:
        """True iff every current lag lies strictly below 1."""
        for task in self._tasks:
            num, den = self.lag(task)
            if num >= den:
                return False
        return True

    def allocated(self, task: PfairTask) -> int:
        return self._alloc[task.task_id]
