"""Core Pfair scheduling: task models, subtask parameters, priority policies.

This subpackage implements the paper's primary contribution — the PD²
proportionate-fair scheduler and its relatives (PF, PD, EPDF, ERfair) —
over exact integer arithmetic, together with the decision engines that
drive them (the slot-synchronous :mod:`~repro.core.quantum` engine and
the event-driven :mod:`~repro.core.uniproc` engine).  See
:mod:`repro.sim` for the campaign-level simulators layered on top
(packed-key fast path, hyperperiod caching, staggered/variable quanta).
"""

from .rational import Weight, weight_sum
from .subtask import (
    SubtaskParams,
    WindowTable,
    b_bit,
    group_deadline,
    pseudo_deadline,
    pseudo_release,
    window_length,
    window_table,
)
from .task import (
    IntraSporadicTask,
    PeriodicTask,
    PfairTask,
    SporadicTask,
    Subtask,
    TaskSet,
)
from .priority import (
    EPDFPriority,
    PD2Priority,
    PDPriority,
    PFPriority,
    PriorityPolicy,
)
from .epdf import EPDFScheduler, schedule_epdf
from .erfair import ERPD2Scheduler, is_work_conserving_run, schedule_erfair
from .events import EventQueue
from .metrics import DeadlineMiss, SimStats, TaskStats
from .quantum import DeadlineMissError, QuantumSimulator, SimResult
from .trace import Allocation, ScheduleTrace
from .uniproc import UniprocSimulator, UniTask
from .lag import LagTracker, ideal_allocation
from .pd import PDScheduler, schedule_pd
from .pd2 import PD2Scheduler, schedule_pd2
from .pf import PFScheduler, schedule_pf
from .wrr import WeightedRoundRobin, WRRResult, simulate_wrr

__all__ = [
    "Weight",
    "weight_sum",
    "SubtaskParams",
    "WindowTable",
    "window_table",
    "pseudo_release",
    "pseudo_deadline",
    "b_bit",
    "window_length",
    "group_deadline",
    "Subtask",
    "PfairTask",
    "PeriodicTask",
    "SporadicTask",
    "IntraSporadicTask",
    "TaskSet",
    "PriorityPolicy",
    "PD2Priority",
    "PDPriority",
    "PFPriority",
    "EPDFPriority",
    "LagTracker",
    "ideal_allocation",
    "PD2Scheduler",
    "schedule_pd2",
    "PDScheduler",
    "schedule_pd",
    "PFScheduler",
    "schedule_pf",
    "EPDFScheduler",
    "schedule_epdf",
    "EventQueue",
    "DeadlineMiss",
    "SimStats",
    "TaskStats",
    "DeadlineMissError",
    "QuantumSimulator",
    "SimResult",
    "Allocation",
    "ScheduleTrace",
    "UniprocSimulator",
    "UniTask",
    "ERPD2Scheduler",
    "schedule_erfair",
    "is_work_conserving_run",
    "WeightedRoundRobin",
    "WRRResult",
    "simulate_wrr",
]
