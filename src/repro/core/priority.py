"""Priority policies for the known Pfair scheduling algorithms.

All of PF, PD, and PD² prioritise subtasks on an earliest-pseudo-deadline-
first basis and differ only in how they break deadline ties (paper, Sec. 2).
A policy maps a :class:`~repro.core.task.Subtask` to a *key*; the simulator
keeps its ready queue as a binary heap of keys, so smaller key == higher
priority.  All keys are totally ordered (final components are the task id
and subtask index), which both makes heaps happy and makes every run
deterministic for a given task-id assignment.

* :class:`PD2Priority` — the paper's subject.  Ties on the deadline are
  broken first by the b-bit (1 beats 0: executing ``T_i`` early when its
  window overlaps ``T_{i+1}``'s leaves more slots for the successor) and
  then by the *group deadline* (later beats earlier: a subtask heading a
  longer cascade of length-2 windows is more urgent).  Remaining ties may
  be broken arbitrarily — PD²'s optimality theorem is stated for arbitrary
  resolution, so the deterministic (task_id, index) tail is safe.
* :class:`PDPriority` — Baruah, Gehrke & Plaxton's PD uses the same first
  tie-breaks and then two further parameters.  Because *any* refinement of
  the PD² order is itself an optimal PD² instance, we implement PD as PD²
  plus two documented extra tie-breaks (heaviness, then larger weight);
  this is faithful in spirit — PD²'s contribution was precisely the proof
  that PD's extra tie-breaks are unnecessary — while remaining optimal.
* :class:`PFPriority` — Baruah et al.'s original PF compares, after the
  deadline, the lexicographic string of b-bits ``b(T_i), b(T_{i+1}), ...``
  (larger string wins).  The comparison is lazy and terminates at the first
  0 bit (at a job boundary at the latest), but is inherently
  comparison-based, so its key is a comparator object rather than a tuple.
* :class:`EPDFPriority` — earliest-pseudo-deadline-first with *no*
  tie-breaks.  Not optimal on more than two processors; included as the
  ablation baseline showing that the tie-breaks are what make PD² work.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from .task import Subtask

__all__ = [
    "PD2Priority",
    "PDPriority",
    "PFPriority",
    "EPDFPriority",
    "PriorityPolicy",
]


class PriorityPolicy:
    """Base class; subclasses implement :meth:`key`."""

    #: Human-readable algorithm name (used in traces and reports).
    name = "base"

    def key(self, subtask: Subtask) -> object:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PD2Priority(PriorityPolicy):
    """PD²: (deadline, b-bit 1 first, later group deadline first)."""

    name = "PD2"

    def key(self, subtask: Subtask) -> Tuple[int, int, int, int, int]:
        return (
            subtask.deadline,
            1 - subtask.b_bit,
            -subtask.group_deadline,
            subtask.task.task_id,
            subtask.index,
        )


class PDPriority(PriorityPolicy):
    """PD: PD²'s order refined by heaviness then larger weight.

    See the module docstring: the historical PD tie-break chain starts with
    exactly PD²'s comparisons, and refining beyond them cannot break
    optimality, so this is a correct optimal PD-family scheduler.
    """

    name = "PD"

    def key(self, subtask: Subtask) -> Tuple[int, int, int, int, int, int, int]:
        w = subtask.task.weight
        return (
            subtask.deadline,
            1 - subtask.b_bit,
            -subtask.group_deadline,
            0 if w.is_heavy() else 1,
            # Larger weight first, compared on a fixed 10^9 grid.  Distinct
            # weights closer than 1e-9 may collide, but this tie-break sits
            # below PD²'s (already optimality-sufficient) comparisons, so a
            # collision only falls through to the deterministic task id.
            -(w.num * 10**9) // w.den,
            subtask.task.task_id,
        )


class EPDFPriority(PriorityPolicy):
    """Earliest pseudo-deadline first, ties by task id (no Pfair tie-breaks)."""

    name = "EPDF"

    def key(self, subtask: Subtask) -> Tuple[int, int, int]:
        return (subtask.deadline, subtask.task.task_id, subtask.index)


class _PFKey:
    """Comparator implementing PF's lazy lexicographic b-bit comparison.

    ``a < b`` means ``a`` has *higher* priority.  After comparing deadlines,
    PF walks successor subtasks: at each step the subtask with b-bit 1
    beats the one with b-bit 0; if both bits are 1 the comparison recurses
    on the successors' deadlines; if both are 0 the tie is broken
    arbitrarily (here: task id).  The walk is bounded because every task's
    b-bit is 0 at its job boundary.
    """

    __slots__ = ("subtask",)

    def __init__(self, subtask: Subtask) -> None:
        self.subtask = subtask

    def _bits(self) -> "Iterator[Tuple[int, int]]":
        """Yield (deadline, b-bit) for this subtask and its successors.

        Successor parameters use the window-table pattern shifted by the
        current subtask's IS offset: PF is defined for periodic tasks, and
        for IS tasks we compare as if no further delays occur (documented
        approximation — future offsets are unknowable online anyway).
        """
        st = self.subtask
        task = st.task
        theta = st.release - task.table.release(st.index)
        i = st.index
        while True:
            yield task.table.deadline(i) + theta, task.table.b_bit(i)
            i += 1

    def __lt__(self, other: "_PFKey") -> bool:
        a, b = self.subtask, other.subtask
        for (da, ba), (db, bb) in zip(self._bits(), other._bits()):
            if da != db:
                return da < db
            if ba != bb:
                return ba > bb  # b-bit 1 wins
            if ba == 0:  # both 0: arbitrary, deterministic tie-break
                return (a.task.task_id, a.index) < (b.task.task_id, b.index)
            # both 1: continue with successors
        raise AssertionError("unreachable: b-bit walk terminates at job boundary")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _PFKey):
            return NotImplemented
        a, b = self.subtask, other.subtask
        return a.task.task_id == b.task.task_id and a.index == b.index

    def __repr__(self) -> str:
        return f"_PFKey({self.subtask!r})"


class PFPriority(PriorityPolicy):
    """PF: earliest deadline, ties by lazy lexicographic b-bit strings."""

    name = "PF"

    def key(self, subtask: Subtask) -> _PFKey:
        return _PFKey(subtask)
