"""Exact rational weights for Pfair scheduling.

Every scheduling decision in this library is made with exact integer
arithmetic.  A Pfair task's *weight* is the rational ``e/p`` where ``e`` is
its per-job execution requirement and ``p`` its period, both expressed in
whole scheduling quanta.  Floating point is never used for priorities,
releases, deadlines, or feasibility sums: accumulated rounding error in a
10^6-slot simulation would silently corrupt tie-breaks, and Pfair
correctness proofs are stated over exact rationals.

:class:`Weight` is a small immutable value type — deliberately simpler and
faster than :class:`fractions.Fraction` (no normalisation on every
arithmetic op, hashing on the reduced pair, rich comparisons by
cross-multiplication).  Use :func:`weight_sum` to form exact feasibility
sums such as the Pfair test ``sum(wt) <= M``.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, Tuple

__all__ = ["Weight", "weight_sum"]


class Weight:
    """An exact rational weight ``num/den`` with ``0 < num/den <= 1`` allowed
    to be relaxed for sums.

    Instances are immutable, hashable, reduced to lowest terms, and ordered
    by exact cross-multiplication.
    """

    __slots__ = ("num", "den")

    num: int
    den: int

    def __init__(self, num: int, den: int) -> None:
        if den == 0:
            raise ZeroDivisionError("weight denominator must be nonzero")
        if num < 0 or den < 0:
            raise ValueError(f"weight must be nonnegative, got {num}/{den}")
        g = gcd(num, den)
        if g > 1:
            num //= g
            den //= g
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Weight is immutable")

    # Immutability makes sharing safe: copies return self, and pickling
    # goes through the constructor (the default slot-state protocol would
    # trip over the guarded __setattr__ above).

    def __copy__(self) -> "Weight":
        return self

    def __deepcopy__(self, memo: object) -> "Weight":
        return self

    def __reduce__(self) -> "Tuple[type, Tuple[int, int]]":
        return (Weight, (self.num, self.den))

    # -- constructors ------------------------------------------------------

    @classmethod
    def of_task(cls, execution: int, period: int) -> "Weight":
        """Weight of a task with integer ``execution`` cost and ``period``.

        Enforces the Pfair constraint ``0 < e/p <= 1``.
        """
        if execution <= 0:
            raise ValueError(f"execution cost must be positive, got {execution}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if execution > period:
            raise ValueError(
                f"weight {execution}/{period} exceeds 1; Pfair weights are at most 1"
            )
        return cls(execution, period)

    @classmethod
    def zero(cls) -> "Weight":
        return cls(0, 1)

    # -- predicates from the paper ----------------------------------------

    def is_light(self) -> bool:
        """A task is *light* iff its weight is < 1/2 (paper, Sec. 2)."""
        return 2 * self.num < self.den

    def is_heavy(self) -> bool:
        """A task is *heavy* iff its weight is >= 1/2 (paper, Sec. 2)."""
        return 2 * self.num >= self.den

    def is_unit(self) -> bool:
        """True iff the weight is exactly 1 (every slot needed)."""
        return self.num == self.den

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Weight") -> "Weight":
        if not isinstance(other, Weight):
            return NotImplemented
        return Weight(self.num * other.den + other.num * self.den, self.den * other.den)

    def __sub__(self, other: "Weight") -> "Weight":
        if not isinstance(other, Weight):
            return NotImplemented
        num = self.num * other.den - other.num * self.den
        if num < 0:
            raise ValueError("weight subtraction went negative")
        return Weight(num, self.den * other.den)

    def __mul__(self, other: "Weight | int") -> "Weight":
        if isinstance(other, int):
            return Weight(self.num * other, self.den)
        if isinstance(other, Weight):
            return Weight(self.num * other.num, self.den * other.den)
        return NotImplemented

    __rmul__ = __mul__

    # -- comparisons (exact cross multiplication) --------------------------

    def _cmp_key(self, other: "Weight") -> Tuple[int, int]:
        return self.num * other.den, other.num * self.den

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Weight):
            return self.num == other.num and self.den == other.den
        if isinstance(other, int):
            return self.den == 1 and self.num == other
        return NotImplemented

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Weight):
            a, b = self._cmp_key(other)
            return a < b
        if isinstance(other, int):
            return self.num < other * self.den
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, Weight):
            a, b = self._cmp_key(other)
            return a <= b
        if isinstance(other, int):
            return self.num <= other * self.den
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        le = self.__le__(other)
        return NotImplemented if le is NotImplemented else not le

    def __ge__(self, other: object) -> bool:
        lt = self.__lt__(other)
        return NotImplemented if lt is NotImplemented else not lt

    def __hash__(self) -> int:
        return hash((self.num, self.den))

    # -- conversions -------------------------------------------------------

    def __float__(self) -> float:
        # Export-only conversion (plots, JSON); every comparison and
        # scheduling decision stays on the exact num/den pair.
        return self.num / self.den  # staticcheck: allow[R001]

    def ceil(self) -> int:
        """Smallest integer >= the weight value."""
        return -(-self.num // self.den)

    def floor(self) -> int:
        return self.num // self.den

    def __repr__(self) -> str:
        return f"Weight({self.num}/{self.den})"

    def __str__(self) -> str:
        return f"{self.num}/{self.den}"


def weight_sum(weights: Iterable[Weight]) -> Weight:
    """Exact sum of weights.

    Folds over a running ``num/den`` pair, reducing as it goes so the
    intermediate integers stay near the lcm of the denominators seen so
    far.  Used for the Pfair feasibility test ``weight_sum(wts) <= M``
    (Eq. (2) in the paper), which must be exact: a task set with total
    weight exactly ``M`` is feasible, and a float sum could tip either way.
    """
    num, den = 0, 1
    for w in weights:
        num = num * w.den + w.num * den
        den = den * w.den
        g = gcd(num, den)
        if g > 1:
            num //= g
            den //= g
    return Weight(num, den)
