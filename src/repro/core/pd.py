"""PD — Baruah, Gehrke & Plaxton's faster optimal Pfair algorithm (1995).

PD replaced PF's lexicographic b-bit comparison with a constant number of
scalar tie-break parameters, the first two of which are PD²'s b-bit and
group deadline.  PD² later proved the remaining tie-breaks unnecessary; we
therefore implement PD as PD²'s order refined by the extra parameters
(heaviness, then weight), which is optimal — any refinement of the PD²
order is a valid PD² tie-resolution — and preserves PD's character of
"more tie-breaks than needed".  See :class:`repro.core.priority.PDPriority`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from .quantum import QuantumSimulator, SimResult
from .priority import PDPriority
from .task import PfairTask

__all__ = ["PDScheduler", "schedule_pd"]


class PDScheduler(QuantumSimulator):
    """The PD algorithm bound to the quantum simulator."""

    def __init__(self, tasks: Iterable[PfairTask], processors: int, *,
                 early_release: bool = False, trace: bool = False,
                 on_miss: str = "record",
                 arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
                 capacity_fn: Optional[Callable[[int], int]] = None) -> None:
        super().__init__(
            tasks, processors, PDPriority(),
            early_release=early_release, trace=trace, on_miss=on_miss,
            arrivals=arrivals, capacity_fn=capacity_fn,
        )


def schedule_pd(tasks: Iterable[PfairTask], processors: int, horizon: int,
                *, trace: bool = True, on_miss: str = "record") -> SimResult:
    """Run PD over ``horizon`` slots and return the :class:`SimResult`."""
    return PDScheduler(tasks, processors, trace=trace, on_miss=on_miss).run(horizon)
