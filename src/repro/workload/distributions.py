"""Utilization and period distributions for random task-set generation.

The paper says only that task sets were "generated randomly" with a given
total utilization; DESIGN.md §5 fixes our concrete choice (uniform simplex
for utilizations, log-uniform quantum-aligned periods) and this module
provides that plus the alternatives used by the distribution ablations.

All samplers take a :class:`numpy.random.Generator` so every experiment is
seeded and reproducible; all outputs are plain Python numbers (periods are
integers aligned to the quantum grid).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

__all__ = [
    "uniform_simplex_utilizations",
    "uniform_utilizations",
    "bimodal_utilizations",
    "exponential_utilizations",
    "log_uniform_periods",
    "UTILIZATION_SAMPLERS",
]

#: Cap on any single task's utilization.  Pfair weights must be <= 1, and a
#: task near u = 1 cannot absorb *any* overhead inflation (Eq. (3)) on the
#: shortest periods — the paper's campaigns clearly contained no such task
#: (its Fig. 3 curves never report infeasibility).  0.95 leaves room for
#: the worst-case inflation on a 50-quantum period while still generating
#: heavy (>= 1/2) tasks.
_U_CAP = 0.95


def _rescale_to_total(us: np.ndarray, total: float) -> List[float]:
    """Scale ``us`` to sum to ``total``, iteratively clipping at the cap.

    Clipping one value redistributes its excess over the others; a handful
    of passes suffices because the cap only binds when total/N approaches 1.
    """
    us = np.asarray(us, dtype=float)
    if us.ndim != 1 or len(us) == 0:
        raise ValueError("need a non-empty 1-D utilization vector")
    if not 0 < total <= len(us) * _U_CAP:
        raise ValueError(
            f"total utilization {total} not achievable with {len(us)} tasks"
        )
    us = us / us.sum() * total
    for _ in range(64):
        over = us > _U_CAP
        if not over.any():
            break
        excess = float((us[over] - _U_CAP).sum())
        us[over] = _U_CAP
        under = ~over
        headroom = _U_CAP - us[under]
        us[under] += headroom / headroom.sum() * excess
    return us.tolist()


def uniform_simplex_utilizations(rng: np.random.Generator, n: int,
                                 total: float) -> List[float]:
    """Utilizations uniform on the simplex summing to ``total``
    (symmetric Dirichlet) — the default, matching DESIGN.md §5."""
    return _rescale_to_total(rng.dirichlet(np.ones(n)), total)


def uniform_utilizations(rng: np.random.Generator, n: int,
                         total: float) -> List[float]:
    """I.i.d. U(0, 1) draws rescaled to the target total."""
    return _rescale_to_total(rng.uniform(0.0, 1.0, size=n) + 1e-9, total)


def bimodal_utilizations(rng: np.random.Generator, n: int, total: float, *,
                         heavy_fraction: float = 0.1) -> List[float]:
    """A light/heavy mix: most draws near 0.05, a few near 0.5, rescaled.

    Exercises the partitioning-hostile regime (heavy tasks fragment bins)
    that drives the paper's ``(M+1)/2`` worst case.
    """
    kind = rng.uniform(size=n) < heavy_fraction
    us = np.where(kind, rng.uniform(0.4, 0.6, size=n), rng.uniform(0.01, 0.1, size=n))
    return _rescale_to_total(us, total)


def exponential_utilizations(rng: np.random.Generator, n: int,
                             total: float) -> List[float]:
    """Exponential draws rescaled — a long right tail of demanding tasks."""
    return _rescale_to_total(rng.exponential(1.0, size=n) + 1e-9, total)


UTILIZATION_SAMPLERS = {
    "simplex": uniform_simplex_utilizations,
    "uniform": uniform_utilizations,
    "bimodal": bimodal_utilizations,
    "exponential": exponential_utilizations,
}


def log_uniform_periods(rng: np.random.Generator, n: int, *,
                        quantum: int = 1000,
                        min_period: int = 50_000,
                        max_period: int = 5_000_000) -> List[int]:
    """Periods log-uniform in [min_period, max_period] ticks, rounded to the
    quantum grid (the paper assumes periods are quantum multiples).

    Defaults: 50 ms – 5 s on a 1 ms quantum, in µs ticks.
    """
    if min_period < quantum:
        raise ValueError("min_period must be at least one quantum")
    lo, hi = math.log(min_period), math.log(max_period)
    # .tolist() up front: math.exp on a Python float skips the per-call
    # numpy-scalar conversion.  (np.exp would vectorise but differs from
    # libm's exp in the last ulp, which would change generated periods.)
    top = (max_period // quantum) * quantum
    exp = math.exp
    out: List[int] = []
    for x in rng.uniform(lo, hi, size=n).tolist():
        p = int(round(exp(x) / quantum)) * quantum
        out.append(max(quantum, min(p, top)))
    return out
