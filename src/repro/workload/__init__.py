"""Workload generation: task specs, utilization/period distributions, and
seeded random task-set generators."""

from .distributions import (
    UTILIZATION_SAMPLERS,
    bimodal_utilizations,
    exponential_utilizations,
    log_uniform_periods,
    uniform_simplex_utilizations,
    uniform_utilizations,
)
from .generator import (
    TaskSetGenerator,
    generate_task_set,
    specs_to_pfair_tasks,
    specs_to_uni_tasks,
)
from .spec import TaskSpec, max_utilization, total_utilization

__all__ = [
    "TaskSpec",
    "total_utilization",
    "max_utilization",
    "TaskSetGenerator",
    "generate_task_set",
    "specs_to_pfair_tasks",
    "specs_to_uni_tasks",
    "UTILIZATION_SAMPLERS",
    "uniform_simplex_utilizations",
    "uniform_utilizations",
    "bimodal_utilizations",
    "exponential_utilizations",
    "log_uniform_periods",
]
