"""Random task-set generation for the paper's simulation campaigns.

The experiments of Figs. 2–4 each draw many random task sets with a given
task count ``N`` and total utilization ``U``; this module produces them as
:class:`~repro.workload.spec.TaskSpec` lists (ticks = µs) and converts
them into the runtime task types.  Everything is seeded through
:class:`numpy.random.Generator` — a campaign is reproducible from
``(seed, N, U, point index)``.

Cache-related preemption delays ``D(T)`` are drawn per task, uniform on
``[0, 100] µs`` with mean 33.3 µs by default, exactly as the paper chose
by extrapolating from the timing-analysis literature (Sec. 4).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.task import PeriodicTask
from ..core.uniproc import UniTask
from .distributions import (
    UTILIZATION_SAMPLERS,
    log_uniform_periods,
    uniform_simplex_utilizations,
)
from .spec import TaskSpec

__all__ = [
    "TaskSetGenerator",
    "generate_task_set",
    "specs_to_pfair_tasks",
    "specs_to_uni_tasks",
]


_TASK_NAMES: List[str] = []


def _task_names(n: int) -> List[str]:
    """The shared ``["T0", "T1", ...]`` prefix, grown on demand — one
    format per distinct index ever needed instead of one per generated
    task."""
    while len(_TASK_NAMES) < n:
        _TASK_NAMES.append(f"T{len(_TASK_NAMES)}")
    return _TASK_NAMES[:n]


class TaskSetGenerator:
    """Seeded generator of random periodic task sets.

    Parameters
    ----------
    seed:
        Root seed; every :meth:`generate` call advances the stream, so one
        generator instance yields a reproducible sequence of sets.
    quantum:
        Tick multiple all periods align to (default 1 ms in µs ticks).
    min_period, max_period:
        Log-uniform period range in ticks.
    utilization_sampler:
        Name in :data:`~repro.workload.distributions.UTILIZATION_SAMPLERS`
        or a callable ``(rng, n, total) -> list[float]``.
    cache_delay_max:
        ``D(T)`` is drawn uniform on ``[0, cache_delay_max]`` ticks (the
        paper's 0–100 µs, mean 33.3 µs).
    """

    def __init__(self, seed: int = 0, *, quantum: int = 1000,
                 min_period: int = 50_000, max_period: int = 5_000_000,
                 utilization_sampler: "str | Callable[..., List[float]]" = "simplex",
                 cache_delay_max: int = 100) -> None:
        self.rng = np.random.default_rng(seed)
        self.quantum = quantum
        self.min_period = min_period
        self.max_period = max_period
        if isinstance(utilization_sampler, str):
            try:
                utilization_sampler = UTILIZATION_SAMPLERS[utilization_sampler]
            except KeyError:
                raise ValueError(
                    f"unknown sampler {utilization_sampler!r}; options: "
                    f"{sorted(UTILIZATION_SAMPLERS)}"
                ) from None
        self.utilization_sampler: Callable = utilization_sampler
        self.cache_delay_max = cache_delay_max

    def generate(self, n: int, total_utilization: float) -> List[TaskSpec]:
        """One random set of ``n`` tasks with the given total utilization.

        Execution costs are rounded to whole ticks (>= 1), so the realised
        total utilization deviates from the target by at most ~1 tick per
        period — negligible at µs resolution.
        """
        if n < 1:
            raise ValueError("need at least one task")
        us = self.utilization_sampler(self.rng, n, total_utilization)
        periods = log_uniform_periods(
            self.rng, n, quantum=self.quantum,
            min_period=self.min_period, max_period=self.max_period,
        )
        delays = self.rng.integers(0, self.cache_delay_max + 1, size=n)
        # Vectorised e = max(1, min(p, round(u*p))): np.rint is the same
        # round-half-to-even as Python's round on float64; .tolist()
        # yields plain Python ints, skipping a numpy-scalar conversion
        # per field below.
        p_arr = np.asarray(periods, dtype=np.int64)
        e_list = np.clip(np.rint(np.asarray(us) * p_arr).astype(np.int64),
                         1, p_arr).tolist()
        names = _task_names(n)
        return [TaskSpec(execution=e, period=p, name=nm, cache_delay=d)
                for e, p, nm, d in zip(e_list, periods, names,
                                       delays.tolist())]


def generate_task_set(n: int, total_utilization: float, *, seed: int = 0,
                      **kwargs: object) -> List[TaskSpec]:
    """Convenience one-shot wrapper around :class:`TaskSetGenerator`."""
    return TaskSetGenerator(seed, **kwargs).generate(n, total_utilization)


def specs_to_pfair_tasks(specs: Sequence[TaskSpec], *,
                         quantum: Optional[int] = None) -> List[PeriodicTask]:
    """Instantiate specs as synchronous periodic Pfair tasks.

    With ``quantum`` given, execution costs are rounded up to whole quanta
    and periods divided by it (the Pfair quantisation of Sec. 4); without,
    the specs' tick values are used directly as (e, p) — appropriate when
    the specs are already in quanta.
    """
    tasks: List[PeriodicTask] = []
    for s in specs:
        if quantum is None:
            e, p = s.execution, s.period
        else:
            e, p = s.scaled_quanta(quantum)
            if e > p:
                raise ValueError(
                    f"{s.name}: quantised execution {e} exceeds period {p}"
                )
        tasks.append(PeriodicTask(e, p, name=s.name or None))
    return tasks


def specs_to_uni_tasks(specs: Sequence[TaskSpec]) -> List[UniTask]:
    """Instantiate specs as job-level uniprocessor tasks (EDF/RM side)."""
    return [UniTask(s.execution, s.period, name=s.name or None) for s in specs]
