"""Task specifications: the static description shared by all subsystems.

A :class:`TaskSpec` is the unit the workload generator produces and the
schedulability machinery consumes — integer execution cost and period in
*ticks* (we use microseconds throughout, matching the paper's constants:
context switch C = 5 µs, cache delay D(T) ~ U[0, 100] µs, quantum
q = 1000 µs).  Specs are immutable; simulators instantiate them into
:class:`~repro.core.task.PeriodicTask` (after quantisation) or
:class:`~repro.sim.uniproc.UniTask` as needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Iterable, Optional, Tuple

__all__ = ["TaskSpec", "total_utilization", "max_utilization"]


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """Static description of one periodic task, in integer ticks (µs).

    ``cache_delay`` is the task's maximum cache-related preemption delay
    ``D(T)`` — the paper charges it analytically on every resumption after
    a preemption or migration (cold-cache assumption).
    """

    execution: int
    period: int
    name: str = ""
    cache_delay: int = 0
    #: Relative deadline; ``None`` means implicit (= period).  Constrained
    #: deadlines (deadline < period) are analysed with the processor-demand
    #: criterion in :mod:`repro.partition.demand`.
    deadline: Optional[int] = None
    #: Longest critical section the task executes (ticks); 0 = independent.
    #: Resource identity is modelled separately (see
    #: :mod:`repro.partition.blocking`).
    max_section: int = 0
    #: Name of the resource the sections access; empty = independent.
    resource: str = ""

    def __post_init__(self) -> None:
        if self.execution <= 0:
            raise ValueError(f"execution must be positive, got {self.execution}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.execution > self.period:
            raise ValueError(
                f"{self.name or 'task'}: execution {self.execution} exceeds "
                f"period {self.period}"
            )
        if self.cache_delay < 0:
            raise ValueError("cache_delay must be nonnegative")
        if self.deadline is not None:
            if not self.execution <= self.deadline <= self.period:
                raise ValueError(
                    f"{self.name or 'task'}: deadline must satisfy "
                    f"e <= D <= p, got {self.deadline}"
                )
        if self.max_section < 0 or self.max_section > self.execution:
            raise ValueError(
                f"{self.name or 'task'}: max_section must be in "
                f"[0, execution], got {self.max_section}"
            )
        if bool(self.resource) != (self.max_section > 0):
            raise ValueError(
                f"{self.name or 'task'}: resource and max_section must be "
                "set together"
            )

    @property
    def relative_deadline(self) -> int:
        """The effective relative deadline (period when implicit)."""
        return self.period if self.deadline is None else self.deadline

    @property
    def utilization(self) -> Fraction:
        """Exact utilization e/p."""
        return Fraction(self.execution, self.period)

    def with_execution(self, execution: int) -> "TaskSpec":
        """Copy with a (typically inflated) execution cost."""
        return replace(self, execution=execution)

    def scaled_quanta(self, quantum: int) -> Tuple[int, int]:
        """``(e, p)`` in whole quanta: execution rounded *up* (the paper's
        quantisation — "execution times must be rounded up to the next
        multiple of the quantum size"), period divided exactly.

        The period must be a multiple of the quantum (asserted; the
        generator only produces such periods, per the paper's assumption).
        """
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.period % quantum != 0:
            raise ValueError(
                f"{self.name or 'task'}: period {self.period} not a multiple "
                f"of the quantum {quantum}"
            )
        e = -(-self.execution // quantum)
        p = self.period // quantum
        # Note: an *inflated* execution cost may quantise to e > p; callers
        # treat that as "this task alone is infeasible" rather than clamping.
        return e, p


def total_utilization(specs: Iterable[TaskSpec]) -> Fraction:
    """Exact summed utilization.

    Accumulates an unnormalised numerator/denominator pair and reduces
    once at the end: one gcd instead of one per task, with the same exact
    result (rational addition needs no intermediate normalisation).
    """
    num, den = 0, 1
    for s in specs:
        num = num * s.period + s.execution * den
        den *= s.period
    return Fraction(num, den)


def max_utilization(specs: Iterable[TaskSpec]) -> Fraction:
    """Largest per-task utilization (0 for an empty collection)."""
    return max((s.utilization for s in specs), default=Fraction(0))
