"""Task-set file I/O: a small JSON format for sharing workloads.

A task set is a JSON object with a header and a task list::

    {
      "ticks_per_ms": 1000,
      "quantum": 1000,
      "tasks": [
        {"name": "audio", "execution": 250, "period": 10000,
         "cache_delay": 30, "deadline": null},
        ...
      ]
    }

All times are integer ticks.  ``quantum`` and ``ticks_per_ms`` are
advisory metadata (preserved on round trips; the loader does not scale
anything).  The CLI's ``schedule --file`` / ``compare --file`` options
consume this format, and campaign scripts can persist generated sets for
exact cross-tool comparisons.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from .spec import TaskSpec

__all__ = ["task_set_to_dict", "task_set_from_dict", "save_task_set",
           "load_task_set"]

_FORMAT_KEYS = {"ticks_per_ms", "quantum", "tasks"}


def task_set_to_dict(specs: Sequence[TaskSpec], *, quantum: int = 1000,
                     ticks_per_ms: int = 1000) -> Dict[str, Any]:
    """Serialise specs to the documented JSON structure."""
    return {
        "ticks_per_ms": ticks_per_ms,
        "quantum": quantum,
        "tasks": [
            {
                "name": s.name,
                "execution": s.execution,
                "period": s.period,
                "cache_delay": s.cache_delay,
                "deadline": s.deadline,
            }
            for s in specs
        ],
    }


def task_set_from_dict(data: Dict[str, Any]) -> List[TaskSpec]:
    """Parse the documented JSON structure back into specs.

    Raises ``ValueError`` with a pointed message on malformed input —
    these files are hand-editable, so diagnostics matter.
    """
    if not isinstance(data, dict) or "tasks" not in data:
        raise ValueError("task-set file must be an object with a 'tasks' list")
    tasks = data["tasks"]
    if not isinstance(tasks, list):
        raise ValueError("'tasks' must be a list")
    specs: List[TaskSpec] = []
    for k, entry in enumerate(tasks):
        if not isinstance(entry, dict):
            raise ValueError(f"task #{k} is not an object")
        try:
            execution = int(entry["execution"])
            period = int(entry["period"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"task #{k}: 'execution' and 'period' must be integers"
            ) from exc
        deadline = entry.get("deadline")
        try:
            specs.append(TaskSpec(
                execution=execution,
                period=period,
                name=str(entry.get("name", f"T{k}")),
                cache_delay=int(entry.get("cache_delay", 0)),
                deadline=None if deadline is None else int(deadline),
            ))
        except ValueError as exc:
            raise ValueError(f"task #{k}: {exc}") from exc
    return specs


def save_task_set(path: Union[str, Path], specs: Sequence[TaskSpec], *,
                  quantum: int = 1000, ticks_per_ms: int = 1000) -> None:
    """Write specs to ``path`` as pretty-printed JSON."""
    payload = task_set_to_dict(specs, quantum=quantum,
                               ticks_per_ms=ticks_per_ms)
    Path(path).write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")


def load_task_set(path: Union[str, Path]) -> List[TaskSpec]:
    """Read a task-set JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    return task_set_from_dict(data)
