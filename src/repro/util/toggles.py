"""Process-wide fast-path toggle.

The PD² fast path (packed-key simulator, idle-slot skipping, hyperperiod
memoisation, integer-arithmetic first-fit packing) is *decision-identical*
to the reference implementations — the differential test suite proves it —
but an escape hatch is still good engineering: ``repro fig3 --no-fastpath``
(or ``REPRO_NO_FASTPATH=1``) forces every computation back onto the
reference code paths, e.g. to bisect a suspected fast-path bug or to
benchmark the reference.

The toggle is read at call sites, not import time, so tests can flip it
per-case.  Worker processes inherit it through the campaign pool
initializer (:mod:`repro.analysis.experiments`) and through the
environment variable.
"""

from __future__ import annotations

import os

__all__ = ["fastpath_enabled", "set_fastpath"]

_override: bool | None = None


def fastpath_enabled() -> bool:
    """True when fast-path implementations should be used (the default)."""
    if _override is not None:
        return _override
    return os.environ.get("REPRO_NO_FASTPATH", "") in ("", "0")


def set_fastpath(enabled: bool | None) -> None:
    """Force the fast path on/off; ``None`` restores the environment
    default (``REPRO_NO_FASTPATH``)."""
    global _override
    _override = enabled
