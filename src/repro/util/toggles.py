"""Process-wide kernel toggles.

The accelerated PD² kernels — the packed-key fast path (idle-slot
skipping, hyperperiod memoisation, integer-arithmetic first-fit packing)
and the struct-of-arrays vector kernel above it — are
*decision-identical* to the reference implementations: the differential
test suite proves it.  Escape hatches are still good engineering:

* ``--no-fastpath`` / ``REPRO_NO_FASTPATH=1`` forces every computation
  back onto the reference code paths (it implies the vector kernel is
  off too — with the fast path disabled nothing accelerated runs);
* ``--no-vector`` / ``REPRO_NO_VECTOR=1`` disables only the vector
  kernel, leaving the packed-key fast path in place — e.g. to bisect a
  suspected vector-kernel bug or to benchmark the middle tier.

The toggles are read at call sites, not import time, so tests can flip
them per-case.  Worker processes inherit them through the campaign pool
initializer (:mod:`repro.analysis.experiments`) and through the
environment variables.
"""

from __future__ import annotations

import os

__all__ = ["fastpath_enabled", "set_fastpath", "vector_enabled", "set_vector"]

_override: bool | None = None
_vector_override: bool | None = None


def fastpath_enabled() -> bool:
    """True when fast-path implementations should be used (the default)."""
    if _override is not None:
        return _override
    return os.environ.get("REPRO_NO_FASTPATH", "") in ("", "0")


def set_fastpath(enabled: bool | None) -> None:
    """Force the fast path on/off; ``None`` restores the environment
    default (``REPRO_NO_FASTPATH``)."""
    global _override
    _override = enabled


def vector_enabled() -> bool:
    """True when the struct-of-arrays vector kernel may be used (the
    default).  The dispatcher additionally requires the fast path to be
    enabled — :func:`fastpath_enabled` false means reference-only."""
    if _vector_override is not None:
        return _vector_override
    return os.environ.get("REPRO_NO_VECTOR", "") in ("", "0")


def set_vector(enabled: bool | None) -> None:
    """Force the vector kernel on/off; ``None`` restores the environment
    default (``REPRO_NO_VECTOR``)."""
    global _vector_override
    _vector_override = enabled
