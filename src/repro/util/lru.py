"""A bounded LRU mapping with hit statistics.

One cache type serves every memoisation point in the system: the
admission service's per-instance analysis cache
(:class:`repro.service.state.ServiceState`), the process-wide
schedulability cache shared by campaign workers and the service
(:data:`repro.analysis.schedulability.ANALYSIS_CACHE`), and the
hyperperiod-cycle cache of the PD² fast path
(:mod:`repro.sim.cache`).  All of them key results by canonical hashes
(:func:`repro.analysis.schedulability.task_set_cache_key` and friends) so
identical questions are answered by O(1) dict lookups.

Caches at every layer store only *pure* results (minimum processor
counts, inflated utilizations, per-cycle schedule statistics).  Anything
that depends on mutable state — e.g. the service's live Eq. (2)
admission — is never cached.

Thread safety: every mutating operation takes an internal
``threading.RLock``.  The process-wide caches are written both from the
main thread (campaign drivers) and from the ``ServerThread`` event loop
(service ``analyze`` requests), and an ``OrderedDict`` mutated from two
threads can corrupt its recency list; the uncontended lock costs tens of
nanoseconds against a lookup that saves a full schedulability analysis.
staticcheck's R007 (domain confinement) recognises this pattern — a
class whose mutating methods all run under ``self._lock`` — and treats
writes through it as synchronised.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded mapping with least-recently-used eviction and hit stats.

    Safe for concurrent use from multiple threads: each operation is
    atomic under an internal reentrant lock.  (Compound check-then-act
    sequences — ``get`` miss followed by ``put`` — are *not* atomic, but
    every cached value here is a pure function of its key, so the worst
    case is two threads computing the same result once each.)
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (refreshing its recency), or
        ``None``.  ``None`` is never a legal cached value."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if value is None:
            raise ValueError("None is reserved for cache misses")
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def info(self) -> Dict[str, Any]:
        """Occupancy and hit-rate statistics for the ``stats`` verb."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else None,
            }

    def __repr__(self) -> str:
        return (f"LRUCache({len(self._data)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
