"""Labelled counters and log-bucketed latency histograms.

A deliberately small, dependency-free registry in the Prometheus style:
counters count (requests by verb, retries by shard, batches by size
class) and histograms record latencies into logarithmically spaced
buckets so callers can report meaningful tail percentiles without
storing samples.  Quantiles are estimated by linear interpolation
inside the containing bucket — the standard histogram-quantile estimate,
accurate to a bucket's width (buckets are spaced 1–2–5 per decade, so
estimates are within ~2× and typically much closer).

Two consumers share these primitives: the admission service's request
metrics (:mod:`repro.service.metrics` re-exports this module and
confines its registry to the event loop) and the campaign engine's
shard-progress surface (:mod:`repro.campaign.progress`, confined to the
dispatching thread).  Neither takes locks: each registry instance is
single-domain by construction, the types hold no global state, and an
update is cheap enough for every request (two dict increments and a
bisection).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "LatencyHistogram", "MetricsRegistry"]

#: Bucket upper bounds in seconds: 1–2–5 series from 10 µs to 50 s.
#: The final implicit bucket is +inf.
DEFAULT_BOUNDS: List[float] = [
    b * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1)
    for b in (1.0, 2.0, 5.0)
]


class Counter:
    """A monotone counter with string labels (label "" = unlabelled)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, label: str = "", n: int = 1) -> None:
        """Add ``n`` (default 1) to ``label``'s count."""
        self._counts[label] = self._counts.get(label, 0) + n

    def value(self, label: str = "") -> int:
        """Current count for ``label`` (0 if never incremented)."""
        return self._counts.get(label, 0)

    def total(self) -> int:
        """Sum across all labels."""
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        """All labels and counts, sorted by label."""
        return dict(sorted(self._counts.items()))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    def __init__(self, bounds: Optional[List[float]] = None) -> None:
        self.bounds = list(DEFAULT_BOUNDS if bounds is None else bounds)
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = [0] * (len(self.bounds) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (seconds)."""
        if seconds < 0:
            seconds = 0.0
        self.buckets[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile in seconds (``None`` when empty).

        Linear interpolation within the containing bucket; samples in the
        overflow bucket report the largest observed value.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (rank - seen) / n
                return min(lo + frac * (hi - lo), self.max)
            seen += n
        return self.max  # pragma: no cover — rank <= count always lands

    def summary(self) -> Dict[str, Any]:
        """Count, mean, and tail percentiles (milliseconds) for reports."""
        def ms(v: Optional[float]) -> Optional[float]:
            return None if v is None else round(v * 1e3, 4)

        return {
            "count": self.count,
            "mean_ms": ms(self.sum / self.count) if self.count else None,
            "p50_ms": ms(self.quantile(0.50)),
            "p90_ms": ms(self.quantile(0.90)),
            "p99_ms": ms(self.quantile(0.99)),
            "max_ms": ms(self.max if self.count else None),
        }


class MetricsRegistry:
    """Named counters and histograms, snapshotted by the ``stats`` verb."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def histogram(self, name: str) -> LatencyHistogram:
        """Get or create the histogram ``name``."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = LatencyHistogram()
            return h

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as one JSON-friendly dict."""
        return {
            "counters": {name: c.as_dict()
                         for name, c in sorted(self._counters.items())},
            "latency": {name: h.summary()
                        for name, h in sorted(self._histograms.items())},
        }
