"""Small shared utilities with no domain dependencies.

Lives below every other package (``core``, ``sim``, ``analysis``,
``service`` all may import it) so that infrastructure like the LRU cache
and the fast-path toggle can be shared without import cycles.
"""

from .lru import LRUCache
from .metrics import Counter, LatencyHistogram, MetricsRegistry
from .toggles import fastpath_enabled, set_fastpath, set_vector, vector_enabled

__all__ = ["LRUCache", "fastpath_enabled", "set_fastpath",
           "vector_enabled", "set_vector",
           "Counter", "LatencyHistogram", "MetricsRegistry"]
