"""Command-line interface: ``python -m repro <command>``.

Quick access to the library's main entry points without writing a script:

* ``windows E/P``          — print the Pfair windows of a weight (Fig. 1 style)
* ``schedule E/P [E/P...]`` — run PD² on a task set and print the schedule
* ``fig1`` ``fig5``        — regenerate the paper's illustrative figures
* ``fig3`` ``fig4``        — run a (scaled) Fig. 3 / Fig. 4 campaign;
  ``--jobs N`` parallelises the grid over a process pool
* ``campaign run|resume|status`` — the same campaigns through the
  fault-tolerant engine: shards checkpoint into a run directory, an
  interrupted run resumes byte-identically, ``status`` reports live
  progress (see docs/CAMPAIGNS.md); ``--workers host1:port,host2:port``
  farms shards out to worker nodes (docs/DISTRIBUTED.md); ``--trace
  log.swf`` replays real Standard Workload Format windows instead of
  synthetic task sets (docs/TRACES.md)
* ``traces info|fetch|convert`` — inspect an SWF log, download a public
  archive log with mandatory SHA-256 verification, or convert a trace
  window into a task-set JSON file (docs/TRACES.md)
* ``worker --serve``        — run a shard-evaluation worker node for
  distributed campaigns
* ``compare E/P [E/P...]`` — minimum processors under PD² vs EDF-FF with
  the paper's overhead constants (weights are given in quanta)
* ``serve``                — run the admission-control service (TCP,
  JSON lines; see docs/SERVICE.md)
* ``admit E/P [E/P...]``   — ask a running service to admit a task set
* ``svc-stats``            — print a running service's metrics

Weights are written ``E/P`` in integer quanta (e.g. ``8/11``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from .analysis.experiments import utilization_grid
from .analysis.figures import fig1_report, fig3_table, fig4_table, fig5_report
from .campaign import (RunnerConfig, run_schedulability_campaign,
                       shutdown_worker_pool)
from .analysis.schedulability import edf_ff_min_processors, pd2_min_processors
from .core.task import PeriodicTask, TaskSet
from .overheads.model import OverheadModel
from .sim.quantum import simulate_pfair
from .sim.trace import render_schedule, render_windows
from .traces.mapping import MAPPING_POLICIES as MAPPING_POLICY_CHOICES
from .workload.spec import TaskSpec

if TYPE_CHECKING:
    from .service.client import AdmissionClient

__all__ = ["main"]


def _parse_weight(text: str) -> Tuple[int, int]:
    try:
        e_s, p_s = text.split("/")
        e, p = int(e_s), int(p_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"weights are written E/P in integer quanta, got {text!r}"
        ) from None
    if not 0 < e <= p:
        raise argparse.ArgumentTypeError(f"need 0 < E <= P, got {text}")
    return e, p


def _cmd_windows(args: argparse.Namespace) -> int:
    e, p = args.weight
    task = PeriodicTask(e, p, name="T")
    last = args.subtasks if args.subtasks else 2 * e
    print(render_windows(task, 1, last))
    print()
    print("subtask   r   d   b   group-deadline")
    for i in range(1, last + 1):
        s = task.subtask(i)
        print(f"  T{i:<6} {s.release:3d} {s.deadline:3d} {s.b_bit:3d}   "
              f"{s.group_deadline}")
    return 0


def _apply_fastpath_flag(args: argparse.Namespace) -> None:
    """Honour ``--no-fastpath`` / ``--no-vector``: force reference (or
    non-vector) implementations process-wide (campaign workers inherit
    through the pool initializer)."""
    if getattr(args, "no_fastpath", False):
        from .util.toggles import set_fastpath

        set_fastpath(False)
    if getattr(args, "no_vector", False):
        from .util.toggles import set_vector

        set_vector(False)


def _cmd_schedule(args: argparse.Namespace) -> int:
    _apply_fastpath_flag(args)
    tasks = [PeriodicTask(e, p, name=f"T{i}")
             for i, (e, p) in enumerate(args.weights)]
    ts = TaskSet(tasks)
    m = args.processors if args.processors else ts.min_processors()
    if not ts.is_feasible(m):
        print(f"infeasible: total weight {ts.total_weight()} > {m} processors",
              file=sys.stderr)
        return 1
    horizon = args.horizon if args.horizon else min(ts.hyperperiod() * 2, 200)
    res = simulate_pfair(tasks, m, horizon, trace=True)
    print(f"PD² on {m} processors, {horizon} slots, total weight "
          f"{ts.total_weight()}")
    print(f"misses: {res.stats.miss_count}, preemptions: "
          f"{res.stats.total_preemptions}, migrations: "
          f"{res.stats.total_migrations}\n")
    print(render_schedule(res.trace, tasks, min(horizon, args.width)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    model = OverheadModel()
    if args.file:
        from .workload.io import load_task_set

        specs = load_task_set(args.file)
    else:
        if not args.weights:
            print("give weights or --file", file=sys.stderr)
            return 2
        quantum = model.quantum
        specs = [TaskSpec(e * quantum, p * quantum, name=f"T{i}",
                          cache_delay=args.cache_delay)
                 for i, (e, p) in enumerate(args.weights)]
    m_pd2 = pd2_min_processors(specs, model)
    m_ff = edf_ff_min_processors(specs, model)
    total = sum(s.execution / s.period for s in specs)
    print(f"{len(specs)} tasks, raw utilization {total:.3f}")
    print(f"minimum processors, PD² (Eq. 2 on inflated weights): {m_pd2}")
    print(f"minimum processors, EDF-FF (overhead-aware first fit): {m_ff}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .workload.generator import TaskSetGenerator
    from .workload.io import save_task_set

    gen = TaskSetGenerator(args.seed)
    specs = gen.generate(args.tasks, args.utilization)
    save_task_set(args.output, specs, quantum=gen.quantum)
    print(f"wrote {len(specs)} tasks (target U = {args.utilization}) "
          f"to {args.output}")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    print(fig1_report())
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    report, results = fig5_report(horizon=args.horizon)
    print(report)
    return 0


def _campaign(args: argparse.Namespace,
              formatter: Callable[..., str]) -> int:
    _apply_fastpath_flag(args)
    grid = utilization_grid(args.tasks, points=args.points)
    rows = run_schedulability_campaign(
        args.tasks, grid, sets_per_point=args.sets, seed=args.seed,
        workers=args.jobs,
        progress=lambda msg: print(msg, file=sys.stderr))
    print(formatter(rows, args.tasks, args.sets))
    if args.save:
        from .analysis.persistence import save_campaign

        save_campaign(args.save, rows, seed=args.seed,
                      sets_per_point=args.sets,
                      note=f"{args.command} N={args.tasks}")
        print(f"[campaign saved to {args.save}]", file=sys.stderr)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    return _campaign(args, fig3_table)


def _cmd_fig4(args: argparse.Namespace) -> int:
    return _campaign(args, fig4_table)


def _campaign_config(args: argparse.Namespace) -> RunnerConfig:
    return RunnerConfig(workers=args.jobs or 1,
                        shard_timeout=args.shard_timeout,
                        max_retries=args.retries)


def _campaign_nodes(args: argparse.Namespace) -> Optional[list]:
    """Decode ``--workers``: a bare integer is the legacy ``--jobs``
    alias (local pool size); a ``host:port[,host:port...]`` list selects
    the distributed path (docs/DISTRIBUTED.md)."""
    text = getattr(args, "workers", None)
    if text is None:
        return None
    if text.isdigit():
        if args.jobs is None:
            args.jobs = int(text)
        return None
    from .distrib import parse_worker_nodes

    return parse_worker_nodes(text)


def _distrib_config(args: argparse.Namespace) -> "object":
    from .distrib import DistribConfig

    return DistribConfig(local_jobs=args.jobs or 0,
                         lease_timeout=args.lease_timeout,
                         shard_deadline=args.shard_timeout,
                         max_retries=args.retries)


def _run_campaign_cli(args: argparse.Namespace, grid_args: tuple,
                      *, resume: bool) -> int:
    """Shared body of ``campaign run`` and ``campaign resume``: route to
    the local engine or (with worker nodes) the distributed coordinator,
    then print the requested figure table."""
    from .campaign import CampaignIncomplete, RunDirError
    from .distrib import DistribError

    n_tasks, utilizations, sets, seed, replicas = grid_args
    try:
        nodes = _campaign_nodes(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if nodes is not None:
            from .distrib import run_distributed_campaign

            rows = run_distributed_campaign(
                n_tasks, utilizations, nodes=nodes, run_dir=args.run_dir,
                sets_per_point=sets, seed=seed, replicas=replicas,
                resume=resume, config=_distrib_config(args),
                progress=lambda msg: print(msg, file=sys.stderr))
        else:
            rows = run_schedulability_campaign(
                n_tasks, utilizations, sets_per_point=sets, seed=seed,
                replicas=replicas, run_dir=args.run_dir, resume=resume,
                config=_campaign_config(args),
                progress=lambda msg: print(msg, file=sys.stderr))
    except (RunDirError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except CampaignIncomplete as exc:
        print(f"campaign incomplete: {exc}", file=sys.stderr)
        return 1
    except (DistribError, OSError) as exc:
        print(f"distributed run failed: {exc}", file=sys.stderr)
        return 1
    formatter = fig4_table if args.fig == 4 else fig3_table
    print(formatter(rows, n_tasks, sets))
    print(f"[campaign "
          f"{'complete' if resume else 'checkpointed'} in {args.run_dir}]",
          file=sys.stderr)
    return 0


def _trace_window_offsets(args: argparse.Namespace) -> Tuple[int, ...]:
    """Consecutive window offsets from ``--window-offset``/``--windows``."""
    return tuple(args.window_offset + i * args.window
                 for i in range(args.windows))


def _run_trace_cli(args: argparse.Namespace, *, grid: "object",
                   resume: bool) -> int:
    """Shared body of ``campaign run --trace`` and its resume: route to
    the local trace-replay driver or (with worker nodes) the distributed
    coordinator, then print one figure table per trace window."""
    from .campaign import CampaignIncomplete, RunDirError
    from .distrib import DistribError
    from .traces.mapping import MappingConfig
    from .traces.swf import SWFError

    try:
        nodes = _campaign_nodes(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not Path(args.trace).is_file():
        print(f"{args.trace}: no such trace file", file=sys.stderr)
        return 2
    if grid is None:
        grid_kwargs = dict(
            window_seconds=args.window,
            window_offsets=_trace_window_offsets(args),
            utilizations=utilization_grid(args.tasks, points=args.points),
            n_tasks=args.tasks, sets_per_point=args.sets, seed=args.seed,
            replicas=args.replicas,
            mapping=MappingConfig(policy=args.policy))
    else:
        grid_kwargs = {}
    try:
        if nodes is not None:
            from .distrib import run_distributed_trace_campaign

            rows = run_distributed_trace_campaign(
                args.trace, nodes=nodes, run_dir=args.run_dir,
                resume=resume, config=_distrib_config(args), grid=grid,
                progress=lambda msg: print(msg, file=sys.stderr),
                **grid_kwargs)
        else:
            from .traces.replay import run_trace_campaign

            rows = run_trace_campaign(
                args.trace, run_dir=args.run_dir, resume=resume,
                config=_campaign_config(args), grid=grid,
                progress=lambda msg: print(msg, file=sys.stderr),
                **grid_kwargs)
    except (SWFError, RunDirError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except CampaignIncomplete as exc:
        print(f"campaign incomplete: {exc}", file=sys.stderr)
        return 1
    except (DistribError, OSError) as exc:
        print(f"distributed run failed: {exc}", file=sys.stderr)
        return 1
    if grid is not None:
        offsets = grid.window_offsets
        per = len(grid.utilizations)
        n_tasks, sets = grid.n_tasks, grid.sets_per_point
    else:
        offsets = grid_kwargs["window_offsets"]
        per = len(grid_kwargs["utilizations"])
        n_tasks, sets = args.tasks, args.sets
    formatter = fig4_table if args.fig == 4 else fig3_table
    for wi, offset in enumerate(offsets):
        print(f"[trace window @{offset}s]")
        print(formatter(rows[wi * per:(wi + 1) * per], n_tasks, sets))
    print(f"[trace campaign "
          f"{'complete' if resume else 'checkpointed'} in {args.run_dir}]",
          file=sys.stderr)
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    _apply_fastpath_flag(args)
    if args.trace is not None:
        return _run_trace_cli(args, grid=None, resume=False)
    grid = utilization_grid(args.tasks, points=args.points)
    return _run_campaign_cli(
        args, (args.tasks, grid, args.sets, args.seed, args.replicas),
        resume=False)


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    _apply_fastpath_flag(args)
    from .campaign import CheckpointStore, RunDirError

    store = CheckpointStore(args.run_dir)
    try:
        manifest = store.load_manifest()
    except (RunDirError, OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    grid_dict = manifest["grid"]
    if isinstance(grid_dict, dict) and grid_dict.get("kind"):
        # A trace-replay manifest: the run needs its log back to rebuild
        # the window payloads (the manifest pins the expected SHA-256).
        from .traces.replay import TraceGrid

        if args.trace is None:
            print(f"{args.run_dir} holds a {grid_dict['kind']!r} "
                  f"campaign; pass --trace PATH (the original log, "
                  f"SHA-256 {grid_dict.get('trace_sha256', '?')[:12]}...)",
                  file=sys.stderr)
            return 2
        try:
            trace_grid = TraceGrid.from_dict(grid_dict)
        except (KeyError, TypeError, ValueError) as exc:
            print(f"{args.run_dir}: malformed trace manifest: {exc}",
                  file=sys.stderr)
            return 2
        return _run_trace_cli(args, grid=trace_grid, resume=True)
    if args.trace is not None:
        print(f"{args.run_dir} holds a synthetic campaign; --trace does "
              f"not apply here", file=sys.stderr)
        return 2
    try:
        grid = store.load_grid()
    except (RunDirError, OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _run_campaign_cli(
        args, (grid.n_tasks, grid.utilizations, grid.sets_per_point,
               grid.seed, grid.replicas),
        resume=True)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import CheckpointStore, RunDirError

    store = CheckpointStore(args.run_dir)
    try:
        manifest = store.load_manifest()
    except (RunDirError, OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    g = manifest["grid"]
    print(f"campaign in {args.run_dir}: N={g['n_tasks']}, "
          f"{len(g['utilizations'])} points x {g['replicas']} replica(s), "
          f"{g['sets_per_point']} sets/point, seed {g['seed']} "
          f"(created {manifest['created']})")
    status = store.read_status()
    if status is None:
        print("state: planned (no status written yet)")
        return 0
    print(f"state: {status['state']}   shards: {status['shards_done']}"
          f"/{status['shards_total']}"
          + (f" ({status['shards_resumed']} restored from checkpoints)"
             if status.get("shards_resumed") else ""))
    retries = status.get("retries", {})
    print("retries: " + (", ".join(f"{k}={v}"
                                   for k, v in sorted(retries.items()))
                         if retries else "none"))
    tput = status.get("throughput_shards_per_sec")
    if tput:
        eta = status.get("eta_seconds")
        print(f"throughput: {tput} shards/s"
              + (f", eta {eta:.0f}s" if eta is not None else ""))
    lat = status.get("shard_latency", {})
    if lat.get("count"):
        print(f"shard latency: p50 {lat['p50_ms']} ms, "
              f"p90 {lat['p90_ms']} ms, max {lat['max_ms']} ms "
              f"over {lat['count']} shard(s)")
    _print_worker_attribution(status)
    if args.shards:
        _print_shard_attribution(store, status)
    return 0


def _print_worker_attribution(status: dict) -> None:
    """Per-worker columns of ``campaign status`` (distributed runs and
    the local pool both appear; old status files simply lack the key)."""
    workers = status.get("workers") or {}
    if workers:
        print("workers:")
        print(f"  {'node':<22} {'shards':>6} {'retries':>7} "
              f"{'shards/s':>9} {'p50 ms':>8}")
        for name, w in sorted(workers.items()):
            retries = sum((w.get("retries") or {}).values())
            tput = w.get("throughput_shards_per_sec")
            lat = (w.get("shard_latency") or {}).get("p50_ms")
            print(f"  {name:<22} {w.get('shards_done', 0):>6} "
                  f"{retries:>7} "
                  f"{tput if tput is not None else '-':>9} "
                  f"{lat if lat is not None else '-':>8}")
    distrib = status.get("distrib") or {}
    if distrib:
        print("coordination: "
              f"queue stalls {distrib.get('queue_stalls', 0)}"
              f"/cap {distrib.get('queue_capacity', '-')}, "
              f"duplicates discarded "
              f"{distrib.get('duplicates_discarded', 0)}, "
              f"leases expired {distrib.get('leases_expired', 0)}, "
              f"lost {distrib.get('leases_lost', 0)}")


def _print_shard_attribution(store: "object", status: dict) -> None:
    """The ``--shards`` table: producing node, attempts, lease history.

    Live-run rows come from the status snapshot's lease attribution;
    checkpointed shards (including restored ones the current run never
    leased) fall back to the provenance recorded in their shard files.
    """
    from .campaign import RunDirError

    attribution = status.get("shards") or {}
    ids = sorted(set(attribution) | store.completed_shards())
    if not ids:
        print("shards: none attempted yet")
        return
    print("shards:")
    print(f"  {'shard':<12} {'worker':<22} {'attempts':>8}  lease history")
    for sid in ids:
        entry = attribution.get(sid)
        if entry is not None:
            worker = entry.get("worker") or "-"
            leases = entry.get("leases") or []
            attempts = len(leases)
            history = " -> ".join(
                f"{rec.get('worker') or '?'}({rec.get('outcome')})"
                for rec in leases) or "-"
        else:
            try:
                meta = store.read_shard_meta(sid)
            except (RunDirError, OSError, ValueError, KeyError):
                continue
            worker = meta.get("worker", "local")
            attempts = meta.get("attempts", 1)
            history = "checkpointed"
        print(f"  {sid:<12} {worker:<22} {attempts:>8}  {history}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import AdmissionServer
    from .service.state import ServiceState

    state = ServiceState(args.processors, cache_capacity=args.cache)
    server = AdmissionServer(state, args.host, args.port,
                             max_batch=args.max_batch,
                             max_pending=args.max_pending)

    async def run() -> None:
        host, port = await server.start()
        print(f"admission service on {host}:{port} "
              f"({args.processors} processors, quantum "
              f"{state.model.quantum} ticks); protocol: docs/SERVICE.md",
              file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; draining connections", file=sys.stderr)
    return 0


def _service_client(args: argparse.Namespace) -> "AdmissionClient":
    from .service.client import AdmissionClient

    return AdmissionClient(args.host, args.port, timeout=args.timeout)


def _cmd_admit(args: argparse.Namespace) -> int:
    from .service.client import ServiceResponseError
    from .workload.io import load_task_set

    if args.file:
        specs = load_task_set(args.file)
        tasks = [{"name": s.name, "execution": s.execution,
                  "period": s.period, "cache_delay": s.cache_delay,
                  "deadline": s.deadline} for s in specs]
    elif args.weights:
        # Weights are quanta; the service speaks ticks.  Names carry the
        # PID so repeated invocations don't collide in the live system.
        import os

        q = 1000
        tasks = [{"name": f"cli{os.getpid()}-{i}",
                  "execution": e * q, "period": p * q}
                 for i, (e, p) in enumerate(args.weights)]
    else:
        print("give weights or --file", file=sys.stderr)
        return 2
    try:
        with _service_client(args) as client:
            r = client.admit(tasks, dry_run=args.dry_run)
    except (ConnectionError, OSError, ServiceResponseError) as exc:
        print(f"admit failed: {exc}", file=sys.stderr)
        return 1
    verdict = "ADMITTED" if r["admitted"] else "REJECTED"
    if args.dry_run:
        verdict += " (dry run)"
    a = r["analysis"]
    print(f"{verdict}: {len(tasks)} tasks, requested weight "
          f"{r['requested_weight']}")
    print(f"  live system: committed {r['committed_weight']} of "
          f"{r['capacity']} processors (Eq. (2) "
          f"{'holds' if r['feasible'] else 'violated'})")
    print(f"  min processors if scheduled alone: PD² {a['m_pd2']}, "
          f"EDF-FF {a['m_edf_ff']}"
          f"{'   [cached]' if a['cached'] else ''}")
    return 0 if r["admitted"] else 1


def _cmd_svc_stats(args: argparse.Namespace) -> int:
    import json as _json

    try:
        with _service_client(args) as client:
            r = client.stats()
    except (ConnectionError, OSError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps({"metrics": r["metrics"], "cache": r["cache"],
                       "system": r["system"]}, indent=2))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck.cli import main as staticcheck_main

    return staticcheck_main(list(getattr(args, "lint_args", []) or []))


def _add_campaign_commands(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    p = sub.add_parser(
        "campaign",
        help="fault-tolerant campaigns: checkpointed shards in a run "
             "directory (docs/CAMPAIGNS.md)")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    def dispatch_opts(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--jobs", "-j", dest="jobs", type=int,
                        default=None, metavar="N",
                        help="local worker processes (results are "
                             "byte-identical to the serial run); with "
                             "--workers NODES this adds N local pool "
                             "slots beside the remote fleet")
        cp.add_argument("--workers", dest="workers", default=None,
                        metavar="NODES",
                        help="host1:port,host2:port — farm shards out to "
                             "these `repro worker --serve` nodes "
                             "(docs/DISTRIBUTED.md); a bare integer is "
                             "the legacy --jobs alias")
        cp.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-shard deadline; a late shard is "
                             "resubmitted (parallel runs only; in "
                             "distributed runs this is the hard lease "
                             "deadline heartbeats cannot extend)")
        cp.add_argument("--lease-timeout", type=float, default=15.0,
                        metavar="SECONDS",
                        help="distributed runs: soft per-shard lease "
                             "deadline, extended by worker heartbeats "
                             "(default 15)")
        cp.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry budget per shard for errors/timeouts "
                             "(worker deaths are recovered unbudgeted)")
        cp.add_argument("--fig", type=int, choices=(3, 4), default=3,
                        help="which table to print from the finished rows")
        cp.add_argument("--no-fastpath", action="store_true",
                        help="force the reference analysis code paths")
        cp.add_argument("--no-vector", action="store_true",
                        help="disable the struct-of-arrays PD² kernel "
                             "(keep the packed-key fast path)")

    cp = csub.add_parser("run", help="start a checkpointed campaign")
    cp.add_argument("run_dir", help="run directory (created if missing)")
    cp.add_argument("--tasks", type=int, default=50)
    cp.add_argument("--points", type=int, default=8)
    cp.add_argument("--sets", type=int, default=15)
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--replicas", type=int, default=1,
                    help="shards per grid point (finer checkpoints and "
                         "more parallelism; changes the sampling split)")
    cp.add_argument("--trace", default=None, metavar="LOG.swf",
                    help="replay a Standard Workload Format log instead "
                         "of synthetic task sets: windows of real jobs "
                         "become the task pools (docs/TRACES.md)")
    cp.add_argument("--window", type=int, default=3600, metavar="SECONDS",
                    help="trace window width (default 3600)")
    cp.add_argument("--windows", type=int, default=1, metavar="N",
                    help="number of consecutive trace windows to replay")
    cp.add_argument("--window-offset", type=int, default=0,
                    metavar="SECONDS",
                    help="offset of the first window from the earliest "
                         "submit in the log")
    cp.add_argument("--policy", choices=MAPPING_POLICY_CHOICES,
                    default="runtime",
                    help="job-to-task mapping policy: periods from "
                         "runtimes or from inter-arrival gaps "
                         "(docs/TRACES.md)")
    dispatch_opts(cp)
    cp.set_defaults(fn=_cmd_campaign_run)

    cp = csub.add_parser(
        "resume",
        help="finish an interrupted campaign (grid comes from the "
             "manifest; completed shards are skipped byte-for-byte)")
    cp.add_argument("run_dir", help="existing run directory")
    cp.add_argument("--trace", default=None, metavar="LOG.swf",
                    help="the original SWF log of a trace-replay run "
                         "(required to resume one; the manifest pins its "
                         "SHA-256)")
    dispatch_opts(cp)
    cp.set_defaults(fn=_cmd_campaign_resume)

    cp = csub.add_parser("status",
                         help="report a run's shard progress, retries, "
                              "throughput, and per-worker attribution")
    cp.add_argument("run_dir", help="existing run directory")
    cp.add_argument("--shards", action="store_true",
                    help="also print the per-shard table: producing "
                         "node, attempts, lease history")
    cp.set_defaults(fn=_cmd_campaign_status)


def _cmd_traces_info(args: argparse.Namespace) -> int:
    from .traces.mapping import MappingConfig, machine_size, segment_log
    from .traces.swf import SWFError, parse_swf

    try:
        log = parse_swf(args.trace, strict=False)
    except (SWFError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"trace: {log.name}")
    for key, value in log.directives:
        print(f"  ; {key}: {value}" if key else f"  ; {value}")
    print(f"jobs: {len(log.jobs)}")
    print(f"span: {log.span_seconds()} s")
    try:
        procs = machine_size(log, MappingConfig())
        print(f"machine size: {procs} processor(s)")
    except ValueError as exc:
        print(f"machine size: unknown ({exc})")
    windows = segment_log(log, args.window)
    print(f"windows of {args.window} s with jobs: {len(windows)}")
    for offset, jobs in windows:
        print(f"  @{offset:>8}s  {len(jobs)} job(s)")
    return 0


def _cmd_traces_fetch(args: argparse.Namespace) -> int:
    from .traces.fetch import TRACE_REGISTRY, TraceFetchError, fetch_trace

    if args.list:
        for name, source in sorted(TRACE_REGISTRY.items()):
            print(f"{name}: {source.description}\n    {source.url}")
        return 0
    if args.trace is None or args.output is None:
        print("fetch needs TRACE and OUTPUT (or --list)", file=sys.stderr)
        return 2
    try:
        path = fetch_trace(args.trace, args.output, sha256=args.sha256)
    except TraceFetchError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"fetched and verified: {path}")
    return 0


def _cmd_traces_convert(args: argparse.Namespace) -> int:
    from .traces.mapping import (MappingConfig, machine_size, map_jobs,
                                 scale_to_utilization, window_jobs)
    from .traces.swf import SWFError, parse_swf
    from .workload.io import save_task_set

    try:
        log = parse_swf(args.trace, strict=False)
    except (SWFError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config = MappingConfig(policy=args.policy)
    try:
        procs = machine_size(log, config)
        jobs = window_jobs(log, args.window_offset, args.window)
        if not jobs:
            print(f"{log.name}: no jobs in the window "
                  f"[{args.window_offset}, "
                  f"{args.window_offset + args.window}) s", file=sys.stderr)
            return 2
        specs, rejected = map_jobs(jobs, config, max_procs=procs,
                                   on_invalid="skip")
        if not specs:
            print(f"{log.name}: every job in the window was degenerate",
                  file=sys.stderr)
            return 2
        if args.utilization is not None:
            specs = scale_to_utilization(specs, args.utilization)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for job_id, reason in rejected:
        print(f"skipped: {reason}", file=sys.stderr)
    save_task_set(args.output, specs, quantum=config.quantum)
    total = sum(s.execution / s.period for s in specs)
    print(f"wrote {len(specs)} task(s) (U = {total:.3f}) to {args.output}")
    return 0


def _add_traces_commands(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    p = sub.add_parser(
        "traces",
        help="Standard Workload Format logs: inspect, fetch, convert "
             "(docs/TRACES.md)")
    tsub = p.add_subparsers(dest="traces_command", required=True)

    tp = tsub.add_parser("info", help="parse an SWF log and summarise it")
    tp.add_argument("trace", help="path to the .swf file")
    tp.add_argument("--window", type=int, default=3600, metavar="SECONDS",
                    help="window width for the occupancy summary "
                         "(default 3600)")
    tp.set_defaults(fn=_cmd_traces_info)

    tp = tsub.add_parser(
        "fetch",
        help="download a workload-archive log with mandatory SHA-256 "
             "verification")
    tp.add_argument("trace", nargs="?", default=None,
                    help="registry name (see --list) or a direct URL")
    tp.add_argument("output", nargs="?", default=None,
                    help="destination .swf path")
    tp.add_argument("--sha256", default=None, metavar="HEX",
                    help="expected digest of the decompressed log; "
                         "required — downloads are refused without a "
                         "pinned checksum")
    tp.add_argument("--list", action="store_true",
                    help="print the known trace registry and exit")
    tp.set_defaults(fn=_cmd_traces_fetch)

    tp = tsub.add_parser(
        "convert",
        help="map one trace window to a task-set JSON file "
             "(usable with `repro compare --file`)")
    tp.add_argument("trace", help="path to the .swf file")
    tp.add_argument("output", help="task-set JSON output path")
    tp.add_argument("--window", type=int, default=3600, metavar="SECONDS",
                    help="window width (default 3600)")
    tp.add_argument("--window-offset", type=int, default=0,
                    metavar="SECONDS",
                    help="offset from the earliest submit (default 0)")
    tp.add_argument("--policy", choices=MAPPING_POLICY_CHOICES,
                    default="runtime",
                    help="job-to-task mapping policy (docs/TRACES.md)")
    tp.add_argument("--utilization", type=float, default=None, metavar="U",
                    help="rescale execution costs to this total "
                         "utilization (periods keep the trace's shape)")
    tp.set_defaults(fn=_cmd_traces_convert)


def _cmd_worker(args: argparse.Namespace) -> int:
    _apply_fastpath_flag(args)
    from .distrib import WorkerServer

    server = WorkerServer(args.host, args.port, jobs=args.jobs,
                          heartbeat_interval=args.heartbeat)
    host, port = server.start()
    print(f"worker node on {host}:{port} ({args.jobs} pool job(s), "
          f"heartbeat {args.heartbeat}s); protocol: docs/DISTRIBUTED.md",
          file=sys.stderr)
    try:
        server.wait()
        print("shutdown requested; draining", file=sys.stderr)
    except KeyboardInterrupt:
        print("interrupted; closing connections (in-flight shards are "
              "abandoned — the coordinator re-leases them)",
              file=sys.stderr)
    finally:
        server.stop()
    return 0


def _add_worker_command(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    p = sub.add_parser(
        "worker",
        help="run a shard-evaluation worker node for distributed "
             "campaigns (docs/DISTRIBUTED.md)")
    p.add_argument("--serve", action="store_true", required=True,
                   help="serve shard-run requests until shutdown "
                        "(explicit, so a bare `repro worker` cannot "
                        "silently open a port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7012,
                   help="listen port (default 7012); 0 picks an "
                        "ephemeral one")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="pool processes = shards evaluated concurrently")
    p.add_argument("--heartbeat", type=float, default=1.0,
                   metavar="SECONDS",
                   help="liveness frame interval while a shard computes")
    p.add_argument("--no-fastpath", action="store_true",
                   help="force the reference analysis code paths")
    p.add_argument("--no-vector", action="store_true",
                   help="disable the struct-of-arrays PD² kernel "
                        "(keep the packed-key fast path)")
    p.set_defaults(fn=_cmd_worker)


def _add_service_commands(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7011,
                       help="service port (default 7011)")
        p.add_argument("--timeout", type=float, default=30.0,
                       help="client socket timeout in seconds")

    p = sub.add_parser("serve",
                       help="run the admission-control service "
                            "(JSON lines over TCP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7011,
                   help="listen port; 0 picks an ephemeral one")
    p.add_argument("--processors", type=int, default=4,
                   help="live system size M for Eq. (2) admission")
    p.add_argument("--cache", type=int, default=1024,
                   help="LRU analysis-cache capacity")
    p.add_argument("--max-batch", type=int, default=64,
                   help="max pipelined requests answered per write")
    p.add_argument("--max-pending", type=int, default=256,
                   help="per-connection backpressure high-water mark")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("admit",
                       help="ask a running service to admit a task set")
    p.add_argument("weights", type=_parse_weight, nargs="*",
                   help="weights E/P in 1 ms quanta")
    p.add_argument("--file", default=None,
                   help="task-set JSON file (see repro.workload.io)")
    p.add_argument("--dry-run", action="store_true",
                   help="decide but do not join the live system")
    common(p)
    p.set_defaults(fn=_cmd_admit)

    p = sub.add_parser("svc-stats",
                       help="print a running service's metrics as JSON")
    common(p)
    p.set_defaults(fn=_cmd_svc_stats)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Case for Fair Multiprocessor "
                    "Scheduling' — Pfair/PD² vs EDF-FF.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("windows", help="print Pfair windows of a weight")
    p.add_argument("weight", type=_parse_weight, help="weight E/P (quanta)")
    p.add_argument("--subtasks", type=int, default=0,
                   help="how many subtasks (default: two jobs)")
    p.set_defaults(fn=_cmd_windows)

    p = sub.add_parser("schedule", help="run PD² on a task set")
    p.add_argument("weights", type=_parse_weight, nargs="+",
                   help="weights E/P (quanta)")
    p.add_argument("--processors", type=int, default=0,
                   help="processor count (default: ceil of total weight)")
    p.add_argument("--horizon", type=int, default=0,
                   help="slots to simulate (default: 2 hyperperiods, <= 200)")
    p.add_argument("--no-fastpath", action="store_true",
                   help="force the reference simulator (disable the "
                        "packed-key PD² fast path)")
    p.add_argument("--no-vector", action="store_true",
                   help="disable the struct-of-arrays PD² kernel "
                        "(keep the packed-key fast path)")
    p.add_argument("--width", type=int, default=60,
                   help="columns of schedule to print")
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser("compare",
                       help="min processors: PD² vs EDF-FF with overheads")
    p.add_argument("weights", type=_parse_weight, nargs="*",
                   help="weights E/P in 1 ms quanta")
    p.add_argument("--file", default=None,
                   help="task-set JSON file (see repro.workload.io)")
    p.add_argument("--cache-delay", type=int, default=33,
                   help="per-task D(T) in µs (default 33)")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("generate", help="write a random task-set JSON file")
    p.add_argument("output", help="output path")
    p.add_argument("--tasks", type=int, default=50)
    p.add_argument("--utilization", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("fig1", help="reproduce Fig. 1 (windows)")
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig5", help="reproduce Fig. 5 (supertasking)")
    p.add_argument("--horizon", type=int, default=900)
    p.set_defaults(fn=_cmd_fig5)

    for name, fn in (("fig3", _cmd_fig3), ("fig4", _cmd_fig4)):
        p = sub.add_parser(name, help=f"run a scaled {name} campaign")
        p.add_argument("--tasks", type=int, default=50)
        p.add_argument("--points", type=int, default=8)
        p.add_argument("--sets", type=int, default=15)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--jobs", "-j", "--workers", dest="jobs", type=int,
                       default=1, metavar="N",
                       help="worker processes for the campaign grid "
                            "(ProcessPoolExecutor; results are "
                            "byte-identical to the serial run; "
                            "--workers is an alias)")
        p.add_argument("--save", default=None,
                       help="write the campaign rows to this JSON file")
        p.add_argument("--no-fastpath", action="store_true",
                       help="force the reference analysis/simulation code "
                            "paths (disable caches and fast paths)")
        p.add_argument("--no-vector", action="store_true",
                       help="disable the struct-of-arrays PD² kernel "
                            "(keep the packed-key fast path)")
        p.set_defaults(fn=fn)

    _add_campaign_commands(sub)
    _add_traces_commands(sub)
    _add_worker_command(sub)
    _add_service_commands(sub)

    # ``repro lint`` is normally handled before argparse in :func:`main`
    # so that staticcheck's own options pass through verbatim; the
    # REMAINDER + ``fn`` default keep the argparse path working too
    # (programmatic ``build_parser().parse_args`` use).
    p = sub.add_parser(
        "lint",
        help="run the repo's AST invariant checker (repro.staticcheck)",
        add_help=False)
    p.add_argument("lint_args", nargs=argparse.REMAINDER,
                   help=argparse.SUPPRESS)
    p.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forward verbatim: argparse's REMAINDER cannot pass through
        # option-like tokens (e.g. ``repro lint --list-rules``).
        from .staticcheck.cli import main as staticcheck_main

        return staticcheck_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # The campaign runner has already written its final status and
        # checkpointed every finished shard; all that is left is to not
        # leak the warm pool's worker processes.
        shutdown_worker_pool()
        print("interrupted; worker pool shut down (completed shards "
              "remain checkpointed — `repro campaign resume` continues)",
              file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
