"""Packetised fair queueing: WFQ (PGPS) and WF²Q.

**WFQ** (Demers–Keshav–Shenker; analysed as PGPS by Parekh & Gallager)
transmits, whenever the link frees, the queued packet with the smallest
GPS virtual finish time.  Its celebrated bound: every packet departs no
later than its GPS fluid finish plus one maximum packet time,

    D_WFQ(p)  <=  D_GPS(p) + L_max / r .

**WF²Q** (Bennett & Zhang, cited as [7] by the paper) additionally
restricts the choice to *eligible* packets — those whose GPS service has
already started (virtual start ``S <= V(now)``) — which tightens the
other side too: WF²Q never runs more than one packet ahead of GPS
("worst-case fair").  The difference matters for exactly the reason the
paper cares about Pfair's (−1, 1) lag window rather than a one-sided
bound: being *ahead* of the fluid schedule is also a fairness violation.

Both schedulers reuse the exact GPS stamps from
:func:`repro.netfair.gps.simulate_gps` — virtual stamps depend only on
the arrival process, not on the packetised service order.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .gps import Flow, GPSResult, Packet, _number_packets, simulate_gps

__all__ = ["PacketizedResult", "simulate_wfq", "virtual_time_at"]


@dataclass
class PacketizedResult:
    """Departure times of a packetised (one-packet-at-a-time) schedule."""

    algorithm: str
    #: (flow, per-flow index) -> real departure (transmission end) time.
    departure: Dict[Tuple[str, int], Fraction] = field(default_factory=dict)
    #: Transmission order as (flow, index) tuples.
    order: List[Tuple[str, int]] = field(default_factory=list)
    gps: Optional[GPSResult] = None

    def delay(self, flow: str, index: int, arrival: int) -> Fraction:
        return self.departure[(flow, index)] - arrival

    def lateness_vs_gps(self, flow: str, index: int) -> Fraction:
        """Departure minus the GPS fluid finish (negative = ran ahead)."""
        assert self.gps is not None
        return self.departure[(flow, index)] - self.gps.finish_of(flow, index)


def virtual_time_at(gps: GPSResult, t: Fraction) -> Fraction:
    """Evaluate the piecewise-linear GPS virtual time at real time ``t``.

    Breakpoints may repeat a time coordinate at busy-period boundaries
    (V resets to 0); the latest entry at or before ``t`` wins, matching
    the right-continuous convention.
    """
    pts = gps.v_breakpoints
    times = [bp[0] for bp in pts]
    k = bisect_right(times, t) - 1
    if k < 0:
        return Fraction(0)
    t0, v0 = pts[k]
    if k + 1 < len(pts):
        t1, v1 = pts[k + 1]
        if t1 > t0 and t <= t1:
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    return v0


def simulate_wfq(flows: Sequence[Flow], packets: Sequence[Packet], *,
                 worst_case_fair: bool = False) -> PacketizedResult:
    """Simulate WFQ (default) or WF²Q (``worst_case_fair=True``).

    The link has rate 1; transmission is non-preemptive.  Ties on the
    virtual finish break by (flow name, index) for determinism.
    """
    gps = simulate_gps(flows, packets)
    queue = _number_packets(packets)
    result = PacketizedResult(
        algorithm="WF2Q" if worst_case_fair else "WFQ", gps=gps)
    t = Fraction(0)
    i = 0
    n = len(queue)
    backlog: List[Packet] = []
    while i < n or backlog:
        if not backlog:
            t = max(t, Fraction(queue[i].arrival))
        while i < n and Fraction(queue[i].arrival) <= t:
            backlog.append(queue[i])
            i += 1
        candidates = backlog
        if worst_case_fair:
            v_now = virtual_time_at(gps, t)
            eligible = [p for p in backlog
                        if gps.stamps[(p.flow, p.index)][0] <= v_now]
            # A busy system always has at least one eligible packet (the
            # one GPS itself is serving); guard for boundary rationals.
            if eligible:
                candidates = eligible
        chosen = min(candidates,
                     key=lambda p: (gps.stamps[(p.flow, p.index)][1],
                                    p.flow, p.index))
        backlog.remove(chosen)
        t = t + chosen.length
        result.departure[(chosen.flow, chosen.index)] = t
        result.order.append((chosen.flow, chosen.index))
    return result
