"""GPS — the fluid fair-queueing reference (Parekh & Gallager).

The paper's temporal-isolation argument (Sec. 5.3) is rooted in the
networking fair-queueing literature it cites ([7] WF²Q, [12] fair
queueing, [32] GPS, [40] Virtual Clock): Pfair is to multiprocessor CPU
scheduling what these are to a shared link.  This subpackage implements
that referenced substrate so the analogy is runnable, not rhetorical.

**Generalized Processor Sharing** is the fluid ideal: each backlogged flow
``i`` is served at rate ``w_i / W_B`` where ``W_B`` sums the weights of
currently backlogged flows (link rate 1).  Exactly like the Pfair fluid
schedule, GPS is unimplementable (it serves fractional bits of many
packets at once) and real schedulers are judged by their deviation from
it.  This module computes, with exact rational arithmetic:

* per-packet **GPS finish times** (the reference every bound is stated
  against);
* the **virtual time** function ``V(t)`` (piecewise linear, slope
  ``1/W_B``), which packetised schedulers (WFQ/WF²Q) use for stamping.

The event-driven fluid simulation advances between arrivals and fluid
departures; all times are exact :class:`fractions.Fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

__all__ = ["Packet", "Flow", "GPSResult", "simulate_gps"]


@dataclass(frozen=True)
class Packet:
    """One packet: flow name, arrival time, length (service time at rate 1)."""

    flow: str
    arrival: int
    length: int
    index: int = 0  # per-flow sequence number, filled by the simulators

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be nonnegative")
        if self.length <= 0:
            raise ValueError("length must be positive")


@dataclass(frozen=True)
class Flow:
    """A weighted flow; weights are exact rationals ``num/den``."""

    name: str
    weight_num: int
    weight_den: int = 1

    def __post_init__(self) -> None:
        if self.weight_num <= 0 or self.weight_den <= 0:
            raise ValueError("flow weight must be positive")

    @property
    def weight(self) -> Fraction:
        return Fraction(self.weight_num, self.weight_den)


@dataclass
class GPSResult:
    """Fluid outcomes: exact finish times and virtual-time stamps."""

    #: (flow, per-flow packet index) -> exact fluid finish time.
    finish: Dict[Tuple[str, int], Fraction] = field(default_factory=dict)
    #: (flow, index) -> (virtual start S, virtual finish F).
    stamps: Dict[Tuple[str, int], Tuple[Fraction, Fraction]] = field(
        default_factory=dict)
    #: Piecewise-linear virtual time as (real time, V) breakpoints.
    v_breakpoints: List[Tuple[Fraction, Fraction]] = field(default_factory=list)
    #: Flow weights, kept for service-curve evaluation.
    weights: Dict[str, Fraction] = field(default_factory=dict)
    #: (flow, index) -> arrival and length (for service curves).
    packets: Dict[Tuple[str, int], Tuple[int, int]] = field(default_factory=dict)

    def finish_of(self, flow: str, index: int) -> Fraction:
        return self.finish[(flow, index)]

    def service(self, flow: str, t: Fraction) -> Fraction:
        """Cumulative fluid service received by ``flow`` up to real time
        ``t``: each of its packets with stamps (S, F) is served at rate
        ``w·dV`` while ``V`` is in [S, F].

        Virtual time resets at busy-period boundaries, so the evaluation
        walks the recorded breakpoint segments and accumulates per
        segment (stamps from earlier busy periods cannot collide with
        later ones because departures always precede the reset).
        """
        from .wfq import virtual_time_at  # local import avoids a cycle

        v_t = virtual_time_at(self, t)
        w = self.weights[flow]
        total = Fraction(0)
        for (name, idx), (s, f) in self.stamps.items():
            if name != flow:
                continue
            arrival, length = self.packets[(name, idx)]
            if Fraction(arrival) > t:
                continue
            done = self.finish.get((name, idx))
            if done is not None and done <= t:
                total += length
            else:
                overlap = max(Fraction(0), min(v_t, f) - s)
                total += min(Fraction(length), w * overlap)
        return total


def _number_packets(packets: Sequence[Packet]) -> List[Packet]:
    """Assign per-flow sequence numbers in arrival order (FIFO per flow)."""
    ordered = sorted(packets, key=lambda p: (p.arrival, p.flow))
    counters: Dict[str, int] = {}
    out: List[Packet] = []
    for p in ordered:
        counters[p.flow] = counters.get(p.flow, 0) + 1
        out.append(Packet(p.flow, p.arrival, p.length, counters[p.flow]))
    return out


def simulate_gps(flows: Sequence[Flow], packets: Sequence[Packet]) -> GPSResult:
    """Exact fluid GPS simulation.

    Within a *busy period*, virtual time advances with slope ``1/W_B`` over
    the backlogged set; a packet with stamps ``(S, F)`` departs when ``V``
    reaches ``F``.  Stamps per flow: ``S = max(V(arrival), F_prev)``,
    ``F = S + L / w``.  Across idle gaps, ``V`` resets to 0 (standard
    single-busy-period bookkeeping).
    """
    weights = {f.name: f.weight for f in flows}
    for p in packets:
        if p.flow not in weights:
            raise KeyError(f"packet references unknown flow {p.flow!r}")
    queue = _number_packets(packets)
    result = GPSResult(weights=dict(weights))
    for p in queue:
        result.packets[(p.flow, p.index)] = (p.arrival, p.length)

    # Per-flow FIFO of stamped, not-yet-departed packets.
    pending: Dict[str, List[Packet]] = {f.name: [] for f in flows}
    last_f: Dict[str, Fraction] = {f.name: Fraction(0) for f in flows}

    t = Fraction(0)      # real time
    v = Fraction(0)      # virtual time
    result.v_breakpoints.append((t, v))
    i = 0                # next arrival index
    n = len(queue)

    def backlogged_weight() -> Fraction:
        return sum((weights[name] for name, q in pending.items() if q),
                   Fraction(0))

    while i < n or any(pending.values()):
        w_b = backlogged_weight()
        next_arrival = Fraction(queue[i].arrival) if i < n else None
        if w_b == 0:
            # Idle: jump to the next arrival, reset the virtual clock.
            assert next_arrival is not None
            t = max(t, next_arrival)
            v = Fraction(0)
            for name in last_f:
                last_f[name] = Fraction(0)
            result.v_breakpoints.append((t, v))
            while i < n and Fraction(queue[i].arrival) == t:
                pkt = queue[i]
                i += 1
                s = max(v, last_f[pkt.flow])
                f = s + Fraction(pkt.length) / weights[pkt.flow]
                last_f[pkt.flow] = f
                result.stamps[(pkt.flow, pkt.index)] = (s, f)
                pending[pkt.flow].append(pkt)
            continue
        # Earliest fluid departure among backlogged heads (min F overall —
        # note every queued packet is being served in GPS, so consider all).
        min_f = min(result.stamps[(name, p.index)][1]
                    for name, q in pending.items() for p in q)
        t_depart = t + (min_f - v) * w_b
        if next_arrival is not None and next_arrival < t_depart:
            # Advance to the arrival.
            v = v + (next_arrival - t) / w_b
            t = next_arrival
            result.v_breakpoints.append((t, v))
            while i < n and Fraction(queue[i].arrival) == t:
                pkt = queue[i]
                i += 1
                s = max(v, last_f[pkt.flow])
                f = s + Fraction(pkt.length) / weights[pkt.flow]
                last_f[pkt.flow] = f
                result.stamps[(pkt.flow, pkt.index)] = (s, f)
                pending[pkt.flow].append(pkt)
            continue
        # Advance to the departure.
        v = min_f
        t = t_depart
        result.v_breakpoints.append((t, v))
        for name, q in pending.items():
            remaining = []
            for p in q:
                if result.stamps[(name, p.index)][1] <= v:
                    result.finish[(name, p.index)] = t
                else:
                    remaining.append(p)
            pending[name] = remaining
    return result
