"""Fair queueing on a shared link — the networking substrate the paper's
Sec. 5.3 builds its temporal-isolation argument on (GPS, WFQ, WF²Q,
Virtual Clock)."""

from .gps import Flow, GPSResult, Packet, simulate_gps
from .vclock import simulate_virtual_clock
from .wfq import PacketizedResult, simulate_wfq, virtual_time_at

__all__ = [
    "Flow",
    "Packet",
    "GPSResult",
    "simulate_gps",
    "PacketizedResult",
    "simulate_wfq",
    "virtual_time_at",
    "simulate_virtual_clock",
]
