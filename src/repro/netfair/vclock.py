"""Virtual Clock (Zhang, cited as [40] by the paper).

Each flow keeps an auxiliary clock: a packet of length ``L`` on a flow
reserved at rate ``r`` is stamped

    auxVC = max(arrival, auxVC) + L / r

and the link serves packets in stamp order.  Virtual Clock provides the
reserved throughput to continuously backlogged flows, but — unlike
WFQ/GPS — a flow that *idles* keeps its low clock only until it sends
again, after which its backlog of "saved-up" low stamps lets it starve
competitors; conversely a flow that used idle capacity is punished later.
That history-sensitivity is precisely what "fairness" in the GPS sense
(and Pfairness in the paper's sense) rules out: entitlement depends only
on the present backlog and weights, never on past generosity.

``tests/test_netfair.py`` demonstrates both faces: the throughput
guarantee, and the punishment anomaly WFQ does not exhibit.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from .gps import Flow, Packet, _number_packets
from .wfq import PacketizedResult

__all__ = ["simulate_virtual_clock"]


def simulate_virtual_clock(flows: Sequence[Flow],
                           packets: Sequence[Packet]) -> PacketizedResult:
    """Simulate Virtual Clock on a rate-1 link (non-preemptive).

    Flow weights are interpreted as reserved rates (they should sum to at
    most 1 for the guarantees to be meaningful, as with GPS weights).
    """
    weights = {f.name: f.weight for f in flows}
    queue = _number_packets(packets)
    for p in queue:
        if p.flow not in weights:
            raise KeyError(f"packet references unknown flow {p.flow!r}")
    # Stamp packets in arrival order.
    aux: Dict[str, Fraction] = {f.name: Fraction(0) for f in flows}
    stamp: Dict[Tuple[str, int], Fraction] = {}
    for p in queue:
        aux[p.flow] = max(Fraction(p.arrival), aux[p.flow]) \
            + Fraction(p.length) / weights[p.flow]
        stamp[(p.flow, p.index)] = aux[p.flow]
    result = PacketizedResult(algorithm="VirtualClock")
    t = Fraction(0)
    i = 0
    n = len(queue)
    backlog: List[Packet] = []
    while i < n or backlog:
        if not backlog:
            t = max(t, Fraction(queue[i].arrival))
        while i < n and Fraction(queue[i].arrival) <= t:
            backlog.append(queue[i])
            i += 1
        chosen = min(backlog, key=lambda p: (stamp[(p.flow, p.index)],
                                             p.flow, p.index))
        backlog.remove(chosen)
        t = t + chosen.length
        result.departure[(chosen.flow, chosen.index)] = t
        result.order.append((chosen.flow, chosen.index))
    return result
