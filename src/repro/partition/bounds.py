"""Analytic utilization bounds for partitioned scheduling (paper, Sec. 3).

These are the closed-form results the paper cites when arguing that
partitioning is inherently lossy:

* the worst-case achievable utilization of *every* partitioning heuristic
  on M processors is ``(M+1)/2`` — witnessed by ``M+1`` tasks of
  utilization ``(1+eps)/2`` (:func:`pathological_specs`);
* with per-task utilization capped at ``u_max``, any set with total
  utilization at most ``M - (M-1)·u_max`` is schedulable
  (:func:`simple_guarantee`);
* Lopez et al. tightened that to ``(β·M + 1)/(β + 1)`` with
  ``β = floor(1/u_max)`` (:func:`lopez_guarantee`);
* Oh & Baker: RM-FF guarantees only about 41% of capacity
  (:func:`oh_baker_rm_guarantee`).

All bounds are returned as exact :class:`fractions.Fraction` values.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from ..workload.spec import TaskSpec

__all__ = [
    "worst_case_achievable",
    "simple_guarantee",
    "lopez_guarantee",
    "lopez_beta",
    "oh_baker_rm_guarantee",
    "pathological_specs",
]


def worst_case_achievable(processors: int) -> Fraction:
    """``(M+1)/2``: no heuristic can guarantee more total utilization than
    this on M processors (even with EDF locally)."""
    if processors < 1:
        raise ValueError("need at least one processor")
    return Fraction(processors + 1, 2)


def simple_guarantee(processors: int, u_max: Fraction) -> Fraction:
    """``M − (M−1)·u_max``: schedulable whenever total utilization is at
    most this, given no task exceeds ``u_max``."""
    if not 0 < u_max <= 1:
        raise ValueError("u_max must be in (0, 1]")
    return processors - (processors - 1) * Fraction(u_max)


def lopez_beta(u_max: Fraction) -> int:
    """``β = floor(1/u_max)``."""
    if not 0 < u_max <= 1:
        raise ValueError("u_max must be in (0, 1]")
    return int(Fraction(1) / Fraction(u_max))


def lopez_guarantee(processors: int, u_max: Fraction) -> Fraction:
    """Lopez et al.: the worst-case achievable utilization of EDF
    partitioning is ``(β·M + 1)/(β + 1)``."""
    beta = lopez_beta(u_max)
    return Fraction(beta * processors + 1, beta + 1)


def oh_baker_rm_guarantee(processors: int) -> float:
    """Oh & Baker's RM-FF guarantee, ``M·(2^{1/2} − 1)`` ≈ 0.414·M — the
    "41%" figure the paper quotes against RM partitioning."""
    if processors < 1:
        raise ValueError("need at least one processor")
    return processors * (2 ** 0.5 - 1)


def pathological_specs(processors: int, *, eps_num: int = 1,
                       eps_den: int = 100, period: int = 200_000) -> List[TaskSpec]:
    """``M+1`` tasks each of utilization ``(1+eps)/2`` with
    ``eps = eps_num/eps_den`` — unpartitionable on M processors by any
    heuristic, yet of total utilization approaching ``(M+1)/2``.

    The period must make ``(1+eps)·p/2`` integral (default: 200 ms with
    eps = 1/100 gives e = 101 ms exactly).
    """
    num = (eps_den + eps_num) * period
    if num % (2 * eps_den) != 0:
        raise ValueError("choose period so (1+eps)*period/2 is an integer")
    e = num // (2 * eps_den)
    return [TaskSpec(execution=e, period=period, name=f"P{i}")
            for i in range(processors + 1)]
