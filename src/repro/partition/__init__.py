"""Partitioned multiprocessor scheduling: bins, heuristics, acceptance
tests, analytic bounds, and end-to-end partitioners (EDF-FF, RM-FF)."""

from .accept import (
    AcceptanceTest,
    EDFOverheadTest,
    EDFUtilizationTest,
    RMHyperbolicTest,
    RMLiuLaylandTest,
    RMResponseTimeTest,
    rm_response_time,
)
from .bins import Partition, ProcessorBin
from .blocking import (
    EDFBlockingTest,
    edf_srp_feasible,
    local_blocking,
    pd2_section_inflation,
)
from .demand import EDFDemandTest, demand_bound, edf_feasible, testing_points
from .bounds import (
    lopez_beta,
    lopez_guarantee,
    oh_baker_rm_guarantee,
    pathological_specs,
    simple_guarantee,
    worst_case_achievable,
)
from .heuristics import (
    ORDERINGS,
    PLACEMENTS,
    PartitionFailure,
    PartitionResult,
    best_fit,
    first_fit,
    next_fit,
    partition,
    worst_fit,
)
from .partitioner import OnlinePartitioner, RM_TESTS, edf_ff, min_processors, rm_ff

__all__ = [
    "AcceptanceTest",
    "EDFUtilizationTest",
    "EDFOverheadTest",
    "RMLiuLaylandTest",
    "RMHyperbolicTest",
    "RMResponseTimeTest",
    "rm_response_time",
    "Partition",
    "ProcessorBin",
    "EDFBlockingTest",
    "edf_srp_feasible",
    "local_blocking",
    "pd2_section_inflation",
    "EDFDemandTest",
    "demand_bound",
    "edf_feasible",
    "testing_points",
    "worst_case_achievable",
    "simple_guarantee",
    "lopez_guarantee",
    "lopez_beta",
    "oh_baker_rm_guarantee",
    "pathological_specs",
    "PLACEMENTS",
    "ORDERINGS",
    "PartitionFailure",
    "PartitionResult",
    "partition",
    "first_fit",
    "best_fit",
    "worst_fit",
    "next_fit",
    "edf_ff",
    "rm_ff",
    "min_processors",
    "OnlinePartitioner",
    "RM_TESTS",
]
