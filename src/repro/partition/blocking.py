"""Blocking-aware schedulability: resource sharing under partitioning.

The paper's Sec. 5.1 argument, made computable.  When partitioned tasks
share resources, per-processor tests pick up *blocking terms*:

* **local blocking** — with a stack/ceiling protocol (SRP), a job is
  blocked at most once, by the longest critical section of a co-resident
  task with a longer period/deadline.  Baker's exact-style EDF-SRP
  condition, per task ``i`` in nondecreasing relative-deadline order::

      B_i / D_i  +  sum_{j : D_j <= D_i} u_j   <=  1

* **remote blocking** — if a resource's users land on *different*
  processors, every request can additionally wait for the sections of
  users on other processors (the MPCP shape; per request we charge the
  optimistic one-section-per-remote-user bound of
  :func:`repro.sync.locks.mpcp_remote_blocking`).  Remote blocking
  inflates the blocked task's execution cost.

Both approaches are charged against the *same request model*: each
resource-using task issues ``requests_per_job`` lock requests per job.
The acceptance test :class:`EDFBlockingTest` applies local + remote
blocking given the full system's resource map (to know which users are
remote).  The Pfair side of the same coin is
:func:`pd2_section_inflation`: quantum-boundary locking never blocks
across tasks; each request costs at most one deferred quantum tail
(< one maximum section) of lost time, independent of how many *other*
tasks use the resource — that independence is the whole argument.

Together these power ``benchmarks/bench_ext_resource_sharing.py``, which
quantifies the conclusion's claim that with synchronization incorporated
"EDF-FF would likely have performed much more poorly than PD²".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..workload.spec import TaskSpec
from .accept import AcceptanceTest
from .bins import ProcessorBin

__all__ = [
    "local_blocking",
    "edf_srp_feasible",
    "EDFBlockingTest",
    "pd2_section_inflation",
]


def local_blocking(specs: Sequence[TaskSpec], which: int) -> int:
    """SRP local blocking of ``specs[which]``: the longest section of a
    co-resident task with a strictly larger relative deadline that shares
    *any* resource usage (ceilinged resources block regardless of
    identity, so any section of a longer-deadline task counts)."""
    me = specs[which]
    d_me = me.relative_deadline
    return max((s.max_section for s in specs
                if s.relative_deadline > d_me and s.max_section > 0),
               default=0)


def edf_srp_feasible(specs: Sequence[TaskSpec],
                     remote_blocking: Optional[Dict[str, int]] = None) -> bool:
    """Baker's EDF-SRP test with optional per-task remote blocking.

    ``remote_blocking`` maps task name to extra ticks of cross-processor
    blocking charged per job (added to the task's execution cost, the
    standard treatment under MPCP-style accounting).
    """
    if not specs:
        return True
    remote = remote_blocking or {}
    inflated = [
        s.execution + remote.get(s.name, 0) for s in specs
    ]
    order = sorted(range(len(specs)),
                   key=lambda k: specs[k].relative_deadline)
    total_u = Fraction(0)
    for rank, k in enumerate(order):
        s = specs[k]
        if inflated[k] > s.relative_deadline:
            return False
        total_u += Fraction(inflated[k], s.period)
        b = local_blocking(specs, k)
        if Fraction(b, s.relative_deadline) + total_u > 1:
            return False
    return total_u <= 1


class EDFBlockingTest(AcceptanceTest):
    """Partitioning acceptance with SRP local + MPCP-style remote blocking.

    ``system`` is the whole task set (to find a resource's users that end
    up on other processors).  Remote blocking of a task = one longest
    section per same-resource user *not* in the candidate bin.  Because
    remote blocking depends on the final placement of every user, this
    test is conservative at admission time: unseen users are assumed
    remote — the same pessimism an online partitioned system faces.
    """

    algorithm = "edf"

    def __init__(self, system: Sequence[TaskSpec], *,
                 requests_per_job: Union[int, Callable[[TaskSpec], int]] = 1
                 ) -> None:
        if isinstance(requests_per_job, int):
            if requests_per_job < 1:
                raise ValueError("requests_per_job must be at least 1")
            self._requests = lambda s, r=requests_per_job: r
        else:
            self._requests = requests_per_job
        self.system = list(system)
        #: resource -> list of (name, max_section) of its users.
        self._users: Dict[str, List] = {}
        for s in self.system:
            if s.resource:
                self._users.setdefault(s.resource, []).append(
                    (s.name, s.max_section))

    def _remote_blocking(self, bin_specs: Sequence[TaskSpec],
                         spec: TaskSpec) -> Dict[str, int]:
        local_names = {s.name for s in bin_specs} | {spec.name}
        out: Dict[str, int] = {}
        for s in list(bin_specs) + [spec]:
            if not s.resource:
                continue
            remote_secs = [sec for (name, sec) in self._users[s.resource]
                           if name not in local_names]
            out[s.name] = self._requests(s) * sum(remote_secs)
        return out

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        candidate = list(bin.tasks) + [spec]
        remote = self._remote_blocking(bin.tasks, spec)
        if edf_srp_feasible(candidate, remote):
            return spec.utilization
        return None


def pd2_section_inflation(execution: int, requests_per_job: int,
                          max_section: int) -> int:
    """Pfair-side synchronization charge per job.

    Under quantum-boundary locking, a request that would cross the slot
    boundary is deferred; the task loses the tail of that quantum —
    strictly less than one ``max_section`` — and nothing else, no matter
    how many other tasks contend.  Charging every request as deferred
    gives the inflated cost ``e + R·s_max``."""
    if max_section == 0:
        return execution
    return execution + requests_per_job * max_section
