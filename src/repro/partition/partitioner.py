"""End-to-end partitioners: EDF-FF, RM-FF, minimum-processor search, and
online (dynamic) partitioning.

``EDF-FF`` — first fit with the exact EDF utilization test — is the
paper's representative of the partitioning approach.  The overhead-aware
variant feeds tasks in decreasing-period order so Eq. (3)'s cache term
``max_{U in P_T} D(U)`` is fixed at admission (see
:class:`~repro.partition.accept.EDFOverheadTest`); the paper calls out this
ordering explicitly.

:func:`min_processors` answers the Fig. 3 question for the partitioned
side: the number of processors first fit ends up opening when bins are
unbounded.  (First fit never benefits from extra empty bins, so this count
is exactly the smallest M for which this heuristic succeeds.)

:class:`OnlinePartitioner` models the dynamic-task discussion of Sec. 5.2:
joins are first-fit admissions against the current assignment (cheap but
may reject sets an offline repacking would fit — that pessimism is the
paper's point); leaves free capacity; :meth:`repartition` performs the
costly full repacking a join-heavy system would periodically need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..workload.spec import TaskSpec
from .accept import (
    AcceptanceTest,
    EDFOverheadTest,
    EDFUtilizationTest,
    RMHyperbolicTest,
    RMLiuLaylandTest,
    RMResponseTimeTest,
)
from .bins import Partition
from .heuristics import PartitionFailure, PartitionResult, partition

__all__ = [
    "edf_ff",
    "rm_ff",
    "min_processors",
    "OnlinePartitioner",
    "RM_TESTS",
]

RM_TESTS = {
    "liu_layland": RMLiuLaylandTest,
    "hyperbolic": RMHyperbolicTest,
    "response_time": RMResponseTimeTest,
}


def edf_ff(specs: Sequence[TaskSpec], *, max_bins: Optional[int] = None,
           overhead_inflation: Optional[int] = None) -> PartitionResult:
    """EDF-FF packing; overhead-aware when ``overhead_inflation`` (the
    ``2(S_EDF + C)`` term in ticks) is given."""
    if overhead_inflation is None:
        return partition(specs, placement="ff", ordering="given",
                         accept=EDFUtilizationTest(), max_bins=max_bins)
    return partition(specs, placement="ff", ordering="decreasing_period",
                     accept=EDFOverheadTest(overhead_inflation),
                     max_bins=max_bins)


def rm_ff(specs: Sequence[TaskSpec], *, test: str = "response_time",
          max_bins: Optional[int] = None) -> PartitionResult:
    """RM-FF packing with the chosen uniprocessor RM test."""
    try:
        accept = RM_TESTS[test]()
    except KeyError:
        raise ValueError(f"unknown RM test {test!r}; options: "
                         f"{sorted(RM_TESTS)}") from None
    return partition(specs, placement="ff", ordering="given",
                     accept=accept, max_bins=max_bins)


def min_processors(specs: Sequence[TaskSpec], *,
                   algorithm: str = "edf",
                   overhead_inflation: Optional[int] = None,
                   rm_test: str = "response_time") -> Optional[int]:
    """Processors the FF heuristic needs for ``specs``; ``None`` when some
    task cannot be scheduled even on a processor of its own (only possible
    with overhead inflation or RM)."""
    try:
        if algorithm == "edf":
            result = edf_ff(specs, overhead_inflation=overhead_inflation)
        elif algorithm == "rm":
            result = rm_ff(specs, test=rm_test)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
    except PartitionFailure:
        return None
    return result.processors


class OnlinePartitioner:
    """First-fit admission control over a fixed processor count.

    Joins try the existing bins in index order (classic online FF); leaves
    remove the task and refund its committed utilization.  For the
    overhead-aware EDF test, online joins violate the decreasing-period
    discipline the static packer enjoys, so this class (faithfully to an
    online system) recomputes the *bin-wide* inflation pessimistically: a
    newcomer is charged the bin's max cache delay regardless of period
    order, and residents are not re-inflated.  ``repartition`` redoes the
    full static packing.
    """

    def __init__(self, processors: int, *,
                 accept: Optional[AcceptanceTest] = None) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        self.accept = accept if accept is not None else EDFUtilizationTest()
        self.partition = Partition()
        for _ in range(processors):
            self.partition.new_bin()
        self._committed: Dict[str, object] = {}

    @property
    def processors(self) -> int:
        return self.partition.processors

    def try_join(self, spec: TaskSpec) -> Optional[int]:
        """Admit ``spec`` by first fit; returns the processor index or
        ``None``."""
        if not spec.name:
            raise ValueError("online tasks need unique names")
        if spec.name in self._committed:
            raise ValueError(f"{spec.name} already admitted")
        for b in self.partition.bins:
            u = self.accept.admit(b, spec)
            if u is not None:
                b.add(spec, u)
                self._committed[spec.name] = u
                return b.index
        return None

    def leave(self, name: str) -> None:
        """Remove a task and refund its committed utilization."""
        u = self._committed.pop(name, None)
        if u is None:
            raise KeyError(f"unknown task {name!r}")
        for b in self.partition.bins:
            for i, t in enumerate(b.tasks):
                if t.name == name:
                    del b.tasks[i]
                    b.load -= u
                    b.max_cache_delay = max(
                        (t.cache_delay for t in b.tasks), default=0)
                    b.min_period = min(
                        (t.period for t in b.tasks), default=None)
                    return
        raise AssertionError("committed task missing from all bins")

    def all_specs(self) -> List[TaskSpec]:
        return [t for b in self.partition.bins for t in b.tasks]

    def repartition(self, ordering: Optional[str] = None) -> bool:
        """Full offline repack of the current tasks (the expensive step the
        paper warns dynamic partitioned systems need).  Returns False and
        leaves the assignment unchanged if the repack does not fit."""
        if ordering is None:
            # The overhead-aware EDF test requires decreasing periods;
            # otherwise decreasing utilization (FFD) packs tightest.
            ordering = ("decreasing_period"
                        if isinstance(self.accept, EDFOverheadTest)
                        else "decreasing_utilization")
        specs = self.all_specs()
        try:
            result = partition(
                specs, placement="ff", ordering=ordering,
                accept=self.accept, max_bins=self.processors,
            )
        except PartitionFailure:
            return False
        fresh = Partition()
        for _ in range(self.processors):
            fresh.new_bin()
        self._committed.clear()
        for src in result.partition.bins:
            dst = fresh.bins[src.index]
            for t in src.tasks:
                u = self.accept.admit(dst, t)
                assert u is not None, "repacked bin rejected its own task"
                dst.add(t, u)
                self._committed[t.name] = u
        self.partition = fresh
        return True
