"""Processor-demand analysis: exact EDF feasibility beyond implicit deadlines.

The paper compares against EDF-FF with implicit deadlines, where the exact
per-processor test is just ``U <= 1``.  Real partitioned systems often
carry *constrained* deadlines (``D < p`` — e.g. input-to-output latency
budgets), and there the exact condition is Baruah, Rosier & Howell's
processor-demand criterion::

    U <= 1   and   dbf(t) <= t  for every absolute deadline t in (0, L]

with the demand bound function

    dbf(t) = sum over tasks of  max(0, floor((t - D_i) / p_i) + 1) * e_i

and ``L`` the synchronous busy-period / hyperperiod bound.  Everything is
exact integer arithmetic; only the deadlines in (0, L] need testing
because dbf is a step function that jumps exactly there.

:class:`EDFDemandTest` plugs the criterion into the partitioning
heuristics as an acceptance test, extending EDF-FF to constrained
deadlines — a strictly stronger oracle than the utilization test (and
equal to it when all deadlines are implicit).
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import List, Optional, Sequence

from ..workload.spec import TaskSpec
from .accept import AcceptanceTest
from .bins import ProcessorBin

__all__ = [
    "demand_bound",
    "testing_points",
    "edf_feasible",
    "EDFDemandTest",
]


def demand_bound(specs: Sequence[TaskSpec], t: int) -> int:
    """``dbf(t)``: total execution that must complete within any interval
    of length ``t`` (synchronous arrivals, constrained deadlines)."""
    if t < 0:
        raise ValueError("interval length must be nonnegative")
    total = 0
    for s in specs:
        d = s.relative_deadline
        if t >= d:
            total += ((t - d) // s.period + 1) * s.execution
    return total


def _busy_bound(specs: Sequence[TaskSpec]) -> int:
    """A valid testing-interval bound L.

    For ``U < 1`` the standard bound ``max(D_i) +
    U/(1-U) · max(p_i - D_i)`` applies; for ``U == 1`` fall back to the
    hyperperiod (always sufficient for synchronous periodic sets).  The
    returned bound is additionally capped by the hyperperiod, which is
    itself always sufficient.
    """
    hyper = lcm(*(s.period for s in specs))
    u = sum((Fraction(s.execution, s.period) for s in specs), Fraction(0))
    if u >= 1:
        return hyper
    max_d = max(s.relative_deadline for s in specs)
    slack = max(s.period - s.relative_deadline for s in specs)
    la = max_d + (u / (1 - u)) * slack
    l_star = int(la) + 1
    return min(l_star, hyper)


def testing_points(specs: Sequence[TaskSpec],
                   limit: Optional[int] = None) -> List[int]:
    """All absolute deadlines in ``(0, L]`` — the points where dbf jumps."""
    if not specs:
        return []
    bound = _busy_bound(specs) if limit is None else limit
    points = set()
    for s in specs:
        d = s.relative_deadline
        t = d
        while t <= bound:
            points.add(t)
            t += s.period
    return sorted(points)


def edf_feasible(specs: Sequence[TaskSpec]) -> bool:
    """Exact uniprocessor EDF feasibility (processor-demand criterion)."""
    if not specs:
        return True
    u = sum((Fraction(s.execution, s.period) for s in specs), Fraction(0))
    if u > 1:
        return False
    if all(s.deadline is None for s in specs):
        return True  # implicit deadlines: U <= 1 is exact
    return all(demand_bound(specs, t) <= t for t in testing_points(specs))


class EDFDemandTest(AcceptanceTest):
    """Partitioning acceptance by the exact demand criterion.

    Like the exact RM response-time test, acceptance depends on the whole
    bin content (the paper's "variable-sized bins" observation), so each
    admission re-analyses the candidate bin.
    """

    algorithm = "edf"

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        candidate = list(bin.tasks) + [spec]
        if edf_feasible(candidate):
            return spec.utilization
        return None
