"""Bin-packing heuristics for task-to-processor assignment.

Optimal assignment is bin packing (NP-hard in the strong sense), so online
partitioning uses polynomial heuristics (paper, Sec. 3).  A heuristic here
is (ordering × placement):

* placements — **FF** first fit, **BF** best fit (minimum spare after
  addition), **WF** worst fit (maximum spare), **NF** next fit (only the
  most recently opened bin);
* orderings — as given, decreasing utilization (FFD/BFD/...), decreasing
  period (required by the overhead-aware EDF test), increasing period.

``partition(...)`` runs one combination against an acceptance test and
either packs into at most ``max_bins`` processors or reports failure; with
``max_bins=None`` it opens bins freely, which is how the Fig. 3 campaign
computes the *minimum* processor count EDF-FF needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple
from fractions import Fraction

from ..workload.spec import TaskSpec
from .accept import AcceptanceTest, EDFUtilizationTest
from .bins import Partition, ProcessorBin

__all__ = [
    "PLACEMENTS",
    "ORDERINGS",
    "PartitionFailure",
    "PartitionResult",
    "partition",
    "first_fit",
    "best_fit",
    "worst_fit",
    "next_fit",
]


class PartitionFailure(Exception):
    """The heuristic could not place some task within ``max_bins``."""

    def __init__(self, spec: TaskSpec, partition: Partition) -> None:
        self.spec = spec
        self.partition = partition
        super().__init__(f"could not place {spec.name or spec} "
                         f"on {partition.processors} processors")


@dataclass
class PartitionResult:
    """A successful packing."""

    partition: Partition
    order: Tuple[str, ...]  # task names in placement order

    @property
    def processors(self) -> int:
        return self.partition.processors


def _order_given(specs: Sequence[TaskSpec]) -> List[TaskSpec]:
    return list(specs)


def _order_decreasing_utilization(specs: Sequence[TaskSpec]) -> List[TaskSpec]:
    return sorted(specs, key=lambda s: (-s.utilization, s.period, s.name))


def _order_decreasing_period(specs: Sequence[TaskSpec]) -> List[TaskSpec]:
    # The utilization tie-break is only consulted at equal periods, where
    # utilization order is execution order — so the key can stay integer.
    return sorted(specs, key=lambda s: (-s.period, -s.execution, s.name))


def _order_increasing_period(specs: Sequence[TaskSpec]) -> List[TaskSpec]:
    return sorted(specs, key=lambda s: (s.period, -s.execution, s.name))


ORDERINGS: dict = {
    "given": _order_given,
    "decreasing_utilization": _order_decreasing_utilization,
    "decreasing_period": _order_decreasing_period,
    "increasing_period": _order_increasing_period,
}


def _place_ff(bins: "Sequence[ProcessorBin]",
            admissions: "Sequence[Optional[Fraction]]"
            ) -> "Optional[Tuple[ProcessorBin, Fraction]]":
    for b, u in zip(bins, admissions):
        if u is not None:
            return b, u
    return None


def _place_bf(bins: "Sequence[ProcessorBin]",
            admissions: "Sequence[Optional[Fraction]]"
            ) -> "Optional[Tuple[ProcessorBin, Fraction]]":
    best = None
    for b, u in zip(bins, admissions):
        if u is None:
            continue
        spare_after = b.spare - u
        if best is None or spare_after < best[2]:
            best = (b, u, spare_after)
    return (best[0], best[1]) if best else None


def _place_wf(bins: "Sequence[ProcessorBin]",
            admissions: "Sequence[Optional[Fraction]]"
            ) -> "Optional[Tuple[ProcessorBin, Fraction]]":
    best = None
    for b, u in zip(bins, admissions):
        if u is None:
            continue
        spare_after = b.spare - u
        if best is None or spare_after > best[2]:
            best = (b, u, spare_after)
    return (best[0], best[1]) if best else None


def _place_nf(bins: "Sequence[ProcessorBin]",
            admissions: "Sequence[Optional[Fraction]]"
            ) -> "Optional[Tuple[ProcessorBin, Fraction]]":
    if bins:
        b, u = bins[-1], admissions[-1]
        if u is not None:
            return b, u
    return None


PLACEMENTS: dict = {
    "ff": _place_ff,
    "bf": _place_bf,
    "wf": _place_wf,
    "nf": _place_nf,
}


def partition(specs: Sequence[TaskSpec], *,
              placement: str = "ff",
              ordering: str = "given",
              accept: Optional[AcceptanceTest] = None,
              max_bins: Optional[int] = None) -> PartitionResult:
    """Pack ``specs`` onto processors; raises :class:`PartitionFailure`
    if a task cannot be placed within ``max_bins``.

    ``accept`` defaults to the exact EDF utilization test.
    """
    try:
        order_fn = ORDERINGS[ordering]
    except KeyError:
        raise ValueError(f"unknown ordering {ordering!r}; "
                         f"options: {sorted(ORDERINGS)}") from None
    try:
        place_fn = PLACEMENTS[placement]
    except KeyError:
        raise ValueError(f"unknown placement {placement!r}; "
                         f"options: {sorted(PLACEMENTS)}") from None
    if accept is None:
        accept = EDFUtilizationTest()
    part = Partition()
    ordered = order_fn(specs)
    bins = part.bins          # stable list identity; new_bin appends to it
    is_ff = place_fn is _place_ff
    ff_scan = accept.first_fit
    for spec in ordered:
        # First fit commits to the first admitting bin and next fit only
        # ever looks at the last, so don't probe the rest — acceptance
        # tests are stateless, making the short-circuit scan equivalent
        # to probing every bin and discarding the unused answers.  Best
        # and worst fit genuinely need every admission.
        if is_ff:
            chosen = ff_scan(bins, spec)
        elif place_fn is _place_nf:
            chosen = None
            if part.bins:
                u = accept.admit(part.bins[-1], spec)
                if u is not None:
                    chosen = (part.bins[-1], u)
        else:
            admissions = [accept.admit(b, spec) for b in part.bins]
            chosen = place_fn(part.bins, admissions)
        if chosen is None:
            if max_bins is not None and part.processors >= max_bins:
                raise PartitionFailure(spec, part)
            b = part.new_bin()
            u = accept.admit(b, spec)
            if u is None:
                # Not schedulable even alone (e.g. inflated cost > period).
                raise PartitionFailure(spec, part)
            b.add(spec, u)
        else:
            b, u = chosen
            b.add(spec, u)
    return PartitionResult(partition=part, order=tuple(s.name for s in ordered))


def first_fit(specs: Sequence[TaskSpec], **kw: object) -> PartitionResult:
    """First fit in the given order (the paper's FF)."""
    return partition(specs, placement="ff", **kw)


def best_fit(specs: Sequence[TaskSpec], **kw: object) -> PartitionResult:
    """Best fit: minimal spare capacity after the addition (the paper's BF)."""
    return partition(specs, placement="bf", **kw)


def worst_fit(specs: Sequence[TaskSpec], **kw: object) -> PartitionResult:
    """Worst fit: maximal spare capacity after the addition."""
    return partition(specs, placement="wf", **kw)


def next_fit(specs: Sequence[TaskSpec], **kw: object) -> PartitionResult:
    """Next fit: only the most recently opened bin is considered."""
    return partition(specs, placement="nf", **kw)
