"""Processor bins: the unit of state in partitioned scheduling.

Partitioning assigns each task permanently to one processor; a
:class:`ProcessorBin` tracks the tasks on one processor together with the
exact (rational) utilization committed so far, plus the bookkeeping the
overhead-aware EDF acceptance test needs — the largest cache-related
preemption delay among resident tasks, which inflates every *later*
(shorter-period) arrival per Eq. (3) of the paper.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, List, Optional

from ..workload.spec import TaskSpec

__all__ = ["ProcessorBin", "Partition"]


class ProcessorBin:
    """One processor's task assignment with exact load accounting."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.tasks: List[TaskSpec] = []
        #: Exact committed utilization, kept as an (unnormalised)
        #: numerator/denominator pair — the acceptance-test probes only
        #: cross-multiply, so skipping the gcd on every admission is free
        #: exactness.  ``load`` exposes the reduced :class:`Fraction`.
        self.load_num: int = 0
        self.load_den: int = 1
        #: Largest D(T) among resident tasks (for Eq. (3) inflation of
        #: subsequently added, shorter-period tasks).
        self.max_cache_delay: int = 0
        #: Smallest period among resident tasks (RM response-time tests).
        self.min_period: Optional[int] = None
        #: Largest period among resident tasks (the decreasing-period
        #: feed-order check of the overhead-aware EDF test).
        self.max_period: Optional[int] = None

    @property
    def load(self) -> Fraction:
        """Exact committed utilization (inflated, if an overhead-aware
        acceptance test is in use — the test supplies the increments)."""
        return Fraction(self.load_num, self.load_den)

    @load.setter
    def load(self, value: Fraction) -> None:
        f = Fraction(value)
        self.load_num, self.load_den = f.numerator, f.denominator

    @property
    def spare(self) -> Fraction:
        return Fraction(1) - self.load

    def add(self, spec: TaskSpec, utilization: Fraction) -> None:
        """Commit ``spec`` at the given (possibly inflated) utilization."""
        self.tasks.append(spec)
        num, den = utilization.numerator, utilization.denominator
        self.load_num = self.load_num * den + num * self.load_den
        self.load_den *= den
        if spec.cache_delay > self.max_cache_delay:
            self.max_cache_delay = spec.cache_delay
        if self.min_period is None or spec.period < self.min_period:
            self.min_period = spec.period
        if self.max_period is None or spec.period > self.max_period:
            self.max_period = spec.period

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:
        return f"ProcessorBin({self.index}, {len(self.tasks)} tasks, load={self.load})"


class Partition:
    """A complete assignment of tasks to processor bins."""

    def __init__(self) -> None:
        self.bins: List[ProcessorBin] = []

    def new_bin(self) -> ProcessorBin:
        b = ProcessorBin(len(self.bins))
        self.bins.append(b)
        return b

    @property
    def processors(self) -> int:
        return len(self.bins)

    def total_load(self) -> Fraction:
        # Accumulate the bins' raw num/den pairs; one reduction at the end.
        num, den = 0, 1
        for b in self.bins:
            num = num * b.load_den + b.load_num * den
            den *= b.load_den
        return Fraction(num, den)

    def bin_of(self, name: str) -> Optional[ProcessorBin]:
        for b in self.bins:
            if any(t.name == name for t in b.tasks):
                return b
        return None

    def __iter__(self) -> "Iterator[ProcessorBin]":
        return iter(self.bins)

    def __repr__(self) -> str:
        return f"Partition({self.processors} processors, load={self.total_load()})"
