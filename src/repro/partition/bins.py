"""Processor bins: the unit of state in partitioned scheduling.

Partitioning assigns each task permanently to one processor; a
:class:`ProcessorBin` tracks the tasks on one processor together with the
exact (rational) utilization committed so far, plus the bookkeeping the
overhead-aware EDF acceptance test needs — the largest cache-related
preemption delay among resident tasks, which inflates every *later*
(shorter-period) arrival per Eq. (3) of the paper.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from ..workload.spec import TaskSpec

__all__ = ["ProcessorBin", "Partition"]


class ProcessorBin:
    """One processor's task assignment with exact load accounting."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.tasks: List[TaskSpec] = []
        #: Exact committed utilization (inflated, if an overhead-aware
        #: acceptance test is in use — the test supplies the increments).
        self.load: Fraction = Fraction(0)
        #: Largest D(T) among resident tasks (for Eq. (3) inflation of
        #: subsequently added, shorter-period tasks).
        self.max_cache_delay: int = 0
        #: Smallest period among resident tasks (RM response-time tests).
        self.min_period: Optional[int] = None

    @property
    def spare(self) -> Fraction:
        return Fraction(1) - self.load

    def add(self, spec: TaskSpec, utilization: Fraction) -> None:
        """Commit ``spec`` at the given (possibly inflated) utilization."""
        self.tasks.append(spec)
        self.load += utilization
        if spec.cache_delay > self.max_cache_delay:
            self.max_cache_delay = spec.cache_delay
        if self.min_period is None or spec.period < self.min_period:
            self.min_period = spec.period

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:
        return f"ProcessorBin({self.index}, {len(self.tasks)} tasks, load={self.load})"


class Partition:
    """A complete assignment of tasks to processor bins."""

    def __init__(self) -> None:
        self.bins: List[ProcessorBin] = []

    def new_bin(self) -> ProcessorBin:
        b = ProcessorBin(len(self.bins))
        self.bins.append(b)
        return b

    @property
    def processors(self) -> int:
        return len(self.bins)

    def total_load(self) -> Fraction:
        return sum((b.load for b in self.bins), Fraction(0))

    def bin_of(self, name: str) -> Optional[ProcessorBin]:
        for b in self.bins:
            if any(t.name == name for t in b.tasks):
                return b
        return None

    def __iter__(self):
        return iter(self.bins)

    def __repr__(self) -> str:
        return f"Partition({self.processors} processors, load={self.total_load()})"
