"""Per-processor acceptance tests for partitioning heuristics.

A heuristic needs an oracle: "can this task be added to this processor and
every resident deadline still be met?"  This module provides the tests the
paper discusses:

* :class:`EDFUtilizationTest` — EDF is optimal on one processor, so the
  exact condition is ``sum u <= 1``.
* :class:`EDFOverheadTest` — the same test on Eq.-(3)-inflated costs
  ``e' = e + 2(S_EDF + C) + max_{U in P_T} D(U)``, where ``P_T`` is the set
  of *longer-period* tasks already on the processor.  The Fig. 3/4
  partitioner feeds tasks in decreasing-period order precisely so every
  earlier resident belongs to ``P_T`` and inflation is fixed at admission.
* :class:`RMLiuLaylandTest` — the classic ``U <= n(2^{1/n} - 1)`` bound.
* :class:`RMHyperbolicTest` — Bini–Buttazzo's tighter ``prod(u_i + 1) <= 2``.
* :class:`RMResponseTimeTest` — the exact Joseph–Pandya / Lehoczky
  analysis: the paper notes that using the exact test turns partitioning
  into variable-sized-bin packing (acceptance now depends on the whole bin
  content, not a scalar load), which is one of its arguments for EDF-FF.

Tests are stateless; they read bin contents and return the utilization to
commit so the bin's exact ``load`` stays meaningful.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Optional, Sequence, Tuple

from ..workload.spec import TaskSpec
from .bins import ProcessorBin

__all__ = [
    "AcceptanceTest",
    "EDFUtilizationTest",
    "EDFOverheadTest",
    "RMLiuLaylandTest",
    "RMHyperbolicTest",
    "RMResponseTimeTest",
    "rm_response_time",
]


class _Ratio(NamedTuple):
    """An unnormalised utilization ratio, duck-typed for
    :meth:`ProcessorBin.add` (which only reads numerator/denominator).
    The EDF ``first_fit`` scans return it instead of a :class:`Fraction`
    to skip a gcd per admission; the bin's ``load`` property reduces on
    read, so observable values are unchanged."""

    numerator: int
    denominator: int


class AcceptanceTest:
    """Interface: can ``spec`` join ``bin``, and at what committed load?"""

    #: Scheduling algorithm the test certifies ("edf" or "rm").
    algorithm = "edf"

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        """Return the utilization to commit if acceptable, else ``None``."""
        raise NotImplementedError

    def first_fit(self, bins: Sequence[ProcessorBin], spec: TaskSpec
                  ) -> Optional[Tuple[ProcessorBin, Fraction]]:
        """First admitting bin in scan order, with its committed load.

        Equivalent to probing every bin with :meth:`admit` and taking the
        first hit; the EDF subclasses override it with a single tight loop
        because the first-fit scan is the partitioning hot path.
        """
        for b in bins:
            u = self.admit(b, spec)
            if u is not None:
                return b, u
        return None


class EDFUtilizationTest(AcceptanceTest):
    """Exact EDF test: total utilization at most 1.

    The probe cross-multiplies integers — ``load + e/p <= 1`` iff
    ``load_num * p + e * load_den <= load_den * p`` — so a failed
    admission (the common case while first fit scans full bins) builds no
    :class:`~fractions.Fraction` at all; the exact rational is only
    constructed for the committed load.
    """

    algorithm = "edf"

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        num, den = bin.load_num, bin.load_den
        if num * spec.period + spec.execution * den > den * spec.period:
            return None
        return spec.utilization

    def first_fit(self, bins: Sequence[ProcessorBin], spec: TaskSpec
                  ) -> Optional[Tuple[ProcessorBin, Fraction]]:
        e, p = spec.execution, spec.period
        for b in bins:
            num, den = b.load_num, b.load_den
            if num * p + e * den <= den * p:
                return b, _Ratio(e, p)
        return None


class EDFOverheadTest(AcceptanceTest):
    """EDF test on overhead-inflated costs (Eq. (3), EDF branch).

    ``fixed_inflation`` is the task-independent term ``2(S_EDF + C)`` in
    ticks; the cache term is the bin's current ``max_cache_delay``.

    Correctness requires feeding tasks in *non-increasing period order*
    (asserted): then every task already in the bin has a period at least as
    large as the newcomer's, i.e. is exactly the set ``P_T`` the newcomer
    can preempt, and no later admission retroactively changes an earlier
    task's inflation.
    """

    algorithm = "edf"

    def __init__(self, fixed_inflation: int) -> None:
        if fixed_inflation < 0:
            raise ValueError("inflation must be nonnegative")
        self.fixed_inflation = fixed_inflation

    def inflated_execution(self, bin: ProcessorBin, spec: TaskSpec) -> int:
        return spec.execution + self.fixed_inflation + bin.max_cache_delay

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        # bin.max_period is maintained by ProcessorBin.add, replacing the
        # previous O(|bin|) max() scan on every probe.
        if bin.max_period is not None and spec.period > bin.max_period:
            raise ValueError(
                "EDFOverheadTest requires tasks in non-increasing period order"
            )
        e_prime = spec.execution + self.fixed_inflation + bin.max_cache_delay
        if e_prime > spec.period:
            return None
        # Integer cross-multiplied probe (see EDFUtilizationTest): the
        # Fraction is only built when the admission succeeds.
        num, den = bin.load_num, bin.load_den
        if num * spec.period + e_prime * den > den * spec.period:
            return None
        return Fraction(e_prime, spec.period)

    def first_fit(self, bins: Sequence[ProcessorBin], spec: TaskSpec
                  ) -> Optional[Tuple[ProcessorBin, Fraction]]:
        # The inlined body of admit, once per bin without the method-call
        # overhead — Fig. 3 campaigns spend most of their EDF-side time in
        # exactly this scan.
        e, p = spec.execution, spec.period
        fixed = self.fixed_inflation
        for b in bins:
            if b.max_period is not None and p > b.max_period:
                raise ValueError(
                    "EDFOverheadTest requires tasks in non-increasing "
                    "period order"
                )
            e_prime = e + fixed + b.max_cache_delay
            if e_prime > p:
                continue
            num, den = b.load_num, b.load_den
            if num * p + e_prime * den <= den * p:
                return b, _Ratio(e_prime, p)
        return None


def _ll_bound(n: int) -> float:
    """Liu & Layland's RM bound for n tasks, ``n(2^{1/n} - 1)``."""
    return n * (2.0 ** (1.0 / n) - 1.0)


class RMLiuLaylandTest(AcceptanceTest):
    """RM admission by the Liu–Layland utilization bound (sufficient only).

    Uses a small float tolerance on the irrational bound; the margin is
    conservative (a value within 1e-12 of the bound is rejected).
    """

    algorithm = "rm"

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        u = spec.utilization
        n = len(bin.tasks) + 1
        if float(bin.load + u) <= _ll_bound(n) - 1e-12:
            return u
        return None


class RMHyperbolicTest(AcceptanceTest):
    """RM admission by the hyperbolic bound ``prod(u_i + 1) <= 2`` (exact
    rational arithmetic; tighter than Liu–Layland)."""

    algorithm = "rm"

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        u = spec.utilization
        prod = Fraction(1)
        for t in bin.tasks:
            prod *= t.utilization + 1
        prod *= u + 1
        return u if prod <= 2 else None


def rm_response_time(tasks: List[TaskSpec], which: int) -> Optional[int]:
    """Exact worst-case response time of ``tasks[which]`` under RM.

    Standard fixed-point iteration ``R = e_i + sum_j ceil(R/p_j) e_j`` over
    the strictly higher-priority tasks (shorter periods; period ties broken
    by list order).  Returns ``None`` when the iteration exceeds the
    period (unschedulable).  All integer arithmetic.
    """
    me = tasks[which]
    higher = [t for k, t in enumerate(tasks)
              if t.period < me.period or (t.period == me.period and k < which)]
    r = me.execution
    while True:
        interference = sum(-(-r // t.period) * t.execution for t in higher)
        nxt = me.execution + interference
        if nxt > me.period:
            return None
        if nxt == r:
            return r
        r = nxt


class RMResponseTimeTest(AcceptanceTest):
    """Exact RM admission: every resident task (and the newcomer) passes
    response-time analysis after the addition.

    This is the "exact feasibility test" of Lehoczky et al. the paper
    mentions — strictly more admissive than the bounds, at the cost of
    re-analysing the whole bin per admission (the variable-sized-bin
    effect).
    """

    algorithm = "rm"

    def admit(self, bin: ProcessorBin, spec: TaskSpec) -> Optional[Fraction]:
        candidate = bin.tasks + [spec]
        for i in range(len(candidate)):
            if rm_response_time(candidate, i) is None:
                return None
        return spec.utilization
