"""Checksum-verified retrieval of public Parallel Workloads Archive logs.

Real traces come from the archive as gzipped SWF files; this module
downloads them **only** when the expected SHA-256 is known, and refuses
anything whose bytes do not match.  Two sources of expectations:

* :data:`TRACE_REGISTRY` — the public logs the repo's experiments name
  (archive URL + size class).  Registry entries whose checksum is
  ``None`` *must* be given one explicitly (``repro traces fetch NAME
  --sha256 HEX``): we do not bake in hashes we could not verify from
  this offline build environment, and we never accept an unverified
  download.
* an explicit ``sha256=`` argument — for logs outside the registry.

CI never calls this module: the committed fixture
``tests/data/mini.swf`` covers every test and the smoke jobs.  The
network touch-point is isolated here (and exempt from nothing — the
module is in R002's determinism scope, so no clocks/RNG; urllib is
I/O, which R002 does not police).
"""

from __future__ import annotations

import gzip
import hashlib
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["TraceFetchError", "TraceSource", "TRACE_REGISTRY",
           "sha256_file", "verify_sha256", "fetch_trace"]


class TraceFetchError(RuntimeError):
    """Download refused or failed: unknown trace, missing checksum,
    checksum mismatch, or network error.  Never leaves a partial or
    unverified file at the destination."""


@dataclass(frozen=True)
class TraceSource:
    """One public log: where it lives and what its bytes must hash to.

    ``sha256`` is the digest of the *final* file written to disk (the
    decompressed SWF when ``gzipped``), so verification covers exactly
    what the parser will read.
    """

    name: str
    url: str
    description: str
    gzipped: bool = True
    sha256: Optional[str] = None


#: Public logs the experiments reference.  Checksums are intentionally
#: unset — this build environment is offline, and an unverifiable hash
#: is worse than none — so a fetch requires an explicit ``--sha256``
#: obtained from a trusted channel (the archive publishes them).
TRACE_REGISTRY: Dict[str, TraceSource] = {
    "hpc2n-2002": TraceSource(
        name="hpc2n-2002",
        url=("https://www.cs.huji.ac.il/labs/parallel/workload/"
             "l_hpc2n/HPC2N-2002-2.2-cln.swf.gz"),
        description="HPC2N Linux cluster, 240 procs, 2002-2006 "
                    "(~200k jobs; cleaned v2.2 log)",
    ),
    "sdsc-blue-2000": TraceSource(
        name="sdsc-blue-2000",
        url=("https://www.cs.huji.ac.il/labs/parallel/workload/"
             "l_sdsc_blue/SDSC-BLUE-2000-4.2-cln.swf.gz"),
        description="SDSC Blue Horizon, 1152 procs, 2000-2003 "
                    "(~240k jobs; cleaned v4.2 log)",
    ),
}


def sha256_file(path: Union[str, Path]) -> str:
    """Hex SHA-256 of a file's bytes, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def verify_sha256(path: Union[str, Path], expected: str) -> None:
    """Raise :class:`TraceFetchError` unless ``path`` hashes to
    ``expected`` (case-insensitive hex)."""
    actual = sha256_file(path)
    if actual.lower() != expected.lower():
        raise TraceFetchError(
            f"{path}: SHA-256 mismatch — expected {expected.lower()}, "
            f"got {actual}; refusing the file")


def fetch_trace(name_or_url: str, dest: Union[str, Path], *,
                sha256: Optional[str] = None,
                timeout: float = 60.0) -> Path:
    """Download a trace to ``dest`` and verify it, or die trying.

    ``name_or_url`` is a :data:`TRACE_REGISTRY` key or a raw URL.  The
    checksum is mandatory: from the registry entry when it has one,
    else from ``sha256=`` — with neither, the fetch is refused before
    any network traffic.  Gzipped sources are decompressed; the hash is
    checked against the final on-disk bytes, and a mismatching file is
    deleted, not left behind.  Returns the destination path.
    """
    source = TRACE_REGISTRY.get(name_or_url.lower())
    if source is not None:
        url, gzipped = source.url, source.gzipped
        expected = sha256 or source.sha256
    elif "://" in name_or_url:
        url, gzipped = name_or_url, name_or_url.endswith(".gz")
        expected = sha256
    else:
        known = ", ".join(sorted(TRACE_REGISTRY))
        raise TraceFetchError(f"unknown trace {name_or_url!r} "
                              f"(registry: {known}) and not a URL")
    if not expected:
        raise TraceFetchError(
            f"no SHA-256 known for {name_or_url!r} — pass one "
            f"explicitly (repro traces fetch ... --sha256 HEX); "
            f"unverified downloads are refused")

    dest_path = Path(dest)
    dest_path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            raw = resp.read()
    except OSError as exc:
        raise TraceFetchError(f"download of {url} failed: {exc}") from exc
    if gzipped:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as exc:
            raise TraceFetchError(
                f"{url}: gzip decompression failed: {exc}") from exc

    tmp = dest_path.with_name(dest_path.name + ".part")
    tmp.write_bytes(raw)
    try:
        verify_sha256(tmp, expected)
    except TraceFetchError:
        tmp.unlink(missing_ok=True)
        raise
    tmp.replace(dest_path)
    return dest_path
