"""Standard Workload Format (SWF): strict, stdlib-only parsing.

The SWF is the lingua franca of the Parallel Workloads Archive: one
job per line, 18 whitespace-separated numeric fields, preceded by
header *directives* — comment lines of the form ``; Key: Value``
(``MaxProcs``, ``UnixStartTime``, ...).  A value of ``-1`` marks an
anonymized or unknown field.  The field order is fixed by the format
(v2.2) and mirrored by :data:`FIELD_NAMES`:

====  =====================  =============================================
 #    field                  meaning (all integers, seconds/KB/ids)
====  =====================  =============================================
 1    job_id                 job number, usually counting from 1
 2    submit_time            arrival, seconds since the log's start
 3    wait_time              queue wait in seconds
 4    run_time               actual runtime in seconds
 5    used_procs             processors actually allocated
 6    avg_cpu_time           average per-processor CPU seconds
 7    used_memory            average per-processor memory (KB)
 8    req_procs              processors requested
 9    req_time               requested/estimated runtime in seconds
10    req_memory             requested memory per processor (KB)
11    status                 1 completed, 0 failed, 5 cancelled, ...
12    user_id                anonymized submitting user
13    group_id               anonymized group
14    executable             anonymized application id
15    queue                  queue/class number
16    partition              partition number
17    preceding_job          dependency: job this one waited for
18    think_time             seconds between that job's end and submit
====  =====================  =============================================

Everything here is pure, deterministic machinery — no clocks, no RNG,
no environment reads (staticcheck R002 covers ``traces``): text in,
typed :class:`SWFJob`/:class:`SWFLog` records out, with pointed
:class:`SWFError` diagnostics (``path:line: field N (name): ...``) on
malformed input.  ``strict=True`` (the default) accepts only integral
values; ``strict=False`` additionally rounds the fractional seconds
some archive logs carry in the time fields.  :func:`serialize_swf` is
the exact inverse on parsed data: ``parse(serialize(parse(text))) ==
parse(text)`` (the hypothesis round-trip in ``tests/test_traces.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

__all__ = ["FIELD_NAMES", "SWFError", "SWFJob", "SWFLog",
           "parse_swf", "parse_swf_text", "serialize_swf"]

#: The 18 record fields, in on-disk column order (SWF v2.2).
FIELD_NAMES = (
    "job_id", "submit_time", "wait_time", "run_time", "used_procs",
    "avg_cpu_time", "used_memory", "req_procs", "req_time", "req_memory",
    "status", "user_id", "group_id", "executable", "queue", "partition",
    "preceding_job", "think_time",
)


class SWFError(ValueError):
    """A log line violates the Standard Workload Format.  The message
    always carries ``path:line`` and, for field errors, the 1-based
    column and field name, so archive-sized logs stay debuggable."""


@dataclass(frozen=True, slots=True)
class SWFJob:
    """One job record — the 18 SWF fields, as plain integers.

    ``-1`` anywhere means "anonymized/unknown" per the format; nothing
    here interprets the fields (that is :mod:`repro.traces.mapping`'s
    job), so a parsed log is a lossless, typed view of the file.
    """

    job_id: int
    submit_time: int
    wait_time: int
    run_time: int
    used_procs: int
    avg_cpu_time: int
    used_memory: int
    req_procs: int
    req_time: int
    req_memory: int
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: int

    def to_fields(self) -> Tuple[int, ...]:
        """The record as its 18 on-disk columns, in order."""
        return tuple(getattr(self, f.name) for f in fields(self))

    @classmethod
    def from_fields(cls, values: Tuple[int, ...]) -> "SWFJob":
        """Rebuild a record from its column tuple (inverse of
        :meth:`to_fields`)."""
        if len(values) != len(FIELD_NAMES):
            raise ValueError(f"an SWF record has {len(FIELD_NAMES)} "
                             f"fields, got {len(values)}")
        return cls(*[int(v) for v in values])

    def to_line(self) -> str:
        """The record as one canonical (single-space) SWF line."""
        return " ".join(str(v) for v in self.to_fields())


@dataclass(frozen=True)
class SWFLog:
    """A parsed log: header directives (in file order) plus job records.

    ``directives`` preserves every ``;`` header line as a ``(key,
    value)`` pair — ``("MaxProcs", "240")`` for ``; MaxProcs: 240``,
    and ``("", text)`` for bare comments without a colon.  ``name`` is
    provenance only (the parsed path) and excluded from equality so the
    round-trip identity is about *content*.
    """

    directives: Tuple[Tuple[str, str], ...] = ()
    jobs: Tuple[SWFJob, ...] = ()
    name: str = field(default="<swf>", compare=False)

    def directive(self, key: str) -> Optional[str]:
        """The last value of a header directive, matched
        case-insensitively (``MaxProcs`` vs ``maxprocs`` drift exists
        in the wild); ``None`` when absent."""
        want = key.lower()
        found: Optional[str] = None
        for k, v in self.directives:
            if k.lower() == want:
                found = v
        return found

    def _int_directive(self, key: str) -> Optional[int]:
        raw = self.directive(key)
        if raw is None:
            return None
        try:
            return int(raw.split()[0])
        except (ValueError, IndexError):
            return None

    @property
    def max_procs(self) -> Optional[int]:
        """The machine size from the ``MaxProcs`` header (``None`` when
        the log does not declare one — see :func:`repro.traces.mapping.
        machine_size` for the observed-width fallback)."""
        value = self._int_directive("MaxProcs")
        return value if value is not None and value > 0 else None

    @property
    def unix_start_time(self) -> Optional[int]:
        """The log's epoch (``UnixStartTime`` header), when declared."""
        return self._int_directive("UnixStartTime")

    def span_seconds(self) -> int:
        """Seconds from the first submit to the last (0 when empty)."""
        if not self.jobs:
            return 0
        submits = [j.submit_time for j in self.jobs]
        return max(submits) - min(submits)


def _parse_field(token: str, index: int, *, where: str,
                 strict: bool) -> int:
    """One numeric column, with the format's integer discipline."""
    try:
        return int(token)
    except ValueError:
        pass
    try:
        value = float(token)
    except ValueError:
        raise SWFError(f"{where}: field {index + 1} "
                       f"({FIELD_NAMES[index]}) is not a number: "
                       f"{token!r}") from None
    if not math.isfinite(value):
        raise SWFError(f"{where}: field {index + 1} "
                       f"({FIELD_NAMES[index]}) is not finite: {token!r}")
    if value != int(value):
        if strict:
            raise SWFError(
                f"{where}: field {index + 1} ({FIELD_NAMES[index]}) has "
                f"fractional seconds ({token!r}); some archive logs do "
                f"— re-parse with strict=False to round to whole "
                f"seconds")
        return round(value)
    return int(value)


def _parse_directive(line: str) -> Tuple[str, str]:
    """``"; Key: Value"`` → ``("Key", "Value")``; bare comments keep an
    empty key.  (A bare comment containing a colon is indistinguishable
    from a directive and re-parses as one — parsed logs are already
    canonical, so the round-trip identity is unaffected.)"""
    body = line.lstrip(";").strip()
    key, sep, value = body.partition(":")
    if not sep:
        return ("", body)
    return (key.strip(), value.strip())


def _iter_lines(text: str) -> Iterator[Tuple[int, str]]:
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if line:
            yield lineno, line


def parse_swf_text(text: str, *, name: str = "<swf>",
                   strict: bool = True) -> SWFLog:
    """Parse SWF text into a typed :class:`SWFLog`.

    Header directives may only precede the first job record (the format
    puts all ``;`` lines up front; a stray comment between records is a
    malformed log and is reported as one).  Raises :class:`SWFError`
    with ``name:line`` context on any violation.
    """
    directives: list[Tuple[str, str]] = []
    jobs: list[SWFJob] = []
    for lineno, line in _iter_lines(text):
        if line.startswith(";"):
            if jobs:
                raise SWFError(
                    f"{name}:{lineno}: header directive after the first "
                    f"job record — SWF headers must precede all jobs")
            directives.append(_parse_directive(line))
            continue
        tokens = line.split()
        if len(tokens) != len(FIELD_NAMES):
            raise SWFError(
                f"{name}:{lineno}: expected {len(FIELD_NAMES)} fields "
                f"(SWF v2.2 job record), got {len(tokens)}")
        where = f"{name}:{lineno}"
        jobs.append(SWFJob.from_fields(tuple(
            _parse_field(tok, i, where=where, strict=strict)
            for i, tok in enumerate(tokens))))
    return SWFLog(directives=tuple(directives), jobs=tuple(jobs),
                  name=name)


def parse_swf(path: Union[str, Path], *, strict: bool = True) -> SWFLog:
    """Parse an SWF file from disk (see :func:`parse_swf_text`)."""
    p = Path(path)
    return parse_swf_text(p.read_text(encoding="utf-8", errors="strict"),
                          name=str(p), strict=strict)


def serialize_swf(log: SWFLog) -> str:
    """The log as canonical SWF text: ``; Key: Value`` headers in
    order, then one single-space job line per record, trailing newline.
    ``parse_swf_text(serialize_swf(log)) == log`` for any parsed log."""
    lines: list[str] = []
    for key, value in log.directives:
        if key:
            lines.append(f"; {key}: {value}" if value else f"; {key}:")
        else:
            lines.append(f"; {value}" if value else ";")
    lines.extend(job.to_line() for job in log.jobs)
    return "\n".join(lines) + ("\n" if lines else "")
