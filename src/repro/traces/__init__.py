"""Real workload traces: SWF ingestion, job→task mapping, replay.

The package that connects the repo's synthetic Monte-Carlo machinery to
the Parallel Workloads Archive's reality (ROADMAP item 2):

* :mod:`.swf` — strict, stdlib-only Standard Workload Format parser
  (typed :class:`~repro.traces.swf.SWFJob`/:class:`~repro.traces.swf.
  SWFLog`, canonical serializer, round-trip identity);
* :mod:`.mapping` — deterministic, exact-rational job→:class:`~repro.
  workload.spec.TaskSpec` conversion policies and trace windowing;
* :mod:`.replay` — trace-replay campaigns on the stock checkpointed,
  distributable shard engine (:class:`~repro.traces.replay.TraceGrid`);
* :mod:`.fetch` — checksum-verified retrieval of public archive logs
  (the one module here that touches the network; CI never does).

See ``docs/TRACES.md`` for the format, the mapping policies, and a
worked example.
"""

from .mapping import (MAPPING_POLICIES, MappingConfig, TraceMappingError,
                      machine_size, map_job, map_jobs, scale_to_utilization,
                      segment_log, window_jobs)
from .replay import (TraceGrid, TraceWindowPayload, assemble_trace_rows,
                     build_window_payloads, evaluate_trace_shard,
                     run_trace_campaign)
from .swf import (FIELD_NAMES, SWFError, SWFJob, SWFLog, parse_swf,
                  parse_swf_text, serialize_swf)

__all__ = [
    "FIELD_NAMES", "SWFError", "SWFJob", "SWFLog",
    "parse_swf", "parse_swf_text", "serialize_swf",
    "MAPPING_POLICIES", "MappingConfig", "TraceMappingError",
    "machine_size", "map_job", "map_jobs", "scale_to_utilization",
    "segment_log", "window_jobs",
    "TraceGrid", "TraceWindowPayload", "assemble_trace_rows",
    "build_window_payloads", "evaluate_trace_shard", "run_trace_campaign",
]
