"""Trace-replay campaigns: real SWF windows through the shard engine.

A synthetic campaign samples task sets from the paper's uniform
distributions; a *trace-replay* campaign draws them from a real log
instead.  The pipeline:

1. the trace is parsed and cut into windows
   (:func:`~repro.traces.mapping.window_jobs`), each window's jobs
   mapped once — deterministically — into a pool of
   :class:`~repro.workload.spec.TaskSpec`\\ s
   (:class:`TraceWindowPayload`);
2. a :class:`TraceGrid` decomposes (window × utilization) points into
   the **same** :class:`~repro.campaign.spec.ShardSpec` records the
   synthetic planner emits — same id scheme, same seed strides — so
   the whole PR-5/PR-6 stack (checkpoints, resume, status, worker
   fleets) runs unchanged;
3. :func:`evaluate_trace_shard` is the picklable worker: it subsamples
   ``n_tasks`` specs from the window pool with the shard's seeded RNG,
   rescales the subsample to the shard's target utilization (periods —
   the trace's shape — untouched), and pushes it through the standard
   ``evaluate_task_set``.  Checkpoints therefore hold ordinary
   :class:`~repro.analysis.schedulability.SchedulabilityPoint` records
   and the resume guarantee is inherited, not re-proven.

Seeding follows docs/DETERMINISM.md to the letter: the only RNG is
``default_rng(shard seed)``, and shard seeds come from the campaign
planner's pure arithmetic — no clock, no global RNG, nothing
order-dependent.  Running a trace campaign twice, or killing it and
resuming, yields byte-identical results (the crash/resume test in
``tests/test_trace_campaign.py`` asserts exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..analysis.experiments import CampaignRow
from ..analysis.persistence import save_campaign
from ..analysis.schedulability import SchedulabilityPoint, evaluate_task_set
from ..analysis.stats import summarize
from ..campaign.checkpoint import CheckpointStore
from ..campaign.runner import CampaignRunner, RunnerConfig
from ..campaign.spec import (POINT_SEED_STRIDE, REPLICA_SEED_STRIDE,
                             ShardSpec, _replica_sets)
from ..overheads.model import OverheadModel
from ..workload.spec import TaskSpec
from .fetch import sha256_file
from .mapping import MappingConfig, machine_size, map_jobs, \
    scale_to_utilization, window_jobs
from .swf import SWFLog, parse_swf

__all__ = ["TRACE_GRID_KIND", "TraceGrid", "TraceWindowPayload",
           "build_window_payloads", "evaluate_trace_shard",
           "assemble_trace_rows", "run_trace_campaign"]

#: Manifest tag distinguishing trace-replay manifests from synthetic
#: ones (``CheckpointStore.load_grid`` refuses grids carrying a kind).
TRACE_GRID_KIND = "trace-replay"


@dataclass(frozen=True)
class TraceGrid:
    """A trace-replay campaign: (window × utilization) grid over one log.

    Pure data, like :class:`~repro.campaign.spec.CampaignGrid`, and
    :class:`~repro.campaign.spec.GridLike`: ``plan()`` decomposes the
    grid into ordinary shards with the historical seed strides, point
    index running window-major (all utilizations of window 0, then
    window 1, ...).  ``trace_sha256`` pins the input: resume refuses a
    trace file whose bytes changed under the run directory.
    """

    trace_name: str
    trace_sha256: str
    window_seconds: int
    window_offsets: Tuple[int, ...]
    utilizations: Tuple[float, ...]
    n_tasks: int
    sets_per_point: int = 50
    seed: int = 0
    replicas: int = 1
    mapping: MappingConfig = field(default_factory=MappingConfig)

    def __post_init__(self) -> None:
        if self.window_seconds < 1:
            raise ValueError("window_seconds must be positive")
        if not self.window_offsets:
            raise ValueError("a trace campaign needs at least one window")
        if not self.utilizations:
            raise ValueError("a trace campaign needs at least one "
                             "utilization point")
        if any(o < 0 for o in self.window_offsets):
            raise ValueError("window offsets must be nonnegative")
        if len(set(self.window_offsets)) != len(self.window_offsets):
            raise ValueError("window offsets must be distinct")
        if self.n_tasks < 1:
            raise ValueError(f"n_tasks must be positive, got {self.n_tasks}")
        if self.sets_per_point < 1:
            raise ValueError("sets_per_point must be positive")
        if not 1 <= self.replicas <= self.sets_per_point:
            raise ValueError(
                f"replicas must be in [1, sets_per_point], got "
                f"{self.replicas} (sets_per_point={self.sets_per_point})")
        object.__setattr__(self, "window_offsets",
                           tuple(int(o) for o in self.window_offsets))
        object.__setattr__(self, "utilizations",
                           tuple(float(u) for u in self.utilizations))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, stored verbatim in a run's manifest."""
        return {
            "kind": TRACE_GRID_KIND,
            "trace_name": self.trace_name,
            "trace_sha256": self.trace_sha256,
            "window_seconds": self.window_seconds,
            "window_offsets": list(self.window_offsets),
            "utilizations": list(self.utilizations),
            "n_tasks": self.n_tasks,
            "sets_per_point": self.sets_per_point,
            "seed": self.seed,
            "replicas": self.replicas,
            "mapping": self.mapping.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceGrid":
        """Rebuild a grid from its manifest form."""
        if data.get("kind") != TRACE_GRID_KIND:
            raise ValueError(f"not a {TRACE_GRID_KIND} grid: "
                             f"kind={data.get('kind')!r}")
        return cls(trace_name=data["trace_name"],
                   trace_sha256=data["trace_sha256"],
                   window_seconds=data["window_seconds"],
                   window_offsets=tuple(data["window_offsets"]),
                   utilizations=tuple(data["utilizations"]),
                   n_tasks=data["n_tasks"],
                   sets_per_point=data["sets_per_point"],
                   seed=data["seed"],
                   replicas=data.get("replicas", 1),
                   mapping=MappingConfig.from_dict(data["mapping"]))

    def window_of(self, point_index: int) -> int:
        """The window index owning a planner point (window-major)."""
        return point_index // len(self.utilizations)

    def plan(self) -> List[ShardSpec]:
        """The full ordered shard list — identical id scheme and seed
        arithmetic as the synthetic planner, points window-major."""
        shards: List[ShardSpec] = []
        splits = _replica_sets(self.sets_per_point, self.replicas)
        k = 0
        for _offset in self.window_offsets:
            for u in self.utilizations:
                point_seed = self.seed + POINT_SEED_STRIDE * k
                for r, sets in enumerate(splits):
                    shards.append(ShardSpec(
                        shard_id=f"p{k:04d}r{r:03d}",
                        point_index=k,
                        replica_index=r,
                        n_tasks=self.n_tasks,
                        utilization=u,
                        sets=sets,
                        seed=point_seed + REPLICA_SEED_STRIDE * r,
                    ))
                k += 1
        return shards


@dataclass(frozen=True)
class TraceWindowPayload:
    """One window's mapped task pool, in wire-friendly form.

    ``tasks`` holds ``(name, execution, period, cache_delay)`` tuples —
    plain ints and strings so the payload pickles for the process pool
    and JSON-encodes for the distrib wire without custom codecs.
    """

    window_offset: int
    tasks: Tuple[Tuple[str, int, int, int], ...]

    def specs(self) -> List[TaskSpec]:
        """The pool as :class:`TaskSpec` records."""
        return [TaskSpec(execution=e, period=p, name=n, cache_delay=d)
                for n, e, p, d in self.tasks]

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready form for the distrib ``run`` frame."""
        return {"window_offset": self.window_offset,
                "tasks": [list(t) for t in self.tasks]}

    @classmethod
    def from_wire(cls, data: Any) -> "TraceWindowPayload":
        """Decode a wire payload; raises ``ValueError`` on junk (the
        worker maps that to a protocol error, mirroring shard decode)."""
        if not isinstance(data, dict):
            raise ValueError(f"trace payload must be an object, got "
                             f"{type(data).__name__}")
        try:
            offset = int(data["window_offset"])
            tasks = tuple(
                (str(t[0]), int(t[1]), int(t[2]), int(t[3]))
                for t in data["tasks"])
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ValueError(f"malformed trace payload: {exc}") from exc
        return cls(window_offset=offset, tasks=tasks)


def build_window_payloads(log: SWFLog, grid: TraceGrid
                          ) -> Tuple[Dict[str, TraceWindowPayload],
                                     List[Tuple[int, str]]]:
    """Map every grid window once; key the payloads by shard id.

    Returns ``(payloads, rejected)`` — ``rejected`` aggregates the
    degenerate jobs skipped across windows (real logs carry failed
    records with ``run_time`` 0; see the satellite-fix contract in
    :func:`~repro.traces.mapping.map_job`).  A window with *no*
    mappable jobs is an error: a shard cannot subsample an empty pool.
    """
    max_procs = machine_size(log, grid.mapping)
    per_window: List[TraceWindowPayload] = []
    rejected: List[Tuple[int, str]] = []
    for offset in grid.window_offsets:
        jobs = window_jobs(log, offset, grid.window_seconds)
        specs, bad = map_jobs(jobs, grid.mapping, max_procs=max_procs,
                              on_invalid="skip")
        rejected.extend(bad)
        if not specs:
            raise ValueError(
                f"{log.name}: window at offset {offset}s "
                f"(width {grid.window_seconds}s) has no mappable jobs "
                f"— {len(jobs)} record(s), all degenerate or absent; "
                f"pick another offset or widen the window")
        per_window.append(TraceWindowPayload(
            window_offset=offset,
            tasks=tuple((s.name, s.execution, s.period, s.cache_delay)
                        for s in specs)))
    payloads = {shard.shard_id: per_window[grid.window_of(shard.point_index)]
                for shard in grid.plan()}
    return payloads, rejected


def evaluate_trace_shard(
    args: Tuple[ShardSpec, Optional[OverheadModel],
                Union[TraceWindowPayload, Dict[str, Any]]]
) -> List[SchedulabilityPoint]:
    """Worker for one trace shard — module-level so it pickles.

    Each of the shard's ``sets`` samples is a seeded subsample of the
    window pool (``n_tasks`` specs without replacement, kept in pool
    order), rescaled exactly to the shard's target total utilization.
    The only randomness is ``default_rng(spec.seed)``, and the seed is
    planner arithmetic — same shard, same points, on any worker, any
    run, any resume.  Pools smaller than ``n_tasks`` are used whole
    (every sample identical — the window simply has that many jobs).
    """
    spec, model, payload = args
    if model is None:
        model = OverheadModel()
    if not isinstance(payload, TraceWindowPayload):
        payload = TraceWindowPayload.from_wire(payload)
    base = payload.specs()
    rng = np.random.default_rng(spec.seed)
    points: List[SchedulabilityPoint] = []
    for _ in range(spec.sets):
        if len(base) > spec.n_tasks:
            picked = sorted(rng.choice(len(base), size=spec.n_tasks,
                                       replace=False).tolist())
            chosen = [base[i] for i in picked]
        else:
            chosen = list(base)
        scaled = scale_to_utilization(chosen, spec.utilization)
        points.append(evaluate_task_set(scaled, model))
    return points


def assemble_trace_rows(grid: TraceGrid,
                        results: Mapping[str, List[SchedulabilityPoint]],
                        progress: Optional[Callable[[str], None]] = None
                        ) -> List[CampaignRow]:
    """Aggregate shard points into rows, window-major point order.

    Same statistics code as the synthetic assembler — replicas
    concatenate in replica order, never completion order — with one row
    per (window, utilization) point.  Group rows back into windows with
    ``len(grid.utilizations)``-sized slices (the CLI does, per figure).
    """
    by_point: Dict[int, List[ShardSpec]] = {}
    for shard in grid.plan():
        by_point.setdefault(shard.point_index, []).append(shard)
    rows: List[CampaignRow] = []
    for k in sorted(by_point):
        u = grid.utilizations[k % len(grid.utilizations)]
        offset = grid.window_offsets[grid.window_of(k)]
        points: List[SchedulabilityPoint] = []
        for shard in sorted(by_point[k], key=lambda s: s.replica_index):
            points.extend(results[shard.shard_id])
        if progress is not None:
            progress(f"window@{offset}s U={u:.2f}: "
                     f"{len(points)} sets evaluated")
        m_pd2 = [p.m_pd2 for p in points if p.m_pd2 is not None]
        m_ff = [p.m_ff for p in points if p.m_ff is not None]
        lp = [p.loss_pfair for p in points if p.loss_pfair is not None]
        le = [p.loss_edf for p in points if p.loss_edf is not None]
        lf = [p.loss_ff for p in points if p.loss_ff is not None]
        rows.append(CampaignRow(
            n_tasks=grid.n_tasks,
            utilization=u,
            mean_utilization=u / grid.n_tasks,
            m_pd2=summarize(m_pd2 or [float("nan")]),
            m_ff=summarize(m_ff or [float("nan")]),
            loss_pfair=summarize(lp or [float("nan")]),
            loss_edf=summarize(le or [float("nan")]),
            loss_ff=summarize(lf or [float("nan")]),
            infeasible_pd2=sum(1 for p in points if p.m_pd2 is None),
            infeasible_ff=sum(1 for p in points if p.m_ff is None),
        ))
    return rows


def run_trace_campaign(
    trace_path: Union[str, Path],
    *,
    window_seconds: int = 3600,
    window_offsets: Sequence[int] = (0,),
    utilizations: Sequence[float] = (),
    n_tasks: int = 0,
    sets_per_point: int = 50,
    seed: int = 0,
    mapping: Optional[MappingConfig] = None,
    model: Optional[OverheadModel] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    replicas: int = 1,
    run_dir: Optional[str] = None,
    resume: bool = False,
    config: Optional[RunnerConfig] = None,
    grid: Optional[TraceGrid] = None,
    evaluator: Optional[Callable[[Any], List[SchedulabilityPoint]]] = None,
) -> List[CampaignRow]:
    """Run (or resume) a trace-replay campaign end to end.

    The trace file is hashed before anything else; with an explicit
    ``grid`` (the resume path — rebuilt from the run's manifest) the
    hash must match the grid's pinned ``trace_sha256``, so a resumed
    run can never silently mix windows from a modified log.  Fresh runs
    pin the hash into the new grid.  Everything else — checkpointing,
    retry, worker pools, status files — is the stock campaign engine
    with trace payloads riding along.

    Lenient parsing (``strict=False``) is deliberate here: archive logs
    carry fractional seconds, and the driver is where real files enter.
    The strict default stays on the library parser.
    """
    path = Path(trace_path)
    digest = sha256_file(path)
    if grid is None:
        grid = TraceGrid(trace_name=path.name, trace_sha256=digest,
                         window_seconds=window_seconds,
                         window_offsets=tuple(window_offsets),
                         utilizations=tuple(utilizations),
                         n_tasks=n_tasks, sets_per_point=sets_per_point,
                         seed=seed, replicas=replicas,
                         mapping=mapping or MappingConfig())
    elif digest != grid.trace_sha256:
        raise ValueError(
            f"{path}: SHA-256 {digest} does not match the campaign's "
            f"pinned trace {grid.trace_sha256} ({grid.trace_name}) — "
            f"the log changed since the run started; resume needs the "
            f"original file")

    log = parse_swf(path, strict=False)
    payloads, rejected = build_window_payloads(log, grid)
    if rejected and progress is not None:
        progress(f"skipped {len(rejected)} degenerate job(s) "
                 f"(zero runtime / unusable width)")

    store = CheckpointStore(run_dir) if run_dir is not None else None
    cfg = config if config is not None else RunnerConfig(workers=workers)
    runner = CampaignRunner(grid, evaluator or evaluate_trace_shard,
                            config=cfg, store=store, model=model,
                            payloads=payloads,
                            note=f"trace-replay {grid.trace_name}")
    results = runner.run(resume=resume)
    rows = assemble_trace_rows(grid, results, progress=progress)
    if store is not None:
        save_campaign(store.result_path(), rows, seed=grid.seed,
                      sets_per_point=grid.sets_per_point,
                      note=f"trace-replay {grid.trace_name} "
                           f"({len(grid.window_offsets)} window(s) x "
                           f"{len(grid.utilizations)} points, "
                           f"window={grid.window_seconds}s)")
    return rows
