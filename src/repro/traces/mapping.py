"""Deterministic SWF job → :class:`TaskSpec` conversion and windowing.

A trace job is three numbers that matter to a fair scheduler: when it
arrived (``submit_time``), how long it ran (``run_time``), and how wide
it was (``req_procs`` on an ``M``-processor machine).  The policies
here turn those into sporadic task parameters with **exact rational
weights** — a job that asked for ``req`` of ``M`` processors becomes a
task of weight ``Fraction(req, M)``, never a rounded float, so the
downstream inflation and Eq. (2) feasibility arithmetic stays exact
(staticcheck R001's contract).

Two period policies, selected by :class:`MappingConfig`:

* ``"runtime"`` (default) — the period encodes the job's *runtime
  scale*: ``period = clamp(run_time · ticks_per_second)``, aligned up
  to the quantum and clamped to the generator's period range, then
  ``execution = round(weight · period)``.  Long jobs become
  long-period tasks, so the heavy-tailed runtime distributions of real
  logs survive into the task set (the shape axis the synthetic
  samplers never produce).
* ``"interarrival"`` — the period encodes the *arrival process*
  instead: the gap to the next submission in the window (bursty
  arrivals → clusters of short-period tasks), falling back to the
  runtime policy for the window's last job.

Clamping into ``[min_period, max_period]`` is not cosmetic: the
defaults equal :class:`~repro.workload.generator.TaskSetGenerator`'s
range, which is what staticcheck R004 proves safe against the packed
key-tab bit fields — trace-derived tasks must not widen it.

Everything is pure integer/:class:`~fractions.Fraction` arithmetic —
no clock, no RNG, no environment (R002 scope) — so mapping the same
window twice yields identical specs, which is what lets trace-replay
shards resume byte-identically.  The per-task cache-affinity delay
``D(T)`` is derived deterministically from the job id
(``job_id % (cache_delay_max + 1)``), spanning the paper's 0–100 µs
range without consuming randomness.

Degenerate jobs are **rejected, not propagated**: zero/negative
runtime, a fully anonymized processor request, or a request wider than
the machine would put a weight of 0 or > 1 into ``pd2_inflate_set``
and poison every feasibility answer downstream.  :func:`map_job`
raises :class:`TraceMappingError` naming the job and the reason;
:func:`map_jobs` can instead skip-and-report (``on_invalid="skip"``)
for real logs, where failed and cancelled jobs are routine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..workload.spec import TaskSpec
from .swf import SWFJob, SWFLog

__all__ = ["MAPPING_POLICIES", "MappingConfig", "TraceMappingError",
           "machine_size", "job_weight", "map_job", "map_jobs",
           "window_jobs", "segment_log", "scale_to_utilization"]

#: Period policies :func:`map_job` understands (see the module
#: docstring for semantics).
MAPPING_POLICIES = ("runtime", "interarrival")


class TraceMappingError(ValueError):
    """A job cannot form a sane sporadic task (degenerate runtime,
    anonymized width, or weight > 1).  The message always names the
    job id and the offending fields."""


@dataclass(frozen=True)
class MappingConfig:
    """The deterministic knobs of one job→task conversion.

    ``ticks_per_second`` sets the time compression: 1000 maps one
    trace second to one 1000-tick (= 1 ms-quantum) period unit, so an
    hour-long job lands near the generator's 5 s period ceiling.
    ``max_procs`` overrides the log's machine size (``None`` = use the
    ``MaxProcs`` header, falling back to the widest observed request).
    """

    policy: str = "runtime"
    quantum: int = 1000
    min_period: int = 50_000
    max_period: int = 5_000_000
    ticks_per_second: int = 1000
    cache_delay_max: int = 100
    max_procs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in MAPPING_POLICIES:
            raise ValueError(f"unknown mapping policy {self.policy!r}; "
                             f"options: {list(MAPPING_POLICIES)}")
        if self.quantum < 1:
            raise ValueError("quantum must be positive")
        if not 0 < self.min_period <= self.max_period:
            raise ValueError("need 0 < min_period <= max_period")
        if self.min_period % self.quantum or self.max_period % self.quantum:
            raise ValueError("min_period and max_period must be quantum "
                             "multiples (Pfair quantisation)")
        if self.ticks_per_second < 1:
            raise ValueError("ticks_per_second must be positive")
        if self.cache_delay_max < 0:
            raise ValueError("cache_delay_max must be nonnegative")
        if self.max_procs is not None and self.max_procs < 1:
            raise ValueError("max_procs must be positive when set")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, embedded in a trace campaign's manifest."""
        return {
            "policy": self.policy,
            "quantum": self.quantum,
            "min_period": self.min_period,
            "max_period": self.max_period,
            "ticks_per_second": self.ticks_per_second,
            "cache_delay_max": self.cache_delay_max,
            "max_procs": self.max_procs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MappingConfig":
        """Rebuild a config from its manifest form."""
        return cls(policy=data["policy"], quantum=data["quantum"],
                   min_period=data["min_period"],
                   max_period=data["max_period"],
                   ticks_per_second=data["ticks_per_second"],
                   cache_delay_max=data.get("cache_delay_max", 100),
                   max_procs=data.get("max_procs"))


def machine_size(log: SWFLog, config: Optional[MappingConfig] = None
                 ) -> int:
    """The processor count weights are taken against: the config
    override, else the log's ``MaxProcs`` header, else the widest
    processor figure any job shows (request or allocation)."""
    if config is not None and config.max_procs is not None:
        return config.max_procs
    if log.max_procs is not None:
        return log.max_procs
    widest = max((max(j.req_procs, j.used_procs) for j in log.jobs),
                 default=0)
    if widest < 1:
        raise TraceMappingError(
            "cannot infer the machine size: no MaxProcs header and no "
            "job carries a positive processor figure — set "
            "MappingConfig.max_procs explicitly")
    return widest


def job_weight(job: SWFJob, max_procs: int) -> Fraction:
    """The job's exact share of the machine: ``req_procs / max_procs``
    (falling back to the allocation when the request is anonymized).

    Raises :class:`TraceMappingError` on degenerate widths — a weight
    of 0 or > 1 must never reach ``pd2_inflate_set``.
    """
    if max_procs < 1:
        raise TraceMappingError(f"machine size must be positive, got "
                                f"{max_procs}")
    procs = job.req_procs if job.req_procs > 0 else job.used_procs
    if procs < 1:
        raise TraceMappingError(
            f"job {job.job_id}: no usable processor count "
            f"(req_procs={job.req_procs}, used_procs={job.used_procs} "
            f"are both anonymized/zero) — cannot form a task weight")
    if procs > max_procs:
        raise TraceMappingError(
            f"job {job.job_id}: requests {procs} processors on a "
            f"{max_procs}-processor machine — weight "
            f"{procs}/{max_procs} > 1 would poison pd2_inflate_set; "
            f"fix MaxProcs or drop the job")
    return Fraction(procs, max_procs)


def _clamp_period(raw_ticks: int, config: MappingConfig) -> int:
    """Clamp into the safe period range, aligned **up** to the quantum
    (rounding down could fall below ``min_period``)."""
    q = config.quantum
    aligned = ((max(raw_ticks, 1) + q - 1) // q) * q
    return min(max(aligned, config.min_period), config.max_period)


def map_job(job: SWFJob, config: MappingConfig, max_procs: int, *,
            next_submit: Optional[int] = None) -> TaskSpec:
    """One job as a sporadic :class:`TaskSpec` under ``config``.

    ``next_submit`` feeds the ``"interarrival"`` policy (the following
    job's submit time within the window); the runtime policy ignores
    it.  Raises :class:`TraceMappingError` on jobs that cannot form a
    sane task — zero/negative runtime, anonymized width, weight > 1.
    """
    if job.run_time <= 0:
        raise TraceMappingError(
            f"job {job.job_id}: zero/negative run_time "
            f"({job.run_time} s, status={job.status}) cannot form an "
            f"execution cost — failed/cancelled records must be "
            f"filtered before mapping")
    weight = job_weight(job, max_procs)
    if config.policy == "interarrival" and next_submit is not None \
            and next_submit > job.submit_time:
        raw = (next_submit - job.submit_time) * config.ticks_per_second
    else:
        raw = job.run_time * config.ticks_per_second
    period = _clamp_period(raw, config)
    execution = min(period, max(1, round(weight * period)))
    return TaskSpec(
        execution=execution,
        period=period,
        name=f"J{job.job_id}",
        cache_delay=job.job_id % (config.cache_delay_max + 1),
    )


def map_jobs(jobs: Sequence[SWFJob], config: MappingConfig, *,
             max_procs: int, on_invalid: str = "raise"
             ) -> Tuple[List[TaskSpec], List[Tuple[int, str]]]:
    """Map a window's jobs in deterministic (submit, job_id) order.

    Returns ``(specs, rejected)`` where ``rejected`` lists ``(job_id,
    reason)`` for every degenerate record.  ``on_invalid="raise"`` (the
    default) turns the first rejection into the error itself;
    ``"skip"`` drops degenerate jobs and reports them — the trace-replay
    driver's mode, since real logs routinely contain failed jobs with
    ``run_time`` 0.
    """
    if on_invalid not in ("raise", "skip"):
        raise ValueError(f"on_invalid must be 'raise' or 'skip', got "
                         f"{on_invalid!r}")
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    specs: List[TaskSpec] = []
    rejected: List[Tuple[int, str]] = []
    for i, job in enumerate(ordered):
        nxt = ordered[i + 1].submit_time if i + 1 < len(ordered) else None
        try:
            specs.append(map_job(job, config, max_procs,
                                 next_submit=nxt))
        except TraceMappingError as exc:
            if on_invalid == "raise":
                raise
            rejected.append((job.job_id, str(exc)))
    return specs, rejected


def window_jobs(log: SWFLog, offset_seconds: int,
                width_seconds: int) -> List[SWFJob]:
    """The jobs submitted in ``[offset, offset + width)`` seconds after
    the log's first submission, in (submit, job_id) order."""
    if width_seconds < 1:
        raise ValueError("window width must be positive")
    if offset_seconds < 0:
        raise ValueError("window offset must be nonnegative")
    if not log.jobs:
        return []
    t0 = min(j.submit_time for j in log.jobs)
    lo = t0 + offset_seconds
    hi = lo + width_seconds
    return sorted((j for j in log.jobs if lo <= j.submit_time < hi),
                  key=lambda j: (j.submit_time, j.job_id))


def segment_log(log: SWFLog, width_seconds: int
                ) -> List[Tuple[int, List[SWFJob]]]:
    """Cut the whole log into consecutive ``width_seconds`` windows —
    ``[(offset, jobs), ...]`` for every window that contains at least
    one job.  A long archive log becomes a family of task-set sources
    this way; the campaign planner seeds each window independently."""
    if width_seconds < 1:
        raise ValueError("window width must be positive")
    if not log.jobs:
        return []
    span = log.span_seconds()
    out: List[Tuple[int, List[SWFJob]]] = []
    for offset in range(0, span + 1, width_seconds):
        jobs = window_jobs(log, offset, width_seconds)
        if jobs:
            out.append((offset, jobs))
    return out


def scale_to_utilization(specs: Sequence[TaskSpec],
                         target: Union[float, Fraction]) -> List[TaskSpec]:
    """Rescale execution costs so the set's total utilization hits
    ``target`` (exactly in rational arithmetic, then rounded to whole
    ticks and clamped to ``1 <= e <= p`` like the synthetic generator).

    Periods — the trace's shape — are untouched; only the per-task
    demand is scaled, which is what lets one window sweep the same
    utilization axis as a synthetic campaign.  Deterministic: the same
    specs and target always produce the same set.
    """
    if not specs:
        raise ValueError("cannot scale an empty task set")
    goal = Fraction(target)
    if goal <= 0:
        raise ValueError(f"target utilization must be positive, got "
                         f"{target}")
    total = sum(Fraction(s.execution, s.period) for s in specs)
    factor = goal / total
    return [replace(s, execution=min(s.period,
                                     max(1, round(s.execution * factor))))
            for s in specs]
