"""Fault tolerance and overload (paper, Sec. 5.4).

Two contrasted behaviours:

* **Pfair / PD²** — if ``K`` of ``M`` processors fail and total weight is
  at most ``M − K``, the *same* global scheduler simply keeps choosing the
  top ``M − K`` subtasks: no reassignment, no misses (global scheduling +
  optimality).  If total weight exceeds the surviving capacity, the system
  is overloaded, and *reweighting* non-critical tasks (shrink their weights
  until Eq. (2) holds again) protects the critical ones — graceful
  degradation.
* **Partitioned EDF** — the failed processor's tasks must be re-homed.
  First fit over the survivors' spare capacity can fail even when total
  utilization is below ``M − 1`` (fragmentation), and EDF itself degrades
  badly under overload.

:func:`pd2_with_failures` runs PD² with a capacity function that drops at
failure times; :func:`plan_reweighting` computes a proportional weight
reduction for non-critical tasks that restores feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..core.rational import Weight, weight_sum
from ..core.task import PfairTask
from ..sim.quantum import QuantumSimulator, SimResult

__all__ = ["FailureEvent", "pd2_with_failures", "plan_reweighting"]


@dataclass(frozen=True)
class FailureEvent:
    """``count`` processors fail permanently at slot ``time``."""

    time: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.time < 0 or self.count < 1:
            raise ValueError("failures need time >= 0 and count >= 1")


def _capacity_fn(processors: int, failures: Sequence[FailureEvent]
                 ) -> Callable[[int], int]:
    events = sorted(failures, key=lambda f: f.time)

    def capacity(t: int) -> int:
        lost = sum(f.count for f in events if f.time <= t)
        return max(0, processors - lost)

    return capacity


def pd2_with_failures(tasks: Iterable[PfairTask], processors: int,
                      horizon: int, failures: Sequence[FailureEvent], *,
                      trace: bool = False) -> SimResult:
    """Run PD² while processors die at the given times.

    When total weight stays at most the surviving capacity, the run is
    transparent (no misses) — the Sec. 5.4 claim the tests assert.
    """
    sim = QuantumSimulator(
        tasks, processors, trace=trace,
        capacity_fn=_capacity_fn(processors, failures),
    )
    return sim.run(horizon)


def plan_reweighting(tasks: Sequence[PfairTask], critical: Iterable[str],
                     capacity: int) -> Optional[Dict[str, Tuple[int, int]]]:
    """Weights after an overload: critical tasks untouched, others scaled.

    Returns ``{task name: (new e, new p)}`` for the non-critical tasks, or
    ``None`` if even the critical set alone exceeds ``capacity``.  The
    non-critical tasks are scaled by the exact factor that makes total
    weight fit ``capacity``; each keeps its execution cost and gets a
    *longer period* (``p' = ceil(e / u')``), i.e. it "executes at a slower
    rate" as the paper puts it.  Rounding the period up rounds the weight
    down, so the plan never exceeds capacity.
    """
    critical_names = set(critical)
    crit = [t for t in tasks if t.name in critical_names]
    rest = [t for t in tasks if t.name not in critical_names]
    w_crit = weight_sum(t.weight for t in crit)
    if w_crit > capacity:
        return None
    w_rest = weight_sum(t.weight for t in rest)
    spare = Fraction(capacity) - Fraction(w_crit.num, w_crit.den)
    if Fraction(w_rest.num, w_rest.den) <= spare:
        # No reduction needed; keep current weights.
        return {t.name: (t.execution, t.period) for t in rest}
    if spare <= 0:
        return None if rest else {}
    scale = spare / Fraction(w_rest.num, w_rest.den)
    out: Dict[str, Tuple[int, int]] = {}
    for t in rest:
        new_u = Fraction(t.weight.num, t.weight.den) * scale
        # p' = ceil(e / u'): keep e, stretch the period.
        p_new = -((-t.execution * new_u.denominator) // new_u.numerator)
        out[t.name] = (t.execution, max(p_new, t.execution))
    total = weight_sum(
        [t.weight for t in crit]
        + [Weight.of_task(e, p) for (e, p) in out.values()]
    )
    if total > capacity:
        raise RuntimeError("period stretching cannot overshoot capacity")
    return out
