"""Fault tolerance and overload handling (paper, Sec. 5.4)."""

from .failures import FailureEvent, pd2_with_failures, plan_reweighting

__all__ = ["FailureEvent", "pd2_with_failures", "plan_reweighting"]
