"""Schedulability campaigns on the shard engine (Figs. 3–4, batch analysis).

This module is the bridge between the generic machinery (:mod:`.spec`,
:mod:`.runner`, :mod:`.checkpoint`) and the paper's Monte-Carlo sweeps:

* :func:`evaluate_shard` — the picklable worker: one seeded generator
  per shard, ``evaluate_task_set`` over its sets.  With the default
  ``replicas=1`` a shard is one grid point with the historical seed
  offset, so results are byte-identical to the pre-engine
  ``analysis.experiments`` path (the benchmarks assert this).
* :func:`assemble_rows` — the historical row aggregation, applied to
  shard results concatenated in replica order.  Completion order never
  reaches this code, which is why an interrupted-and-resumed run
  serialises byte-for-byte like an uninterrupted one.
* :func:`run_schedulability_campaign` — the long-standing entry point,
  same signature and semantics as before plus the engine's extras:
  ``run_dir`` (checkpoint every shard, write ``result.json``),
  ``resume``, ``replicas``, and a full :class:`~repro.campaign.runner.
  RunnerConfig` override.
* :func:`batch_analyze` — many independent task sets through the same
  dispatch engine; the admission service's ``batch-analyze`` verb sits
  on this (the service imports campaign, never the reverse).
"""

from __future__ import annotations

from fractions import Fraction
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..analysis.experiments import CampaignRow
from ..analysis.persistence import save_campaign
from ..analysis.schedulability import (SchedulabilityPoint,
                                       edf_ff_min_processors,
                                       evaluate_task_set, pd2_min_processors)
from ..analysis.stats import summarize
from ..overheads.model import OverheadModel
from ..workload.generator import TaskSetGenerator
from ..workload.spec import TaskSpec
from .checkpoint import CheckpointStore
from .runner import CampaignRunner, RunnerConfig, dispatch_jobs
from .spec import CampaignGrid, ShardSpec, plan_shards, shards_by_point

__all__ = ["evaluate_shard", "assemble_rows",
           "run_schedulability_campaign", "batch_analyze"]


def evaluate_shard(args: Tuple[ShardSpec, Optional[OverheadModel]]
                   ) -> List[SchedulabilityPoint]:
    """Worker for one shard — module-level so it pickles.

    Shards are embarrassingly parallel: each owns a generator seeded by
    the planner, so serial, parallel, and resumed runs produce
    byte-identical statistics.  (The per-set work is pure Python, so
    processes — not threads — are what buys wall-clock; default models
    pickle fine, custom ``sched_*`` callables must too.)
    """
    spec, model = args
    if model is None:
        model = OverheadModel()
    gen = TaskSetGenerator(spec.seed)
    return [evaluate_task_set(gen.generate(spec.n_tasks, spec.utilization),
                              model)
            for _ in range(spec.sets)]


def assemble_rows(grid: CampaignGrid,
                  results: Mapping[str, List[SchedulabilityPoint]],
                  progress: Optional[Callable[[str], None]] = None
                  ) -> List[CampaignRow]:
    """Aggregate per-shard points into the campaign's rows.

    Replicas of a point are concatenated in replica order (never
    completion order) and summarised with the same statistics code the
    serial path always used — the engine changes *where* points are
    computed, never *how* rows are formed.
    """
    by_point = shards_by_point(plan_shards(grid))
    rows: List[CampaignRow] = []
    for k, u in enumerate(grid.utilizations):
        points: List[SchedulabilityPoint] = []
        for shard in by_point[k]:
            points.extend(results[shard.shard_id])
        if progress is not None:
            progress(f"N={grid.n_tasks} U={u:.2f}: "
                     f"{len(points)} sets evaluated")
        m_pd2 = [p.m_pd2 for p in points if p.m_pd2 is not None]
        m_ff = [p.m_ff for p in points if p.m_ff is not None]
        lp = [p.loss_pfair for p in points if p.loss_pfair is not None]
        le = [p.loss_edf for p in points if p.loss_edf is not None]
        lf = [p.loss_ff for p in points if p.loss_ff is not None]
        rows.append(CampaignRow(
            n_tasks=grid.n_tasks,
            utilization=u,
            mean_utilization=u / grid.n_tasks,
            m_pd2=summarize(m_pd2 or [float("nan")]),
            m_ff=summarize(m_ff or [float("nan")]),
            loss_pfair=summarize(lp or [float("nan")]),
            loss_edf=summarize(le or [float("nan")]),
            loss_ff=summarize(lf or [float("nan")]),
            infeasible_pd2=sum(1 for p in points if p.m_pd2 is None),
            infeasible_ff=sum(1 for p in points if p.m_ff is None),
        ))
    return rows


def run_schedulability_campaign(
    n_tasks: int,
    utilizations: Sequence[float],
    *,
    sets_per_point: int = 50,
    seed: int = 0,
    model: Optional[OverheadModel] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    replicas: int = 1,
    run_dir: Optional[str] = None,
    resume: bool = False,
    config: Optional[RunnerConfig] = None,
) -> List[CampaignRow]:
    """The Fig. 3/4 campaign for one task count.

    One seeded generator per shard keeps shards independently
    reproducible and embarrassingly parallel: with ``workers > 1`` they
    run in the warm process pool and the results are byte-identical to
    the serial run.  With a ``run_dir`` every finished shard is
    checkpointed atomically and the final rows land in
    ``<run_dir>/result.json``; ``resume=True`` restores completed shards
    instead of recomputing them (see ``docs/CAMPAIGNS.md``).
    """
    grid = CampaignGrid(n_tasks=n_tasks, utilizations=tuple(utilizations),
                        sets_per_point=sets_per_point, seed=seed,
                        replicas=replicas)
    store = CheckpointStore(run_dir) if run_dir is not None else None
    cfg = config if config is not None else RunnerConfig(workers=workers)
    runner = CampaignRunner(grid, evaluate_shard, config=cfg, store=store,
                            model=model)
    results = runner.run(resume=resume)
    rows = assemble_rows(grid, results, progress=progress)
    if store is not None:
        save_campaign(store.result_path(), rows, seed=seed,
                      sets_per_point=sets_per_point,
                      note=f"campaign N={n_tasks} "
                           f"({len(grid.utilizations)} points)")
    return rows


def _analyze_one(args: Tuple[Tuple[TaskSpec, ...], Optional[OverheadModel]]
                 ) -> Dict[str, Any]:
    """Worker for one task set of a batch analysis (module-level so it
    pickles).  Invalid sets come back as ``{"error": ...}`` data rather
    than raising: a deterministic failure would fail identically on
    every retry, so it is an answer, not a fault."""
    specs, model = args
    if model is None:
        model = OverheadModel()
    try:
        return {
            "m_pd2": pd2_min_processors(specs, model),
            "m_edf_ff": edf_ff_min_processors(specs, model),
            "utilization": float(sum(Fraction(s.execution, s.period)
                                     for s in specs)),
            "n_tasks": len(specs),
        }
    except ValueError as exc:
        return {"error": str(exc)}


def batch_analyze(task_sets: Sequence[Sequence[TaskSpec]], *,
                  model: Optional[OverheadModel] = None,
                  workers: int = 1,
                  config: Optional[RunnerConfig] = None
                  ) -> List[Dict[str, Any]]:
    """Analyse many independent task sets, in input order.

    Each result dict mirrors one ``analyze`` verb response (``m_pd2``,
    ``m_edf_ff``, ``utilization``, ``n_tasks``) or carries ``"error"``
    for an invalid set.  Dispatch runs through the same engine as
    campaigns — warm pool, worker-death recovery — with ``max_retries=0``
    by default because the analysis is deterministic (a worker death is
    still recovered; it is unbudgeted).
    """
    if not task_sets:
        return []
    cfg = config if config is not None else RunnerConfig(workers=workers,
                                                         max_retries=0)
    jobs = {f"{i:06d}": (tuple(task_sets[i]), model)
            for i in range(len(task_sets))}
    results: Dict[str, Dict[str, Any]] = {}

    def on_success(key: str, result: Dict[str, Any],
                   attempts: int, elapsed: float) -> None:
        results[key] = result

    failed = dispatch_jobs(jobs, _analyze_one, cfg, on_success=on_success)
    for key in failed:
        # Non-deterministic failure (e.g. repeated worker death): report
        # it per-set the same way invalid input is reported.
        results[key] = {"error": "analysis failed after retries"}
    return [results[key] for key in sorted(jobs)]
