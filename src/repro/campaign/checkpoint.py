"""The run directory: incremental, crash-safe campaign checkpoints.

A campaign run owns one directory with a fixed layout (documented for
users in ``docs/CAMPAIGNS.md``)::

    <run_dir>/
        manifest.json        grid + provenance, written once at start
        shards/<id>.json     one file per finished shard (raw points)
        status.json          live progress snapshot, rewritten as we go
        result.json          final assembled campaign (save_campaign format)

Every write goes through :func:`repro.analysis.persistence.
atomic_write_text`, so a crash at any instant leaves either the previous
version of a file or a complete new one — never a torn file.  A shard
checkpoint stores the *raw* :class:`~repro.analysis.schedulability.
SchedulabilityPoint` fields rather than aggregated statistics: JSON
round-trips Python floats exactly, so re-aggregating restored points
with the historical row code yields campaign rows byte-identical to an
uninterrupted run — the engine's resume guarantee reduces to "same
points in, same rows out".

The store itself is deterministic machinery: it never reads a clock —
timestamps in the manifest and status are data supplied by the caller
(the runner, which is staticcheck R002's one clock-exempt campaign
module).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from ..analysis.persistence import atomic_write_text
from ..analysis.schedulability import SchedulabilityPoint
from .spec import CampaignGrid, GridLike, ShardSpec

__all__ = ["CheckpointStore", "RunDirError",
           "point_to_dict", "point_from_dict"]

#: Format tags, checked on every read so stale or foreign directories
#: fail loudly instead of merging garbage into a resumed run.
MANIFEST_FORMAT = "repro-campaign-run-v1"
SHARD_FORMAT = "repro-campaign-shard-v1"

_POINT_FIELDS = ("n_tasks", "utilization", "m_pd2", "m_ff",
                 "inflated_u_pd2", "inflated_u_edf", "pd2_iterations_max")


class RunDirError(ValueError):
    """A run directory is missing, foreign, or inconsistent with the
    requested campaign (wrong format tag, mismatched grid on resume)."""


def point_to_dict(point: SchedulabilityPoint) -> Dict[str, Any]:
    """The point's stored fields (loss metrics are derived properties and
    are recomputed, not persisted)."""
    return {f: getattr(point, f) for f in _POINT_FIELDS}


def point_from_dict(data: Dict[str, Any]) -> SchedulabilityPoint:
    """Rebuild a point from its checkpoint form — exact, because JSON
    round-trips ints and IEEE-754 doubles losslessly."""
    return SchedulabilityPoint(**{f: data[f] for f in _POINT_FIELDS})


class CheckpointStore:
    """Reader/writer for one campaign run directory.

    Single-writer by design: exactly one runner owns a run directory at
    a time (the CLI enforces nothing — two concurrent runners on the
    same directory would interleave status writes, though shard files
    would still land atomically).  Readers (``repro campaign status``)
    may poll concurrently from other processes; atomicity of
    ``os.replace`` guarantees they always see complete JSON.
    """

    MANIFEST = "manifest.json"
    SHARD_DIR = "shards"
    STATUS = "status.json"
    RESULT = "result.json"

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)

    # -- manifest -----------------------------------------------------

    def initialize(self, grid: GridLike, *,
                   model_fingerprint: Optional[str],
                   created: str, note: str = "") -> None:
        """Create the run directory and write its manifest.

        Refuses a directory that already holds a *different* campaign;
        re-initialising with an identical grid is a no-op (the resume
        path), so interrupted runs can be reopened with the same call.
        """
        self.run_dir.mkdir(parents=True, exist_ok=True)
        (self.run_dir / self.SHARD_DIR).mkdir(exist_ok=True)
        manifest_path = self.run_dir / self.MANIFEST
        if manifest_path.exists():
            existing = self.load_manifest()
            if existing["grid"] != grid.to_dict():
                raise RunDirError(
                    f"{self.run_dir}: manifest holds a different campaign "
                    f"grid; refusing to mix runs (use a fresh directory)")
            if existing.get("model") != model_fingerprint:
                raise RunDirError(
                    f"{self.run_dir}: manifest was written with a different "
                    f"overhead model; results would not be comparable")
            return
        manifest = {
            "format": MANIFEST_FORMAT,
            "grid": grid.to_dict(),
            "model": model_fingerprint,
            "created": created,
            "note": note,
        }
        # Canonical bytes: sort_keys so the on-disk form is a function
        # of the *content*, not of dict insertion order surviving
        # refactors.  Format compatibility: json.loads never cared
        # about key order, so v1 readers accept the sorted form and
        # pre-sort files remain loadable — only byte-compares of files
        # written by different code versions are affected, and those
        # were never promised.  (Same note covers write_shard and
        # write_status below.)
        atomic_write_text(manifest_path,
                          json.dumps(manifest, indent=2,
                                     sort_keys=True) + "\n")

    def load_manifest(self) -> Dict[str, Any]:
        """The manifest dict; raises :class:`RunDirError` when absent or
        not a campaign run directory."""
        path = self.run_dir / self.MANIFEST
        if not path.exists():
            raise RunDirError(f"{self.run_dir}: no {self.MANIFEST} — not a "
                              f"campaign run directory")
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
            raise RunDirError(f"{path}: not a {MANIFEST_FORMAT} manifest")
        return data

    def load_grid(self) -> CampaignGrid:
        """The synthetic campaign grid recorded in the manifest.

        Trace-replay manifests (grid dicts carrying a ``"kind"`` tag)
        are not plain :class:`CampaignGrid`\\ s — resuming one needs the
        trace file back, which only the trace-aware CLI path can
        supply, so this raises :class:`RunDirError` with that hint
        instead of mis-parsing the dict.
        """
        grid = self.load_manifest()["grid"]
        if isinstance(grid, dict) and "kind" in grid:
            raise RunDirError(
                f"{self.run_dir}: manifest holds a {grid['kind']!r} "
                f"campaign, not a synthetic grid — resume it with "
                f"--trace PATH so the trace payloads can be rebuilt")
        return CampaignGrid.from_dict(grid)

    # -- shards -------------------------------------------------------

    def _shard_path(self, shard_id: str) -> Path:
        return self.run_dir / self.SHARD_DIR / f"{shard_id}.json"

    def completed_shards(self) -> Set[str]:
        """Ids of shards with a complete, well-formed checkpoint file.

        Malformed files (e.g. from a foreign process) are ignored rather
        than trusted — the runner will simply re-run those shards.
        ``.tmp`` spool files never appear here because
        :func:`atomic_write_text` renames only complete writes into place.
        """
        shard_dir = self.run_dir / self.SHARD_DIR
        if not shard_dir.is_dir():
            return set()
        done: Set[str] = set()
        for path in shard_dir.glob("*.json"):
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            shard = data.get("shard") if isinstance(data, dict) else None
            if isinstance(data, dict) and data.get("format") == SHARD_FORMAT \
                    and isinstance(shard, dict) \
                    and shard.get("shard_id") == path.stem:
                done.add(path.stem)
        return done

    def write_shard(self, spec: ShardSpec,
                    points: Sequence[SchedulabilityPoint], *,
                    attempts: int, elapsed_seconds: float,
                    worker: Optional[str] = None) -> None:
        """Spool one finished shard atomically into the run directory.

        ``attempts``, ``elapsed_seconds``, and ``worker`` (the node that
        produced the points, for distributed runs) are provenance only —
        they record how and where the shard was produced, and are
        excluded from the determinism contract (a resumed run may
        legitimately differ there while the ``points`` stay identical).
        """
        payload: Dict[str, Any] = {
            "format": SHARD_FORMAT,
            "shard": spec.to_dict(),
            "attempts": attempts,
            "elapsed_seconds": elapsed_seconds,
        }
        if worker is not None:
            payload["worker"] = worker
        payload["points"] = [point_to_dict(p) for p in points]
        atomic_write_text(self._shard_path(spec.shard_id),
                          json.dumps(payload, sort_keys=True,
                                     separators=(",", ":")) + "\n")

    def read_shard_meta(self, shard_id: str) -> Dict[str, Any]:
        """A shard checkpoint's provenance fields (``attempts``,
        ``elapsed_seconds``, optional ``worker``) without the points —
        what ``repro campaign status --shards`` renders."""
        path = self._shard_path(shard_id)
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != SHARD_FORMAT:
            raise RunDirError(f"{path}: not a {SHARD_FORMAT} checkpoint")
        return {k: data[k] for k in ("attempts", "elapsed_seconds", "worker")
                if k in data}

    def read_shard(self, shard_id: str) -> List[SchedulabilityPoint]:
        """Restore a shard's evaluated points, verifying the format tag."""
        path = self._shard_path(shard_id)
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != SHARD_FORMAT:
            raise RunDirError(f"{path}: not a {SHARD_FORMAT} checkpoint")
        return [point_from_dict(pd) for pd in data["points"]]

    def read_shard_spec(self, shard_id: str) -> ShardSpec:
        """The :class:`ShardSpec` recorded in a shard checkpoint."""
        path = self._shard_path(shard_id)
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != SHARD_FORMAT:
            raise RunDirError(f"{path}: not a {SHARD_FORMAT} checkpoint")
        return ShardSpec.from_dict(data["shard"])

    # -- status and result --------------------------------------------

    def write_status(self, status: Dict[str, Any]) -> None:
        """Rewrite the live progress snapshot (see
        :meth:`repro.campaign.progress.ProgressTracker.snapshot`)."""
        atomic_write_text(self.run_dir / self.STATUS,
                          json.dumps(status, indent=2,
                                     sort_keys=True) + "\n")

    def read_status(self) -> Optional[Dict[str, Any]]:
        """The last status snapshot, or ``None`` before the first write."""
        path = self.run_dir / self.STATUS
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def result_path(self) -> Path:
        """Where the final assembled campaign lands (``result.json``)."""
        return self.run_dir / self.RESULT
