"""Campaign grids and their deterministic decomposition into shards.

A *campaign* is the paper's Monte-Carlo sweep: for one task count, a
grid of target total utilizations, each evaluated over many random task
sets.  The planner here splits that grid into :class:`ShardSpec` records
— the engine's unit of dispatch, retry, and checkpointing — such that

* every shard is **independently seeded**: its generator seed is a pure
  function of ``(campaign seed, point index, replica index)``, so a
  shard's result does not depend on which worker ran it, when, or what
  ran before it;
* the plan is **pure**: :func:`plan_shards` reads no clock, RNG, or
  environment (staticcheck R002 covers this package), so planning the
  same :class:`CampaignGrid` twice — e.g. on resume — yields the same
  shards with the same ids, which is what lets a resumed run skip
  completed shards byte-for-byte;
* with ``replicas == 1`` (the default) a shard is exactly one grid
  point with the historical seed offset ``seed + 7919 * point_index``,
  so engine campaigns reproduce the pre-engine serial runs bit for bit.

``replicas > 1`` splits each grid point's task sets over several shards
with distinct sub-seeds (offset by ``104729 * replica_index`` — the
10000th prime, coprime to the point stride).  Replicated shards are
pooled by :func:`repro.analysis.persistence.merge_campaigns` in replica
order, giving finer-grained checkpoints and more parallelism at
paper-scale set counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Protocol, Sequence, Tuple

__all__ = ["CampaignGrid", "GridLike", "ShardSpec", "plan_shards",
           "shards_by_point", "POINT_SEED_STRIDE", "REPLICA_SEED_STRIDE"]

#: Seed offset between grid points (the 1000th prime) — unchanged from
#: the original ``run_schedulability_campaign`` so engine results stay
#: byte-identical to historical runs.
POINT_SEED_STRIDE = 7919

#: Seed offset between replicas of one point (the 10000th prime).
REPLICA_SEED_STRIDE = 104729


class GridLike(Protocol):
    """What the runner and checkpoint store need from a campaign grid.

    Any pure-data description that can (a) decompose itself into the
    full ordered :class:`ShardSpec` list and (b) serialise itself for
    the manifest qualifies — :class:`CampaignGrid` for synthetic
    sweeps, :class:`repro.traces.replay.TraceGrid` for trace replay.
    ``plan()`` must be deterministic (no I/O, clock, or RNG), because
    resume replans and diffs against the checkpoint directory.
    """

    def plan(self) -> List["ShardSpec"]: ...

    def to_dict(self) -> Dict[str, Any]: ...


@dataclass(frozen=True)
class CampaignGrid:
    """The full description of one schedulability campaign.

    ``utilizations`` is the Fig. 3 x-axis (total utilization per grid
    point); ``sets_per_point`` the Monte-Carlo sample size; ``replicas``
    how many shards each point is split into.  The grid is pure data —
    hashable, serialisable, and sufficient to replan the identical shard
    set on resume.
    """

    n_tasks: int
    utilizations: Tuple[float, ...]
    sets_per_point: int = 50
    seed: int = 0
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError(f"n_tasks must be positive, got {self.n_tasks}")
        if not self.utilizations:
            raise ValueError("a campaign needs at least one grid point")
        if self.sets_per_point < 1:
            raise ValueError("sets_per_point must be positive, got "
                             f"{self.sets_per_point}")
        if not 1 <= self.replicas <= self.sets_per_point:
            raise ValueError(
                f"replicas must be in [1, sets_per_point], got "
                f"{self.replicas} (sets_per_point={self.sets_per_point})")
        object.__setattr__(self, "utilizations",
                           tuple(float(u) for u in self.utilizations))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, stored verbatim in a run's manifest."""
        return {
            "n_tasks": self.n_tasks,
            "utilizations": list(self.utilizations),
            "sets_per_point": self.sets_per_point,
            "seed": self.seed,
            "replicas": self.replicas,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignGrid":
        """Rebuild a grid from its manifest form."""
        return cls(n_tasks=data["n_tasks"],
                   utilizations=tuple(data["utilizations"]),
                   sets_per_point=data["sets_per_point"],
                   seed=data["seed"],
                   replicas=data.get("replicas", 1))

    def plan(self) -> "List[ShardSpec]":
        """The grid's full ordered shard list (:func:`plan_shards`) —
        the :class:`GridLike` entry point the runner calls."""
        return plan_shards(self)


@dataclass(frozen=True)
class ShardSpec:
    """One independently runnable, independently seeded unit of work.

    A shard evaluates ``sets`` random task sets at one ``(n_tasks,
    utilization)`` grid point, drawn from a generator seeded with
    ``seed``.  ``shard_id`` names its checkpoint file; ids sort in grid
    order (zero-padded point index, then replica index).
    """

    shard_id: str
    point_index: int
    replica_index: int
    n_tasks: int
    utilization: float
    sets: int
    seed: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, embedded in the shard's checkpoint file."""
        return {
            "shard_id": self.shard_id,
            "point_index": self.point_index,
            "replica_index": self.replica_index,
            "n_tasks": self.n_tasks,
            "utilization": self.utilization,
            "sets": self.sets,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardSpec":
        """Rebuild a shard from its checkpoint form."""
        return cls(shard_id=data["shard_id"],
                   point_index=data["point_index"],
                   replica_index=data["replica_index"],
                   n_tasks=data["n_tasks"],
                   utilization=data["utilization"],
                   sets=data["sets"],
                   seed=data["seed"])


def _replica_sets(sets_per_point: int, replicas: int) -> List[int]:
    """Split a point's sample size over replicas (earlier replicas take
    the remainder, so totals are exact and the split is deterministic)."""
    base, extra = divmod(sets_per_point, replicas)
    return [base + (1 if r < extra else 0) for r in range(replicas)]


def plan_shards(grid: CampaignGrid) -> List[ShardSpec]:
    """Decompose ``grid`` into its full, ordered shard list.

    Pure and total: no I/O, no clock, no randomness.  The same grid
    always plans the same shards — the resume path replans and diffs
    against the checkpoint directory instead of persisting the plan.
    """
    shards: List[ShardSpec] = []
    for k, u in enumerate(grid.utilizations):
        point_seed = grid.seed + POINT_SEED_STRIDE * k
        for r, sets in enumerate(_replica_sets(grid.sets_per_point,
                                               grid.replicas)):
            shards.append(ShardSpec(
                shard_id=f"p{k:04d}r{r:03d}",
                point_index=k,
                replica_index=r,
                n_tasks=grid.n_tasks,
                utilization=u,
                sets=sets,
                seed=point_seed + REPLICA_SEED_STRIDE * r,
            ))
    return shards


def shards_by_point(shards: Sequence[ShardSpec]
                    ) -> Dict[int, List[ShardSpec]]:
    """Group shards by grid point, replicas in order — the merge order
    the assembler uses, independent of completion order."""
    by_point: Dict[int, List[ShardSpec]] = {}
    for shard in shards:
        by_point.setdefault(shard.point_index, []).append(shard)
    for group in by_point.values():
        group.sort(key=lambda s: s.replica_index)
    return by_point
