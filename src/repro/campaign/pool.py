"""The warm process pool behind every campaign.

Spawning a ``ProcessPoolExecutor`` per campaign call re-pays worker
startup and the heavy analysis imports on every figure; instead one warm
pool is kept for the life of the process, keyed by ``(workers,
fastpath_enabled())``, and torn down at exit.  This logic lived in
``analysis/experiments.py`` as a pair of main-thread-confined module
globals; the campaign engine needs more from it — the runner must be
able to *discard* a pool whose worker died (``BrokenProcessPool``
poisons the whole executor) and rebuild it mid-run, possibly while the
service's batch path is using the pool from another thread — so the
globals became :class:`WorkerPool`, a class whose every mutating method
runs under its own ``RLock`` (the synchronization pattern staticcheck
R007 recognises, same as :class:`repro.util.lru.LRUCache`).

Workers are initialised once with :func:`_warm_init`: they inherit the
parent's fast-path toggle and pre-import the analysis chain, so the
first shard dispatched to a fresh worker doesn't pay import latency
inside its timeout budget.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Tuple

from ..util.toggles import fastpath_enabled, vector_enabled

__all__ = ["WorkerPool", "worker_pool", "discard_worker_pool",
           "shutdown_worker_pool"]


def _warm_init(fastpath_on: bool, vector_on: bool = True) -> None:
    """Worker initializer: inherit the kernel toggles and pay the heavy
    imports once per worker instead of once per shard."""
    from ..util.toggles import set_fastpath, set_vector

    set_fastpath(fastpath_on)
    set_vector(vector_on)
    from ..analysis import schedulability  # noqa: F401  (pulls in the chain)


class WorkerPool:
    """Lock-synchronized owner of one warm ``ProcessPoolExecutor``.

    All state transitions (lazy build, config-change rebuild, discard
    after worker death, final shutdown) happen under ``self._lock``, so
    the campaign CLI, the service's batch path, and the atexit hook can
    share the singleton without racing.  The executor itself is
    thread-safe for ``submit``; only the *replacement* of the executor
    needs the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._config: Optional[Tuple[int, bool, bool]] = None

    def get(self, workers: int) -> ProcessPoolExecutor:
        """The warm pool for ``workers``, built or rebuilt on demand.

        A config change (worker count or fast-path toggle) retires the
        old pool first, so stale workers never serve new campaigns with
        the wrong toggle state.
        """
        config = (workers, fastpath_enabled(), vector_enabled())
        with self._lock:
            if self._pool is None or self._config != config:
                self.shutdown()
                self._pool = ProcessPoolExecutor(max_workers=workers,
                                                 initializer=_warm_init,
                                                 initargs=config[1:])
                self._config = config
            return self._pool

    def discard(self) -> None:
        """Drop the current pool without waiting (idempotent).

        Used after ``BrokenProcessPool``: the executor is already
        unusable, so there is nothing to drain — the next :meth:`get`
        builds a fresh one and the runner resubmits the lost shards.
        """
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                self._config = None

    def shutdown(self) -> None:
        """Tear down the warm pool, waiting for workers (idempotent)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
                self._config = None


#: Process-wide singleton: one warm pool shared by the CLI campaign
#: commands, the benchmarks, and the service's batch-analyze path.
_POOL = WorkerPool()


def worker_pool(workers: int) -> ProcessPoolExecutor:
    """The shared warm pool (see :class:`WorkerPool`)."""
    return _POOL.get(workers)


def discard_worker_pool() -> None:
    """Drop the shared pool after a worker death (see
    :meth:`WorkerPool.discard`)."""
    _POOL.discard()


def shutdown_worker_pool() -> None:
    """Tear down the shared warm pool (idempotent; re-created on use)."""
    _POOL.shutdown()


atexit.register(shutdown_worker_pool)
