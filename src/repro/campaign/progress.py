"""Shard progress accounting: done/total, retries, throughput, ETA.

One :class:`ProgressTracker` per campaign run, confined to the runner's
dispatching thread (the :mod:`repro.util.metrics` primitives take no
locks — see that module's contract).  Its :meth:`~ProgressTracker.
snapshot` is the schema of ``status.json``, which ``repro campaign
status`` renders for a live run.

The tracker is deliberately clock-free: every method takes the current
monotonic time as an argument instead of reading a clock, which keeps
this module inside staticcheck R002's determinism scope and makes the
arithmetic (throughput, ETA) trivially unit-testable with synthetic
timestamps.  Only the runner touches real clocks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..util.metrics import Counter, LatencyHistogram

__all__ = ["ProgressTracker"]


class ProgressTracker:
    """Accounting for one campaign run's shard lifecycle events.

    ``record_retry`` labels name *why* a shard went back into the queue:
    ``"timeout"`` (exceeded its per-shard budget), ``"worker-death"``
    (``BrokenProcessPool`` — includes innocent shards resubmitted after a
    sibling killed the pool), or ``"error"`` (the shard raised).
    """

    def __init__(self, total_shards: int,
                 completed_before_start: int = 0) -> None:
        if total_shards < 1:
            raise ValueError("a campaign has at least one shard")
        self.total_shards = total_shards
        #: Shards restored from checkpoints on resume — counted as done
        #: but excluded from throughput (this run didn't pay for them).
        self.completed_before_start = completed_before_start
        self.done = Counter()
        self.retries = Counter()
        self.latency = LatencyHistogram()
        #: Per-worker attribution (distributed runs): shard counts,
        #: retries charged to the worker, and its own latency histogram.
        #: A pure-local run has exactly one source, ``"local"``.
        self._worker_done: Dict[str, Counter] = {}
        self._worker_retries: Dict[str, Counter] = {}
        self._worker_latency: Dict[str, LatencyHistogram] = {}
        self._started_at: Optional[float] = None

    def start(self, now: float) -> None:
        """Mark dispatch start (``now`` = monotonic seconds)."""
        self._started_at = now

    def _worker_slot(self, worker: str
                     ) -> tuple[Counter, Counter, LatencyHistogram]:
        if worker not in self._worker_done:
            self._worker_done[worker] = Counter()
            self._worker_retries[worker] = Counter()
            self._worker_latency[worker] = LatencyHistogram()
        return (self._worker_done[worker], self._worker_retries[worker],
                self._worker_latency[worker])

    def record_success(self, latency_seconds: float,
                       worker: str = "local") -> None:
        """One shard finished and checkpointed, produced by ``worker``."""
        self.done.inc()
        self.latency.observe(latency_seconds)
        done, _retries, latency = self._worker_slot(worker)
        done.inc()
        latency.observe(latency_seconds)

    def record_retry(self, reason: str,
                     worker: Optional[str] = None) -> None:
        """One shard went back into the queue (see class docstring);
        ``worker`` names the node charged with the failed attempt when
        known (distributed runs attribute expiries and lost leases)."""
        self.retries.inc(reason)
        if worker is not None:
            self._worker_slot(worker)[1].inc(reason)

    @property
    def shards_done(self) -> int:
        """Shards complete, including those restored on resume."""
        return self.completed_before_start + self.done.total()

    @property
    def finished(self) -> bool:
        """True once every planned shard has a checkpoint."""
        return self.shards_done >= self.total_shards

    def snapshot(self, now: float, *, state: str,
                 updated: str = "") -> Dict[str, Any]:
        """The ``status.json`` payload.

        ``state`` is the run lifecycle (``running`` / ``complete`` /
        ``interrupted`` / ``failed``); ``updated`` is a wall-clock string
        supplied by the runner — provenance only, like every timestamp in
        the run directory.
        """
        elapsed = (now - self._started_at
                   if self._started_at is not None else 0.0)
        done_here = self.done.total()
        throughput = done_here / elapsed if elapsed > 0 else None
        remaining = self.total_shards - self.shards_done
        eta = (remaining / throughput
               if throughput and remaining > 0 else None)
        workers: Dict[str, Any] = {}
        for name in sorted(self._worker_done):
            w_done = self._worker_done[name].total()
            workers[name] = {
                "shards_done": w_done,
                "retries": self._worker_retries[name].as_dict(),
                "throughput_shards_per_sec": (round(w_done / elapsed, 4)
                                              if elapsed > 0 else None),
                "shard_latency": self._worker_latency[name].summary(),
            }
        return {
            "state": state,
            "updated": updated,
            "shards_total": self.total_shards,
            "shards_done": self.shards_done,
            "shards_resumed": self.completed_before_start,
            "retries": self.retries.as_dict(),
            "elapsed_seconds": round(elapsed, 3),
            "throughput_shards_per_sec": (round(throughput, 4)
                                          if throughput else None),
            "eta_seconds": round(eta, 1) if eta is not None else None,
            "shard_latency": self.latency.summary(),
            "workers": workers,
        }
