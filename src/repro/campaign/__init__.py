"""Fault-tolerant, checkpointable, observable campaign execution.

The engine behind every Monte-Carlo sweep in the repo.  A campaign grid
is planned into deterministic, independently-seeded shards
(:mod:`.spec`); a runner dispatches them over the warm process pool with
per-shard timeout, bounded retry, and worker-death recovery
(:mod:`.runner` / :mod:`.pool`); each finished shard spools atomically
into a run directory so an interrupted run resumes byte-for-byte
(:mod:`.checkpoint`); and a progress surface feeds ``repro campaign
run|resume|status`` (:mod:`.progress`).  :mod:`.sched` binds the engine
to the paper's schedulability sweeps, :mod:`.crossover` reads the
Fig. 3 crossover off a campaign's rows.

Layering (staticcheck R003): campaign sits above analysis and below
service — the service's batch-analyze path calls into this package,
never the reverse.  Run-directory layout, retry semantics, and the
resume guarantee are documented in ``docs/CAMPAIGNS.md``.
"""

from .checkpoint import CheckpointStore, RunDirError
from .crossover import CrossoverResult, find_crossover
from .pool import WorkerPool, shutdown_worker_pool, worker_pool
from .progress import ProgressTracker
from .runner import (CampaignIncomplete, CampaignRunner, RunnerConfig,
                     dispatch_jobs)
from .sched import (assemble_rows, batch_analyze, evaluate_shard,
                    run_schedulability_campaign)
from .spec import CampaignGrid, ShardSpec, plan_shards

__all__ = [
    "CampaignGrid",
    "ShardSpec",
    "plan_shards",
    "CheckpointStore",
    "RunDirError",
    "WorkerPool",
    "worker_pool",
    "shutdown_worker_pool",
    "ProgressTracker",
    "RunnerConfig",
    "CampaignRunner",
    "CampaignIncomplete",
    "dispatch_jobs",
    "evaluate_shard",
    "assemble_rows",
    "run_schedulability_campaign",
    "batch_analyze",
    "CrossoverResult",
    "find_crossover",
]
