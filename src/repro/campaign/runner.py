"""Fault-tolerant shard dispatch: retry, timeout, worker-death recovery.

Two layers live here.  :func:`dispatch_jobs` is the generic engine: it
pushes picklable jobs through the warm process pool with per-job
deadlines, bounded retry with exponential backoff, and
``BrokenProcessPool`` recovery — when a worker dies it resubmits the
lost jobs, not the run.  :class:`CampaignRunner` specialises it for
schedulability campaigns: shards come from :func:`~repro.campaign.spec.
plan_shards`, every finished shard spools atomically into a
:class:`~repro.campaign.checkpoint.CheckpointStore`, and a
:class:`~repro.campaign.progress.ProgressTracker` keeps ``status.json``
current for ``repro campaign status``.  The service's batch-analyze path
reuses :func:`dispatch_jobs` directly (see :func:`repro.campaign.sched.
batch_analyze`), so both consumers share one recovery policy.

Failure semantics, in one place:

* **error** — the job raised: charged against its ``max_retries``
  budget, resubmitted after ``backoff * 2**(failures-1)`` seconds; over
  budget, the job is marked failed, the rest of the run continues, and
  the caller gets the failed ids (:class:`CampaignIncomplete` from the
  runner — the run directory stays valid, so ``resume`` retries only
  the failures).
* **timeout** — the job outlived ``shard_timeout`` (measured from
  submit): the attempt is abandoned and the job resubmitted, charged as
  an error.  The abandoned attempt cannot be killed (executors expose no
  per-task cancel once running) and may finish later; its late result is
  discarded, which is sound because shards are deterministic — both
  attempts compute the same points.  Timeouts apply only when
  ``workers > 1``.
* **worker death** — ``BrokenProcessPool`` poisons the whole executor:
  the pool is discarded and rebuilt, and *every* in-flight job is
  resubmitted without touching its retry budget (the guilty shard is
  indistinguishable from innocent siblings that merely shared the pool).
  Repeated waves are bounded by ``max_pool_rebuilds``; past that the
  run gives up on whatever is unfinished.

This is the single module in ``repro.campaign`` allowed to read clocks
(staticcheck R002 exempts exactly this file): ``time.monotonic`` for
deadlines and throughput, wall-clock only for run-metadata timestamps.
Everything downstream of the clock — planning, checkpoint content,
assembly — stays deterministic.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, \
    wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence,
                    Set, Tuple)

from ..analysis.schedulability import SchedulabilityPoint
from ..overheads.model import OverheadModel
from ..util.toggles import fastpath_enabled
from .checkpoint import CheckpointStore, RunDirError
from .pool import discard_worker_pool, worker_pool
from .progress import ProgressTracker
from .spec import GridLike

__all__ = ["RunnerConfig", "CampaignRunner", "CampaignIncomplete",
           "dispatch_jobs"]


@dataclass(frozen=True)
class RunnerConfig:
    """Dispatch policy knobs (see the module docstring for semantics)."""

    workers: int = 1
    shard_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_seconds: float = 0.25
    max_pool_rebuilds: int = 3
    status_interval_seconds: float = 2.0
    poll_interval_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive when set")


class CampaignIncomplete(RuntimeError):
    """Some shards exhausted their retry budget.

    The run directory (when there is one) remains valid: completed
    shards are checkpointed, so ``repro campaign resume`` retries only
    the failures once their cause is fixed.
    """

    def __init__(self, failed: Sequence[str]) -> None:
        self.failed = sorted(failed)
        preview = ", ".join(self.failed[:5])
        if len(self.failed) > 5:
            preview += ", ..."
        super().__init__(
            f"{len(self.failed)} shard(s) failed after retries: {preview} "
            f"(completed shards are checkpointed; resume retries failures)")


def _utc_now() -> str:
    """Wall-clock timestamp for run metadata (never for results)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


@dataclass
class _Attempt:
    """One in-flight submission of a job."""

    key: str
    attempt: int            # 1-based
    submitted_at: float     # monotonic seconds


def _backoff(config: RunnerConfig, failures: int) -> float:
    return config.backoff_seconds * (2 ** max(failures - 1, 0))


def _completion_order(done_futs: Iterable[Any],
                      pending: Mapping[Any, _Attempt]) -> List[Any]:
    """A canonical (sorted-by-key) view of one poll batch.

    ``concurrent.futures.wait`` hands back a *set* of futures —
    completion order, then hash order — and the completion callbacks
    are caller-visible (row emission, retry accounting), so the batch
    is ordered by task key before anything observes it.  Stale futures
    no longer in ``pending`` sort first; the loop discards them anyway.
    """
    return sorted(done_futs,
                  key=lambda f: pending[f].key if f in pending else "")


def _dispatch_serial(order: List[str], jobs: Mapping[str, Any],
                     worker: Callable[[Any], Any], config: RunnerConfig,
                     on_success: Callable[[str, Any, int, float], None],
                     on_retry: Optional[Callable[[str, str], None]],
                     on_tick: Optional[Callable[[], None]]) -> List[str]:
    """In-process dispatch for ``workers == 1`` — same retry budget, no
    pool, no timeouts (a stuck shard would stick the caller regardless)."""
    failed: List[str] = []
    for key in order:
        failures = 0
        while True:
            start = time.monotonic()
            try:
                result = worker(jobs[key])
            except Exception:
                failures += 1
                if on_retry is not None:
                    on_retry(key, "error")
                if failures > config.max_retries:
                    failed.append(key)
                    break
                time.sleep(_backoff(config, failures))
                continue
            on_success(key, result, failures + 1,
                       time.monotonic() - start)
            break
        if on_tick is not None:
            on_tick()
    return failed


def dispatch_jobs(jobs: Mapping[str, Any],
                  worker: Callable[[Any], Any],
                  config: RunnerConfig, *,
                  on_success: Callable[[str, Any, int, float], None],
                  on_retry: Optional[Callable[[str, str], None]] = None,
                  on_tick: Optional[Callable[[], None]] = None) -> List[str]:
    """Run every job to success or retry exhaustion; return failed keys.

    ``jobs`` maps a stable key to a picklable payload; ``worker`` must be
    a module-level callable (the pool pickles it).  ``on_success(key,
    result, attempts, elapsed)`` fires exactly once per finished job;
    within one poll batch, finished jobs are reported in sorted-key
    order (the batch's membership still depends on completion timing).
    ``on_retry(key, reason)`` fires on every requeue with reason
    ``"error"``, ``"timeout"``, or ``"worker-death"``.  ``on_tick``
    fires at least every ``status_interval_seconds`` while work is
    outstanding.

    Jobs are submitted in sorted-key order, but nothing downstream may
    depend on completion order — the campaign assembler orders by shard
    id, not arrival.
    """
    order = sorted(jobs)
    if not order:
        return []
    if config.workers <= 1:
        return _dispatch_serial(order, jobs, worker, config,
                                on_success, on_retry, on_tick)

    # --no-fastpath keeps the historical throwaway pool for A/B runs;
    # otherwise the warm shared pool (repro.campaign.pool) is used and
    # survives this call.
    use_warm = fastpath_enabled()
    ephemeral: List[ProcessPoolExecutor] = []

    def get_pool() -> ProcessPoolExecutor:
        if use_warm:
            return worker_pool(config.workers)
        if not ephemeral:
            ephemeral.append(ProcessPoolExecutor(max_workers=config.workers))
        return ephemeral[0]

    def retire_pool() -> None:
        if use_warm:
            discard_worker_pool()
        elif ephemeral:
            ephemeral.pop().shutdown(wait=False, cancel_futures=True)

    #: (not-before monotonic time, key) — work awaiting (re)submission.
    queue: List[Tuple[float, str]] = [(0.0, key) for key in order]
    pending: Dict[Future, _Attempt] = {}
    failures: Dict[str, int] = {}
    finished: Set[str] = set()
    failed: Set[str] = set()
    rebuilds = 0

    def charge(key: str, reason: str, now: float) -> None:
        """Budgeted requeue for an error or timeout."""
        failures[key] = failures.get(key, 0) + 1
        if on_retry is not None:
            on_retry(key, reason)
        if failures[key] > config.max_retries:
            failed.add(key)
        else:
            queue.append((now + _backoff(config, failures[key]), key))

    def handle_pool_death(now: float) -> None:
        """Rebuild after ``BrokenProcessPool``; resubmit in-flight work
        without charging budgets (guilt is unattributable)."""
        nonlocal rebuilds
        rebuilds += 1
        for att in pending.values():
            if att.key not in finished and att.key not in failed:
                if on_retry is not None:
                    on_retry(att.key, "worker-death")
                queue.append((now + config.backoff_seconds, att.key))
        pending.clear()
        retire_pool()
        if rebuilds > config.max_pool_rebuilds:
            for _, key in queue:
                failed.add(key)
            queue.clear()

    last_tick = time.monotonic()
    try:
        while queue or pending:
            now = time.monotonic()
            due = [item for item in queue if item[0] <= now]
            queue[:] = [item for item in queue if item[0] > now]
            for i, (not_before, key) in enumerate(due):
                if key in finished or key in failed:
                    continue
                try:
                    fut = get_pool().submit(worker, jobs[key])
                except BrokenProcessPool:
                    # Everything not yet submitted goes back too — `due`
                    # was already carved out of the queue, so requeuing
                    # only the current item would silently drop the rest.
                    queue.extend(due[i:])
                    handle_pool_death(now)
                    break
                pending[fut] = _Attempt(key, failures.get(key, 0) + 1, now)

            if pending:
                done_futs, _ = wait(list(pending),
                                    timeout=config.poll_interval_seconds,
                                    return_when=FIRST_COMPLETED)
            else:
                done_futs = set()
                if queue:
                    time.sleep(config.poll_interval_seconds)

            now = time.monotonic()
            died = False
            for fut in _completion_order(done_futs, pending):
                att = pending.pop(fut, None)
                if att is None or att.key in finished or att.key in failed:
                    continue  # stale attempt abandoned by a timeout
                exc = fut.exception()
                if exc is None:
                    finished.add(att.key)
                    on_success(att.key, fut.result(), att.attempt,
                               now - att.submitted_at)
                elif isinstance(exc, BrokenProcessPool):
                    if on_retry is not None:
                        on_retry(att.key, "worker-death")
                    queue.append((now + config.backoff_seconds, att.key))
                    died = True
                else:
                    charge(att.key, "error", now)
            if died:
                handle_pool_death(now)

            if config.shard_timeout is not None:
                for fut, att in list(pending.items()):
                    if now - att.submitted_at > config.shard_timeout:
                        del pending[fut]
                        fut.cancel()  # best-effort; running tasks persist
                        charge(att.key, "timeout", now)

            if on_tick is not None and \
                    now - last_tick >= config.status_interval_seconds:
                on_tick()
                last_tick = now
    finally:
        if ephemeral:
            ephemeral[0].shutdown(wait=False, cancel_futures=True)
    return sorted(failed)


class CampaignRunner:
    """Drive one campaign grid to completion, checkpointing as it goes.

    ``worker`` is the module-level shard evaluator (normally
    :func:`repro.campaign.sched.evaluate_shard`; tests inject
    fault-raising stand-ins).  With a ``store`` the run is durable —
    every finished shard lands in the run directory before the next
    status write, and :meth:`run` with ``resume=True`` restores
    completed shards from disk instead of recomputing them.  Without a
    store the run is purely in-memory (the compatibility path for
    :func:`~repro.campaign.sched.run_schedulability_campaign` callers
    that never name a run directory).
    """

    def __init__(self, grid: GridLike,
                 worker: Callable[[Any], List[SchedulabilityPoint]], *,
                 config: Optional[RunnerConfig] = None,
                 store: Optional[CheckpointStore] = None,
                 model: Optional[OverheadModel] = None,
                 payloads: Optional[Mapping[str, Any]] = None,
                 note: str = "") -> None:
        self.grid = grid
        self.worker = worker
        self.config = config or RunnerConfig()
        self.store = store
        self.model = model
        # Per-shard extra job argument (trace-replay window payloads,
        # keyed by shard id).  When set, jobs become (spec, model,
        # payload) triples and the worker must accept them; the payload
        # is pure data derived from the grid, so it never affects the
        # checkpoint format or resume identity.
        self.payloads = payloads
        self.note = note
        self.progress = ProgressTracker(len(grid.plan()))

    def _model_fingerprint(self) -> Optional[str]:
        return None if self.model is None else repr(self.model)

    def _write_status(self, state: str) -> None:
        if self.store is not None:
            self.store.write_status(self.progress.snapshot(
                time.monotonic(), state=state, updated=_utc_now()))

    def run(self, *, resume: bool = False
            ) -> Dict[str, List[SchedulabilityPoint]]:
        """Execute (or finish) the campaign; return points per shard id.

        On ``KeyboardInterrupt`` the final status is written as
        ``"interrupted"`` before the exception propagates — completed
        shards are already on disk, so the run resumes where it stopped.
        """
        shards = self.grid.plan()
        by_id = {s.shard_id: s for s in shards}
        results: Dict[str, List[SchedulabilityPoint]] = {}
        done_before: Set[str] = set()

        if self.store is not None:
            self.store.initialize(self.grid,
                                  model_fingerprint=self._model_fingerprint(),
                                  created=_utc_now(), note=self.note)
            existing = self.store.completed_shards() & set(by_id)
            if existing and not resume:
                raise RunDirError(
                    f"{self.store.run_dir} already holds "
                    f"{len(existing)} completed shard(s); use resume, or "
                    f"a fresh directory for a new run")
            if resume:
                for sid in sorted(existing):
                    results[sid] = self.store.read_shard(sid)
                done_before = existing
        elif resume:
            raise RunDirError("resume requires a run directory")

        todo = [s for s in shards if s.shard_id not in done_before]
        self.progress = ProgressTracker(
            len(shards), completed_before_start=len(done_before))
        self.progress.start(time.monotonic())
        self._write_status("running")

        def on_success(key: str, points: List[SchedulabilityPoint],
                       attempts: int, elapsed: float) -> None:
            results[key] = points
            if self.store is not None:
                self.store.write_shard(by_id[key], points,
                                       attempts=attempts,
                                       elapsed_seconds=round(elapsed, 6))
            self.progress.record_success(elapsed)
            self._write_status("running")

        def on_retry(key: str, reason: str) -> None:
            self.progress.record_retry(reason)
            self._write_status("running")

        if self.payloads is None:
            jobs: Dict[str, Any] = {s.shard_id: (s, self.model)
                                    for s in todo}
        else:
            jobs = {s.shard_id: (s, self.model,
                                 self.payloads[s.shard_id])
                    for s in todo}
        try:
            failed = dispatch_jobs(jobs, self.worker, self.config,
                                   on_success=on_success,
                                   on_retry=on_retry,
                                   on_tick=lambda:
                                   self._write_status("running"))
        except KeyboardInterrupt:
            self._write_status("interrupted")
            raise
        if failed:
            self._write_status("failed")
            raise CampaignIncomplete(failed)
        self._write_status("complete")
        return results
