"""Locating the PD²/EDF-FF crossover — the paper's Fig. 3 reading.

The paper: "EDF consistently gives better performance than PD² in the
range [4, 14), after which PD² gives slightly better performance" (N=50),
and "the point at which PD² performs better than EDF-FF occurs at a
higher total utilization" as N grows (because for a fixed total
utilization, more tasks means lighter tasks, which partition better while
quantisation hurts PD² relatively more).

:func:`find_crossover` scans a utilization grid and returns the first
point from the top of the range downward at which PD²'s mean processor
count is at most EDF-FF's, with both means estimated over ``sets_per
point`` random sets.  Expressed as *mean task utilization* (U/N) the
crossover is comparable across task counts.

(This module lives in ``repro.campaign`` because the scan *is* a
campaign — it moved here from ``repro.analysis`` when the sweep driver
did, keeping the layer DAG acyclic: campaign imports analysis, never
the reverse.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.experiments import CampaignRow, utilization_grid
from ..overheads.model import OverheadModel
from .sched import run_schedulability_campaign

__all__ = ["CrossoverResult", "find_crossover"]


@dataclass(frozen=True)
class CrossoverResult:
    """Where (if anywhere) PD² catches EDF-FF on the scanned grid."""

    n_tasks: int
    #: Total utilization of the first scanned point (from the top of the
    #: grid downward) where mean M_PD2 <= mean M_FF; None if nowhere.
    crossover_utilization: Optional[float]
    rows: List[CampaignRow]

    @property
    def crossover_mean_task_utilization(self) -> Optional[float]:
        if self.crossover_utilization is None:
            return None
        return self.crossover_utilization / self.n_tasks

    @property
    def crossed(self) -> bool:
        return self.crossover_utilization is not None


def find_crossover(n_tasks: int, *, points: int = 10,
                   sets_per_point: int = 20, seed: int = 0,
                   model: Optional[OverheadModel] = None,
                   utilizations: Optional[Sequence[float]] = None,
                   workers: int = 1) -> CrossoverResult:
    """Scan the paper's U-range (N/30 .. N/3 by default) for the
    crossover.

    The scan walks from the *highest* utilization downward and reports
    the largest contiguous region from the top where PD² is at least
    tied — matching how the paper describes the curves ("after which PD²
    gives slightly better performance").
    """
    grid = list(utilizations) if utilizations is not None \
        else utilization_grid(n_tasks, points=points)
    rows = run_schedulability_campaign(
        n_tasks, grid, sets_per_point=sets_per_point, seed=seed,
        model=model, workers=workers)
    crossover: Optional[float] = None
    for row in reversed(rows):
        if row.m_pd2.mean <= row.m_ff.mean:
            crossover = row.utilization
        else:
            break
    return CrossoverResult(n_tasks=n_tasks, crossover_utilization=crossover,
                           rows=rows)
