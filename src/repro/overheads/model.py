"""The system-overhead model: C, S_EDF(N), S_PD2(N, M), D(T), q.

The paper's schedulability comparison (Figs. 3–4) charges both approaches
for three kinds of overhead (Sec. 4):

* **context switching** — a constant ``C`` per switch; the paper fixes
  C = 5 µs ("between 1 and 10 µs in modern processors");
* **scheduling** — ``S_EDF(N)`` per EDF invocation and ``S_PD2(N, M)`` per
  PD² invocation, taken from the Fig. 2 measurements (PD² runs one
  system-wide scheduler, so its cost grows with both the task count and
  the processor count; EDF's per-processor schedulers do not);
* **cache-related preemption delay** — a per-task ``D(T)``, drawn
  uniformly from [0, 100] µs (mean 33.3 µs), charged on every resumption
  after a preemption or migration under the paper's cold-cache assumption.

The default scheduling-cost curves are piecewise-linear interpolations of
the values read off Fig. 2 (933 MHz hardware, µs).  They are deliberately
*data*, not code: pass ``sched_edf`` / ``sched_pd2`` callables to use
values measured on your own machine with :mod:`repro.overheads.measure`
instead — the README documents that Python-measured constants are ~100×
larger and move the crossovers accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

__all__ = ["OverheadModel", "interp_table", "PAPER_EDF_TABLE", "PAPER_PD2_TABLES"]


def interp_table(xs: Sequence[float], ys: Sequence[float]) -> Callable[[float], float]:
    """Piecewise-linear interpolation with flat extrapolation at the ends."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two or more matching points")
    if any(b <= a for a, b in zip(xs, xs[1:])):
        raise ValueError("x values must be strictly increasing")
    xs = list(xs)
    ys = list(ys)

    def f(x: float) -> float:
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        for i in range(len(xs) - 1):
            if x <= xs[i + 1]:
                t = (x - xs[i]) / (xs[i + 1] - xs[i])
                return ys[i] + t * (ys[i + 1] - ys[i])
        raise AssertionError("unreachable")

    return f


#: Fig. 2(a), EDF curve: per-invocation cost in µs vs. task count.
PAPER_EDF_TABLE: Tuple[Sequence[float], Sequence[float]] = (
    (15, 100, 250, 500, 1000),
    (0.8, 1.2, 1.6, 2.0, 2.5),
)

#: Fig. 2(a)/(b), PD² curves: per-invocation cost in µs vs. task count,
#: one table per processor count (interpolated in log2 M between rows).
PAPER_PD2_TABLES = {
    1: ((15, 100, 250, 500, 1000), (1.0, 2.5, 3.5, 5.0, 7.5)),
    2: ((15, 100, 250, 500, 1000), (1.5, 3.5, 5.0, 7.0, 10.0)),
    4: ((15, 100, 250, 500, 1000), (2.0, 5.0, 8.0, 11.0, 16.0)),
    8: ((15, 100, 250, 500, 1000), (3.0, 8.0, 13.0, 18.0, 27.0)),
    16: ((15, 100, 250, 500, 1000), (5.0, 13.0, 21.0, 30.0, 45.0)),
}


# The paper tables are module constants, so their interpolators are built
# once at import instead of per call — campaign profiles showed closure
# construction inside _paper_pd2 dominating the Eq. (3) fixed point.
_PAPER_EDF_INTERP = interp_table(*PAPER_EDF_TABLE)
_PAPER_PD2_INTERPS = {m: interp_table(*tab) for m, tab in PAPER_PD2_TABLES.items()}
_PAPER_PD2_MS = sorted(PAPER_PD2_TABLES)


def _paper_edf(n: float) -> float:
    return _PAPER_EDF_INTERP(n)


def _paper_pd2(n: float, m: float) -> float:
    ms = _PAPER_PD2_MS
    m = max(ms[0], min(m, ms[-1]))
    lo = max(k for k in ms if k <= m)
    hi = min(k for k in ms if k >= m)
    y_lo = _PAPER_PD2_INTERPS[lo](n)
    if lo == hi:
        return y_lo
    y_hi = _PAPER_PD2_INTERPS[hi](n)
    t = (math.log2(m) - math.log2(lo)) / (math.log2(hi) - math.log2(lo))
    return y_lo + t * (y_hi - y_lo)


def _zero_edf(n: float) -> float:
    return 0.0


def _zero_pd2(n: float, m: float) -> float:
    return 0.0


@dataclass
class OverheadModel:
    """All overhead constants for the Eq. (3) inflation, in µs ticks.

    ``sched_edf(N)`` and ``sched_pd2(N, M)`` return µs as floats (the
    inflation code rounds results up to whole ticks at the end, never
    before — premature rounding would bias small tasks).
    """

    context_switch: int = 5
    quantum: int = 1000
    sched_edf: Callable[[float], float] = field(default=_paper_edf)
    sched_pd2: Callable[[float, float], float] = field(default=_paper_pd2)

    def __post_init__(self) -> None:
        if self.context_switch < 0:
            raise ValueError("context switch cost must be nonnegative")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        # Per-instance cost memos: campaigns call these with a handful of
        # distinct (N, M) pairs millions of times.  The curves are pure
        # functions of their arguments, so memoisation is invisible.
        # (Plain instance attributes — not dataclass fields — so equality
        # and repr still compare the model parameters only.)
        self._edf_fixed_memo: dict = {}
        self._pd2_cost_memo: dict = {}

    def edf_fixed_inflation(self, n_tasks: int) -> int:
        """The task-independent EDF term ``2(S_EDF + C)``, rounded up."""
        memo = self._edf_fixed_memo
        out = memo.get(n_tasks)
        if out is None:
            out = memo[n_tasks] = math.ceil(
                2 * (self.sched_edf(n_tasks) + self.context_switch))
        return out

    def pd2_sched_cost(self, n_tasks: int, processors: int) -> float:
        """``S_PD2(N, M)`` in µs."""
        memo = self._pd2_cost_memo
        out = memo.get((n_tasks, processors))
        if out is None:
            out = memo[(n_tasks, processors)] = \
                self.sched_pd2(n_tasks, processors)
        return out

    @classmethod
    def zero(cls, quantum: int = 1000) -> "OverheadModel":
        """A no-overhead model (isolates pure quantisation loss)."""
        return cls(context_switch=0, quantum=quantum,
                   sched_edf=_zero_edf, sched_pd2=_zero_pd2)

    def signature(self) -> Optional[Tuple]:
        """Hashable identity of this model, for result caching.

        Two models with equal signatures produce identical schedulability
        results for every task set.  Returns ``None`` when the scheduling
        cost curves are custom callables whose behaviour cannot be
        fingerprinted — callers must then skip caching rather than risk
        serving results computed under a different model.
        """
        if self.sched_edf is _paper_edf and self.sched_pd2 is _paper_pd2:
            curves = "paper-fig2"
        elif self.sched_edf is _zero_edf and self.sched_pd2 is _zero_pd2:
            curves = "zero"
        else:
            return None
        return (curves, self.context_switch, self.quantum)
