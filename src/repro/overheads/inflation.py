"""Execution-cost inflation — Eq. (3) of the paper.

Schedulability tests assume zero-cost scheduling; real systems pay for
context switches, scheduler invocations, and cold caches after
preemptions.  The paper folds all of it into each task's execution cost:

EDF branch::

    e' = e + 2(S_EDF + C) + max_{U in P_T} D(U)

(the max term depends on the processor's other residents, so it is applied
by :class:`~repro.partition.accept.EDFOverheadTest` during packing; here we
expose the fixed part).

PD² branch (a fixed point, because the preemption count depends on the
inflated length itself)::

    e' = e + ceil(e'/q)·S_PD2 + C + min(ceil(e'/q) − 1, p/q − ceil(e'/q)) · (C + D(T))

* ``ceil(e'/q)·S_PD2`` — the scheduler runs at the head of every quantum
  the job occupies;
* ``+ C`` — the job's first dispatch;
* the ``min(E−1, P−E)`` term — the paper's improved preemption bound: a
  job spanning ``E`` of its period's ``P`` quanta is preempted at most
  ``E−1`` times, but also at most ``P−E`` times because back-to-back
  quanta continue on the same processor; each preemption costs a switch
  plus the task's cache reload ``D(T)``.

The iteration state is the quantum count ``E = ceil(e'/q)``, an integer in
``[1, P]``, so the fixed point is found exactly; the paper observes ~5
iterations, which :func:`pd2_inflate` reports for the Sec.-4 claim check.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, NamedTuple, Optional, Sequence

from ..workload.spec import TaskSpec
from .model import OverheadModel

__all__ = ["PD2Inflation", "pd2_inflate", "pd2_inflate_set", "pd2_total_weight"]


class PD2Inflation(NamedTuple):
    """Result of inflating one task for PD² on a given platform.

    A named tuple rather than a dataclass: Fig. 3 campaigns build tens of
    thousands of these per grid point, and tuple construction is several
    times cheaper than frozen-dataclass ``object.__setattr__`` init.
    """

    spec: TaskSpec
    inflated_execution: int     # e' in ticks
    quanta: int                 # E = ceil(e'/q)
    period_quanta: int          # P = p/q
    iterations: int

    @property
    def weight(self) -> Fraction:
        """The quantised weight E/P the PD² feasibility test charges."""
        return Fraction(self.quanta, self.period_quanta)

    @property
    def feasible(self) -> bool:
        return self.quanta <= self.period_quanta


def pd2_inflate(spec: TaskSpec, model: OverheadModel, n_tasks: int,
                processors: int, sched_cost: Optional[float] = None, *,
                max_iterations: int = 64) -> PD2Inflation:
    """Fixed-point Eq. (3) inflation of one task for PD².

    Returns an inflation whose ``feasible`` flag is False when the inflated
    cost exceeds the period (the task cannot run even alone).  The fixed
    point is taken over ``E``; if the iteration ever cycles (possible in
    principle because the ``min`` term can shrink as ``E`` grows), the
    largest ``E`` seen is kept — a conservative (safe) choice.

    ``sched_cost`` lets set-level callers pass a precomputed
    ``S_PD2(n_tasks, processors)`` — it is the same for every task in a
    set, and the Fig. 3 campaign inflates millions of tasks.
    """
    q = model.quantum
    if spec.period % q != 0:
        raise ValueError(
            f"{spec.name or 'task'}: period {spec.period} not a quantum multiple"
        )
    p_quanta = spec.period // q
    s_pd2 = (model.pd2_sched_cost(n_tasks, processors)
             if sched_cost is None else sched_cost)
    c = model.context_switch
    switch_cost = c + spec.cache_delay
    e = spec.execution
    ceil = math.ceil

    e_prime = e
    e_quanta = -(-e_prime // q)
    # The cycle-detection set is only needed from the second iteration on
    # (it is empty during the first membership test), and most tasks
    # converge in one or two — so its allocation is deferred.
    seen: Optional[set] = None
    iterations = 0
    while True:
        iterations += 1
        preemptions = min(e_quanta - 1, p_quanta - e_quanta)
        if preemptions < 0:  # E already exceeds the period: infeasible
            return PD2Inflation(spec, e_prime, e_quanta, p_quanta, iterations)
        new_e_prime = ceil(
            e + e_quanta * s_pd2 + c + preemptions * switch_cost
        )
        new_quanta = -(-new_e_prime // q)
        if new_quanta == e_quanta or iterations >= max_iterations:
            return PD2Inflation(spec, new_e_prime, new_quanta, p_quanta, iterations)
        if seen is None:
            seen = {e_quanta}
        elif new_quanta in seen:
            # Cycle: keep the conservative (largest) quantum count.
            e_quanta = max(new_quanta, e_quanta)
            e_prime = e_quanta * q
            return PD2Inflation(spec, e_prime, e_quanta, p_quanta, iterations)
        else:
            seen.add(e_quanta)
        e_prime, e_quanta = new_e_prime, new_quanta


def pd2_inflate_set(specs: Sequence[TaskSpec], model: OverheadModel,
                    processors: int) -> List[PD2Inflation]:
    """Inflate a whole set (``n_tasks`` is the set size, as in the paper).

    The Eq. (3) fixed point is inlined here rather than delegated to
    :func:`pd2_inflate` — the Fig. 3 search calls this for every candidate
    M of every random set, and the per-task call overhead is measurable.
    Keep the loop body in lockstep with :func:`pd2_inflate`; the test
    suite pins the two to identical results over random sets.
    """
    if not specs:
        return []
    n = len(specs)
    s_pd2 = model.pd2_sched_cost(n, processors)
    c = model.context_switch
    q = model.quantum
    ceil = math.ceil
    out: List[PD2Inflation] = []
    append = out.append
    for spec in specs:
        p = spec.period
        if p % q != 0:
            raise ValueError(
                f"{spec.name or 'task'}: period {p} not a quantum multiple"
            )
        p_quanta = p // q
        switch_cost = c + spec.cache_delay
        e = spec.execution
        e_prime = e
        e_quanta = -(-e_prime // q)
        seen = None
        iterations = 0
        while True:
            iterations += 1
            preemptions = min(e_quanta - 1, p_quanta - e_quanta)
            if preemptions < 0:
                append(PD2Inflation(spec, e_prime, e_quanta, p_quanta,
                                    iterations))
                break
            new_e_prime = ceil(e + e_quanta * s_pd2 + c
                               + preemptions * switch_cost)
            new_quanta = -(-new_e_prime // q)
            if new_quanta == e_quanta or iterations >= 64:
                append(PD2Inflation(spec, new_e_prime, new_quanta, p_quanta,
                                    iterations))
                break
            if seen is None:
                seen = {e_quanta}
            elif new_quanta in seen:
                e_quanta = max(new_quanta, e_quanta)
                append(PD2Inflation(spec, e_quanta * q, e_quanta, p_quanta,
                                    iterations))
                break
            else:
                seen.add(e_quanta)
            e_prime, e_quanta = new_e_prime, new_quanta
    return out


def pd2_total_weight(inflations: Sequence[PD2Inflation]) -> Fraction:
    """Exact total quantised weight ``sum E/P`` — compare against M.

    Accumulated as an unnormalised numerator/denominator pair, reduced by
    one final gcd — exactly the same rational as summing the ``weight``
    fractions, minus a gcd per task.
    """
    num, den = 0, 1
    for inf in inflations:
        num = num * inf.period_quanta + inf.quanta * den
        den *= inf.period_quanta
    return Fraction(num, den)
