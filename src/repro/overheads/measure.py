"""Measuring per-invocation scheduling overhead — the Fig. 2 experiment.

The paper timed one invocation of each scheduler (binary-heap ready
queues) on a 933 MHz Linux box over randomly generated task sets run to
time 10^6, averaging because the clock was coarser than the costs.  We do
the same on this interpreter: ``perf_counter_ns`` around each scheduling
decision, averaged over slots/invocations and task sets.  Absolute numbers
are Python-sized (~100× the paper's C implementation); the *shape* — PD²
grows with N and with M because one sequential scheduler serves all
processors, EDF stays low and nearly flat — is the reproduced result.

For PD² an invocation is one slot's work (release processing + selecting
up to M subtasks + successor activation); for EDF it is one event's work
(queue maintenance + pick).  These match the paper's definitions in Sec. 4.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Optional

from ..core.pd2 import PD2Scheduler
from ..workload.generator import TaskSetGenerator, specs_to_uni_tasks
from ..core.uniproc import UniprocSimulator

__all__ = ["OverheadSample", "measure_pd2_overhead", "measure_edf_overhead"]


@dataclass(frozen=True)
class OverheadSample:
    """Mean per-invocation scheduling cost over a batch of task sets."""

    n_tasks: int
    processors: int
    algorithm: str
    mean_ns: float
    invocations: int
    task_sets: int

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


def _quantum_generator(seed: int) -> TaskSetGenerator:
    # Periods 50–5000 quanta on a unit grid (i.e. already in quanta).
    return TaskSetGenerator(seed, quantum=1, min_period=50, max_period=5000)


def measure_pd2_overhead(n_tasks: int, processors: int, *,
                         task_sets: int = 5, slots: int = 2000,
                         seed: int = 0,
                         utilization: Optional[float] = None) -> OverheadSample:
    """Average PD² cost per slot (one scheduler invocation per slot).

    Task sets have total weight ``utilization`` (default: 85% of the
    platform, mirroring the paper's "total utilization at most one" per
    processor without sitting exactly at the boundary).
    """
    gen = _quantum_generator(seed)
    target = utilization if utilization is not None else 0.85 * processors
    target = min(target, 0.999 * n_tasks)
    total_ns = 0
    invocations = 0
    for _ in range(task_sets):
        specs = gen.generate(n_tasks, target)
        from ..workload.generator import specs_to_pfair_tasks
        tasks = specs_to_pfair_tasks(specs)
        sim = PD2Scheduler(tasks, processors)
        for t in range(slots):
            t0 = _time.perf_counter_ns()
            sim.step(t)
            total_ns += _time.perf_counter_ns() - t0
        invocations += slots
    return OverheadSample(
        n_tasks=n_tasks, processors=processors, algorithm="PD2",
        mean_ns=total_ns / invocations, invocations=invocations,
        task_sets=task_sets,
    )


def measure_edf_overhead(n_tasks: int, *, task_sets: int = 5,
                         horizon: int = 2_000_000, seed: int = 0,
                         utilization: Optional[float] = None) -> OverheadSample:
    """Average EDF cost per scheduler invocation on one processor.

    ``horizon`` is in ticks (µs); with 50 ms–5 s periods the default sees a
    few thousand invocations per set.
    """
    gen = TaskSetGenerator(seed)
    target = utilization if utilization is not None else 0.85
    target = min(target, 0.999 * n_tasks)
    total_ns = 0
    invocations = 0
    for _ in range(task_sets):
        specs = gen.generate(n_tasks, target)
        tasks = specs_to_uni_tasks(specs)
        sim = UniprocSimulator(tasks, policy="edf", time_invocations=True)
        res = sim.run(horizon)
        total_ns += res.sched_ns_total
        invocations += res.invocations
    if invocations == 0:
        raise RuntimeError("no scheduler invocations; raise the horizon")
    return OverheadSample(
        n_tasks=n_tasks, processors=1, algorithm="EDF",
        mean_ns=total_ns / invocations, invocations=invocations,
        task_sets=task_sets,
    )
