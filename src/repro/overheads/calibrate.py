"""Calibrating the overhead model from measurements on *this* machine.

The default :class:`~repro.overheads.model.OverheadModel` carries the
paper's 933 MHz µs magnitudes so Figs. 3–4 reproduce the published
regime.  For the complementary question — *what would the comparison look
like if the scheduler really cost what this Python implementation
costs?* — this module measures the Fig. 2 quantities with
:mod:`repro.overheads.measure` and fits interpolation tables of the same
shape the defaults use.

Python-measured scheduling costs are of the same order as the paper's
but sit on top of its constants differently (and a real deployment would
also re-measure C and D); the calibrated model is therefore a sensitivity
instrument, not a replacement default.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from .measure import measure_edf_overhead, measure_pd2_overhead
from .model import OverheadModel, interp_table

__all__ = ["calibrate_model"]


def calibrate_model(*, task_counts: Sequence[int] = (15, 50, 100, 250),
                    processor_counts: Sequence[int] = (1, 2, 4, 8),
                    task_sets: int = 2, slots: int = 500,
                    edf_horizon: int = 500_000, seed: int = 0,
                    context_switch: int = 5,
                    quantum: int = 1000) -> OverheadModel:
    """Measure S_EDF(N) and S_PD2(N, M) here and now; return the model.

    The measurement grid mirrors :data:`PAPER_EDF_TABLE` /
    :data:`PAPER_PD2_TABLES`; between grid points the model interpolates
    linearly (and in log2 M between processor rows), exactly like the
    paper-valued defaults.  ``context_switch`` and ``quantum`` stay
    caller-specified: they are hardware/OS properties this harness cannot
    observe from user space.
    """
    ns = sorted(set(task_counts))
    ms = sorted(set(processor_counts))
    if len(ns) < 2:
        raise ValueError("need at least two task counts to interpolate")
    edf_us = [measure_edf_overhead(n, task_sets=task_sets,
                                   horizon=edf_horizon, seed=seed + n).mean_us
              for n in ns]
    pd2_tables = {}
    for m in ms:
        ys = [measure_pd2_overhead(n, m, task_sets=task_sets, slots=slots,
                                   seed=seed + n).mean_us for n in ns]
        pd2_tables[m] = (ns, ys)

    edf_fn = interp_table(ns, edf_us)

    import math

    def pd2_fn(n: float, m: float) -> float:
        keys = sorted(pd2_tables)
        m = max(keys[0], min(m, keys[-1]))
        lo = max(k for k in keys if k <= m)
        hi = min(k for k in keys if k >= m)
        y_lo = interp_table(*pd2_tables[lo])(n)
        if lo == hi:
            return y_lo
        y_hi = interp_table(*pd2_tables[hi])(n)
        t = (math.log2(m) - math.log2(lo)) / (math.log2(hi) - math.log2(lo))
        return y_lo + t * (y_hi - y_lo)

    return OverheadModel(context_switch=context_switch, quantum=quantum,
                         sched_edf=edf_fn, sched_pd2=pd2_fn)
