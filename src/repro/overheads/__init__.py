"""System-overhead accounting: the model (C, S, D, q), Eq. (3) execution-
cost inflation, and the Fig. 2 per-invocation measurement harness."""

from .calibrate import calibrate_model
from .inflation import PD2Inflation, pd2_inflate, pd2_inflate_set, pd2_total_weight
from .measure import OverheadSample, measure_edf_overhead, measure_pd2_overhead
from .model import (
    OverheadModel,
    PAPER_EDF_TABLE,
    PAPER_PD2_TABLES,
    interp_table,
)

__all__ = [
    "calibrate_model",
    "OverheadModel",
    "interp_table",
    "PAPER_EDF_TABLE",
    "PAPER_PD2_TABLES",
    "PD2Inflation",
    "pd2_inflate",
    "pd2_inflate_set",
    "pd2_total_weight",
    "OverheadSample",
    "measure_pd2_overhead",
    "measure_edf_overhead",
]
