"""Measured synchronization: quantum-boundary locking vs. preemptable locks.

:mod:`repro.sync.locks` states the analytic bounds; this module *runs*
them.  On top of a PD² schedule trace we overlay critical-section
activity: each scheduled quantum of a lock-using task issues requests at
random offsets, and we compare two protocols:

* **quantum-boundary locking** (the Pfair-enabled protocol of Sec. 5.1):
  a request that cannot finish before the slot boundary is deferred to
  the task's next quantum.  Locks are always free at boundaries, so a
  *preempted* task never holds a lock and nobody ever blocks on an
  absent holder.  Cost: the deferral latency, bounded by one section.
* **naive preemptable locking**: sections start whenever requested; a
  section still open at the boundary is held *across* the preemption,
  and any other task requesting the resource in the gap blocks until the
  holder is next scheduled — the priority-inversion shape multiprocessor
  locking protocols (MPCP etc.) exist to tame.

The experiment reports deferral counts and worst-case latencies for the
former and cross-preemption blocking events and durations for the
latter; ``benchmarks/bench_ext_locking.py`` prints the table.

This is an *overlay* model: lock activity is replayed on top of a fixed
schedule trace, and a blocked requester's subsequent quanta are not
re-planned.  That simplification biases *against* the quantum-boundary
protocol (its deferral latency is counted in full, while the naive
protocol's knock-on delays are not), so the measured contrast is
conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.task import PfairTask
from ..sim.trace import ScheduleTrace

__all__ = ["LockingOutcome", "overlay_critical_sections"]


@dataclass
class LockingOutcome:
    """Measured synchronization costs over one schedule."""

    protocol: str
    requests: int = 0
    #: Quantum-boundary protocol: sections pushed to the next quantum.
    deferrals: int = 0
    #: Worst start-delay of a deferred section, in ticks.
    max_deferral_ticks: int = 0
    #: Naive protocol: requests that found the lock held by a task that is
    #: not currently scheduled (blocked across a preemption).
    cross_preemption_blocks: int = 0
    #: Worst such blocking duration, in ticks.
    max_block_ticks: int = 0


def overlay_critical_sections(
    trace: ScheduleTrace,
    tasks: Sequence[PfairTask],
    horizon: int,
    quantum_ticks: int,
    *,
    section_ticks: int,
    request_probability: float = 0.5,
    resource_count: int = 1,
    seed: int = 0,
) -> Tuple[LockingOutcome, LockingOutcome]:
    """Replay ``trace`` under both locking protocols.

    Each scheduled quantum of each task requests, with
    ``request_probability``, one critical section of ``section_ticks`` on
    a random resource at a uniform offset within the quantum.  Returns
    ``(boundary_outcome, naive_outcome)`` for identical request streams.
    """
    if not 0 < section_ticks <= quantum_ticks:
        raise ValueError("need 0 < section_ticks <= quantum_ticks")
    rng = np.random.default_rng(seed)
    # Build the deterministic request stream: (slot, task_id, offset, res).
    requests: List[Tuple[int, int, int, int]] = []
    slots_of: Dict[int, List[int]] = {}
    for task in tasks:
        slots_of[task.task_id] = [a.slot for a in trace.of_task(task)
                                  if a.slot < horizon]
        for slot in slots_of[task.task_id]:
            if rng.uniform() < request_probability:
                offset = int(rng.integers(0, quantum_ticks))
                res = int(rng.integers(0, resource_count))
                requests.append((slot, task.task_id, offset, res))
    requests.sort()

    boundary = LockingOutcome(protocol="quantum-boundary")
    naive = LockingOutcome(protocol="naive-preemptable")
    boundary.requests = naive.requests = len(requests)

    # --- quantum-boundary protocol ---------------------------------------
    next_slot_of: Dict[Tuple[int, int], Optional[int]] = {}
    for slot, tid, offset, _res in requests:
        if offset + section_ticks <= quantum_ticks:
            continue  # fits before the boundary: granted in place
        boundary.deferrals += 1
        later = [s for s in slots_of[tid] if s > slot]
        if later:
            # Starts at the top of the next quantum.
            delay = (later[0] - slot) * quantum_ticks - offset
            boundary.max_deferral_ticks = max(boundary.max_deferral_ticks,
                                              delay)

    # --- naive preemptable protocol ---------------------------------------
    #: resource -> (holder task id, absolute release tick) while held.
    held: Dict[int, Tuple[int, int]] = {}
    for slot, tid, offset, res in requests:
        start = slot * quantum_ticks + offset
        if res in held:
            holder, free_at = held[res]
            if free_at > start:
                if holder != tid:
                    naive.cross_preemption_blocks += 1
                    naive.max_block_ticks = max(naive.max_block_ticks,
                                                free_at - start)
                start = free_at
        end_of_quantum = (slot + 1) * quantum_ticks
        if start + section_ticks <= end_of_quantum:
            held[res] = (tid, start + section_ticks)
            continue
        # The section crosses the boundary: the holder is preempted mid-
        # section and resumes it at its next quantum; the lock stays held
        # across the gap.
        done_in_quantum = max(0, end_of_quantum - start)
        remaining = section_ticks - done_in_quantum
        later = [s for s in slots_of[tid] if s > slot]
        if later:
            free_at = later[0] * quantum_ticks + remaining
        else:
            free_at = horizon * quantum_ticks + remaining
        held[res] = (tid, free_at)
    return boundary, naive
