"""Lock-free retry bounds under Pfair's tight synchrony (paper, Sec. 5.1).

Lock-free operations run a *retry loop*: read state, compute, attempt a
compare-and-swap, repeat on interference.  On a multiprocessor the naive
retry bound is unbounded (any concurrent writer can invalidate the
attempt), which made lock-free objects look impractical for hard real-time
multiprocessors.  Holman & Anderson observed that in a Pfair-scheduled
system contention is bounded and *quantised*: within one slot, at most one
task per other processor can interfere, and each interferer executes at
most ``floor(Q / op) + 1`` operations in a slot of ``Q`` ticks.

These combinatorics are small and exact, so we expose them as formulas and
as a quantised interference simulation used by the tests to confirm the
bound is (a) safe and (b) tight within its model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["RetryBound", "pfair_retry_bound", "simulate_retry_loop"]


@dataclass(frozen=True)
class RetryBound:
    """Worst-case retries and total time of one lock-free operation."""

    interferers: int
    ops_per_interferer: int
    max_retries: int
    worst_case_ticks: int


def pfair_retry_bound(processors: int, quantum: int, op_ticks: int) -> RetryBound:
    """Worst-case retries of one lock-free operation within one quantum.

    ``op_ticks`` is the length of one access attempt (tens of µs in the
    paper's measurements, i.e. far below the quantum).  Within the
    operation's quantum, each of the other ``M-1`` processors runs exactly
    one subtask, which can perform at most ``floor(Q/op) + 1`` conflicting
    operations; each successful conflicting operation can cause at most
    one retry.  The bound is therefore exact within the model::

        retries <= (M - 1) * (floor(Q/op) + 1)

    versus "unbounded" without the tight-synchrony argument.
    """
    if processors < 1 or quantum <= 0 or op_ticks <= 0:
        raise ValueError("need processors >= 1 and positive quantum/op length")
    if op_ticks > quantum:
        raise ValueError("an operation longer than the quantum cannot be lock-free "
                         "under quantum-boundary discipline")
    per = quantum // op_ticks + 1
    retries = (processors - 1) * per
    return RetryBound(
        interferers=processors - 1,
        ops_per_interferer=per,
        max_retries=retries,
        worst_case_ticks=(retries + 1) * op_ticks,
    )


def simulate_retry_loop(processors: int, quantum: int, op_ticks: int, *,
                        rounds: int = 1000, seed: int = 0,
                        adversarial: bool = False) -> List[int]:
    """Monte-Carlo (or adversarial) retry counts for one operation.

    Each round places the operation in a quantum alongside ``M-1``
    interfering subtasks that issue conflicting operations at random
    offsets (or back-to-back when ``adversarial``); a retry happens when
    some interferer's operation commits inside our attempt window.
    Returned counts never exceed :func:`pfair_retry_bound` — the property
    test in the suite asserts exactly that.
    """
    bound = pfair_retry_bound(processors, quantum, op_ticks)
    rng = np.random.default_rng(seed)
    results: List[int] = []
    for _ in range(rounds):
        commits: List[int] = []
        for j in range(processors - 1):
            if adversarial:
                # Stagger interferers one tick apart so every commit lands
                # strictly inside the victim's current attempt window.
                times = [k * op_ticks + j + 1
                         for k in range(bound.ops_per_interferer)
                         if k * op_ticks + j + 1 <= quantum]
            else:
                k = int(rng.integers(0, bound.ops_per_interferer + 1))
                times = sorted(rng.integers(1, quantum + 1, size=k).tolist())
            commits.extend(times)
        commits.sort()
        # Our operation restarts whenever a commit lands strictly inside
        # its current attempt window.
        retries = 0
        start = 0
        i = 0
        while i < len(commits):
            c = commits[i]
            if start < c < start + op_ticks:
                retries += 1
                start = c
            i += 1
        results.append(retries)
    return results
