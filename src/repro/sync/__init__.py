"""Synchronization under Pfair's tight synchrony: quantum-boundary locking
and lock-free retry bounds (paper, Sec. 5.1)."""

from .lockfree import RetryBound, pfair_retry_bound, simulate_retry_loop
from .simulate import LockingOutcome, overlay_critical_sections
from .locks import (
    CriticalSection,
    QuantumLockManager,
    max_blocking,
    mpcp_remote_blocking,
)

__all__ = [
    "CriticalSection",
    "QuantumLockManager",
    "max_blocking",
    "mpcp_remote_blocking",
    "LockingOutcome",
    "overlay_critical_sections",
    "RetryBound",
    "pfair_retry_bound",
    "simulate_retry_loop",
]
