"""Quantum-boundary locking: synchronization exploiting Pfair's tight synchrony.

Under Pfair scheduling each subtask's execution is effectively
non-preemptive *within* its slot, so lock-related problems (priority
inversion, remote blocking) can be avoided entirely by making sure every
lock is released before the quantum boundary: a critical section that is
not guaranteed to finish by the boundary simply is not started — the task
spins/does other work and retries at the top of its next quantum (paper,
Sec. 5.1; Holman & Anderson's locking work).

:class:`QuantumLockManager` models that protocol over a quantum of ``Q``
ticks: requests are admitted iff the remaining time in the current quantum
covers the critical-section length.  :func:`max_blocking` gives the
protocol's worst-case cost — a task can lose at most the longest critical
section of a *shorter* duration than the quantum per quantum (the delayed
start), and never blocks across processors, versus the multiprocessor
priority-ceiling alternative whose remote blocking grows with the number
of tasks sharing the resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["CriticalSection", "QuantumLockManager", "max_blocking", "mpcp_remote_blocking"]


@dataclass(frozen=True)
class CriticalSection:
    """A lock request: resource name and section length in ticks."""

    resource: str
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("critical sections must have positive length")


@dataclass
class QuantumLockManager:
    """Admission control for critical sections against quantum boundaries.

    ``quantum`` is the slot length in ticks.  :meth:`request` is called
    with the task's current offset into its quantum; sections that would
    cross the boundary are *deferred* (returned as such), never started —
    guaranteeing that all locks are free at every boundary, so preempted
    tasks never hold locks and lock holders are never preempted.
    """

    quantum: int
    #: (task, resource, start_offset) log of granted sections.
    granted: List[Tuple[str, str, int]] = field(default_factory=list)
    deferred: List[Tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")

    def request(self, task: str, section: CriticalSection, offset: int) -> bool:
        """Attempt to start ``section`` at ``offset`` ticks into the quantum.

        Returns True (granted: it provably completes by the boundary) or
        False (deferred to the task's next quantum).
        """
        if not 0 <= offset < self.quantum:
            raise ValueError(f"offset {offset} outside quantum [0, {self.quantum})")
        if section.length > self.quantum:
            raise ValueError(
                f"critical section of {section.length} ticks cannot fit in a "
                f"{self.quantum}-tick quantum; split it or grow the quantum"
            )
        if offset + section.length <= self.quantum:
            self.granted.append((task, section.resource, offset))
            return True
        self.deferred.append((task, section.resource, offset))
        return False


def max_blocking(sections: List[CriticalSection], quantum: int) -> int:
    """Worst-case per-quantum delay a task suffers under quantum-boundary
    locking: the longest section may be deferred to the next quantum, so
    the start of useful work slips by at most ``max length`` ticks — and
    no task ever waits on a lock *holder* (locks are always free at slot
    boundaries)."""
    if not sections:
        return 0
    longest = max(s.length for s in sections)
    if longest > quantum:
        raise ValueError("a section exceeds the quantum; the protocol needs q >= max section")
    return longest


def mpcp_remote_blocking(sections_per_task: Dict[str, List[CriticalSection]],
                         task: str) -> int:
    """A coarse lower bound on MPCP-style remote blocking for comparison:
    under a multiprocessor locking protocol a task can be blocked once per
    request by the longest conflicting section of *every other* task
    (global locks serialise across processors).

    This is deliberately the optimistic (one-section-each) form — even it
    grows linearly with the number of contending tasks, whereas
    :func:`max_blocking` is a constant independent of contention.
    """
    mine = {s.resource for s in sections_per_task.get(task, [])}
    total = 0
    for other, secs in sections_per_task.items():
        if other == task:
            continue
        conflicting = [s.length for s in secs if s.resource in mine]
        if conflicting:
            total += max(conflicting)
    return total
