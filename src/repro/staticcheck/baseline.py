"""Committed-baseline support: fail CI only on *new* violations.

A baseline is a JSON file of violation fingerprints (rule + path +
message, deliberately line-insensitive).  Adopting the checker on a tree
with pre-existing violations takes ``--write-baseline`` once; every run
after that reports only violations absent from the baseline, and the
baseline is expected to shrink monotonically to the empty file this
repository commits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from .violations import Violation

__all__ = ["load_baseline", "write_baseline", "split_by_baseline"]

_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints recorded in ``path`` (empty set for a missing file)."""
    path = Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: not a staticcheck baseline (want version {_VERSION})")
    return {entry["fingerprint"] for entry in data.get("violations", [])}


def write_baseline(path: Path, violations: Iterable[Violation]) -> None:
    """Write ``violations`` as the new baseline (sorted, deduplicated)."""
    entries = sorted({v.fingerprint(): v for v in violations}.items())
    payload = {
        "version": _VERSION,
        "violations": [
            {
                "fingerprint": fingerprint,
                "rule": violation.rule_id,
                "path": violation.path,
                "message": violation.message,
            }
            for fingerprint, violation in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def split_by_baseline(violations: Iterable[Violation],
                      fingerprints: Set[str]
                      ) -> Tuple[List[Violation], List[Violation]]:
    """``(new, baselined)`` partition of ``violations``."""
    new: List[Violation] = []
    baselined: List[Violation] = []
    for violation in violations:
        (baselined if violation.fingerprint() in fingerprints
         else new).append(violation)
    return new, baselined
