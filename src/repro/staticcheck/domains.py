"""Thread-domain inference: which execution contexts run each function.

The repository's runtime topology (docs/CONCURRENCY.md) has four kinds
of execution context, called *domains* here:

* :data:`MAIN` — the process's main thread: CLI commands, campaign
  drivers, test bodies, ``atexit`` handlers;
* :data:`THREAD` — an auxiliary ``threading.Thread`` (the
  ``ServerThread`` daemon, ``ThreadPoolExecutor`` workers,
  ``asyncio.to_thread`` / ``run_in_executor`` offloads);
* :data:`LOOP` — an asyncio event loop (every coroutine, plus every
  synchronous function a coroutine calls — those block the loop while
  they run, wherever the loop's thread lives);
* :data:`WORKER` — a ``multiprocessing`` worker process (campaign pool
  workers).  Workers have their own address space: module-level state
  written there is a per-process copy, which is why rules that reason
  about shared memory fold :data:`WORKER` back into :data:`MAIN`.

Inference seeds domains at the entry points the codebase actually uses —
``threading.Thread(target=...)``, ``asyncio.run``, pool/executor
submissions and initializers, ``multiprocessing.Process``, functions
named ``main`` — then propagates caller domains to callees over the
:class:`~repro.staticcheck.callgraph.ProjectIndex` call graph to a
fixpoint.  Async functions do not inherit caller domains (calling one
only *creates* a coroutine; it executes on a loop), and callback
registrations transfer control, not context, so their targets get the
registered domain instead of the registrar's.  A function nothing was
inferred for defaults to :data:`MAIN`: anything is callable from the
main thread until proven otherwise.

Every inferred domain carries a human-readable witness chain
(``handle <- _dispatch <- ServiceState.analyze``) so rule messages can
say *why* a function is believed to run somewhere.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import FunctionInfo, ProjectIndex, Sym

__all__ = ["MAIN", "THREAD", "LOOP", "WORKER", "PROCESS_SHARED_DOMAINS",
           "DomainAnalysis"]

MAIN = "main"
THREAD = "thread"
LOOP = "event-loop"
WORKER = "worker"

#: Domains that share the parent process's address space.  A write from
#: :data:`WORKER` mutates a per-process copy, so shared-state rules map
#: it to that process's own main thread.
PROCESS_SHARED_DOMAINS = (MAIN, THREAD, LOOP)

#: External constructors whose ``target=`` callable runs on a new thread.
_THREAD_CTORS = {"threading.Thread", "threading.Timer"}
#: External constructors whose ``target=`` callable runs in a new process.
_PROCESS_CTORS = {"multiprocessing.Process", "multiprocessing.context.Process"}
#: Executor classes by the domain their submissions run in.
_EXECUTOR_DOMAIN = {
    "concurrent.futures.ProcessPoolExecutor": WORKER,
    "concurrent.futures.process.ProcessPoolExecutor": WORKER,
    "multiprocessing.Pool": WORKER,
    "multiprocessing.pool.Pool": WORKER,
    "concurrent.futures.ThreadPoolExecutor": THREAD,
    "concurrent.futures.thread.ThreadPoolExecutor": THREAD,
}
#: Executor/pool methods whose first argument is the submitted callable.
_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "map_async",
                   "imap", "imap_unordered", "starmap"}


class DomainAnalysis:
    """Domain sets (and witness chains) for every project function."""

    @classmethod
    def of(cls, project: ProjectIndex) -> "DomainAnalysis":
        """The (memoised) analysis for ``project`` — the four concurrency
        rules share one inference pass per check run."""
        cached = getattr(project, "_domain_analysis", None)
        if cached is None:
            cached = cls(project)
            project._domain_analysis = cached  # type: ignore[attr-defined]
        return cached

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self._domains: Dict[str, Set[str]] = {}
        self._why: Dict[Tuple[str, str], str] = {}
        self._seeded: Set[Tuple[str, str]] = set()
        self._infer()

    # -- public API ----------------------------------------------------------

    def domains_of(self, fn: FunctionInfo) -> FrozenSet[str]:
        """The inferred execution domains of ``fn`` (never empty)."""
        found = self._domains.get(fn.qname)
        if found:
            return frozenset(found)
        return frozenset((MAIN,))

    def shared_domains_of(self, fn: FunctionInfo) -> FrozenSet[str]:
        """Domains of ``fn`` folded onto the address space they mutate:
        :data:`WORKER` becomes the worker process's own :data:`MAIN`."""
        return frozenset(MAIN if d == WORKER else d
                         for d in self.domains_of(fn))

    def why(self, fn: FunctionInfo, domain: str) -> str:
        """A witness chain for ``fn`` running in ``domain``."""
        return self._why.get((fn.qname, domain),
                             f"{fn.name}: default (nothing marked it "
                             "otherwise, so the main thread can reach it)")

    # -- seeding -------------------------------------------------------------

    def _seed(self, target: Sym, domain: str, reason: str) -> None:
        fn = self._as_function(target)
        if fn is None:
            return
        self._domains.setdefault(fn.qname, set()).add(domain)
        self._seeded.add((fn.qname, domain))
        self._why.setdefault((fn.qname, domain), reason)

    @staticmethod
    def _as_function(sym: Sym) -> Optional[FunctionInfo]:
        if sym.kind == "func":
            return sym.ref  # type: ignore[return-value]
        if sym.kind == "class":
            return sym.ref.methods.get("__init__")  # type: ignore[union-attr]
        return None

    def _infer(self) -> None:
        project = self.project
        for fn in project.all_functions():
            if fn.is_module:
                self._domains.setdefault(fn.qname, set()).add(MAIN)
                self._why.setdefault((fn.qname, MAIN),
                                     f"{fn.qname}: module-level code runs "
                                     "at import time on the importing "
                                     "thread")
            if fn.is_async:
                self._domains.setdefault(fn.qname, set()).add(LOOP)
                self._seeded.add((fn.qname, LOOP))
                self._why.setdefault((fn.qname, LOOP),
                                     f"{fn.name} is a coroutine — it only "
                                     "ever executes on an event loop")
            if fn.name == "main" and fn.cls is None:
                self._domains.setdefault(fn.qname, set()).add(MAIN)
                self._seeded.add((fn.qname, MAIN))
                self._why.setdefault((fn.qname, MAIN),
                                     f"{fn.qname} is a CLI entry point")
            for site in project.callsites(fn):
                self._seed_from_call(fn, site.node, site.target)
        self._propagate()

    def _seed_from_call(self, fn: FunctionInfo, call: ast.Call,
                        target: Sym) -> None:
        project = self.project
        name = target.external_name
        if name in _THREAD_CTORS or name in _PROCESS_CTORS:
            domain = THREAD if name in _THREAD_CTORS else WORKER
            for kw in call.keywords:
                if kw.arg == "target":
                    self._seed(project.resolve_callable_ref(fn, kw.value),
                               domain,
                               f"passed as target= to {name} in {fn.qname}")
            return
        if name == "asyncio.run":
            for arg in call.args[:1]:
                ref = arg.func if isinstance(arg, ast.Call) else arg
                self._seed(project.resolve_callable_ref(fn, ref), LOOP,
                           f"run by asyncio.run in {fn.qname}")
            return
        if name == "asyncio.to_thread":
            for arg in call.args[:1]:
                self._seed(project.resolve_callable_ref(fn, arg), THREAD,
                           f"offloaded via asyncio.to_thread in {fn.qname}")
            return
        if name is not None and name.endswith(".run_in_executor"):
            # loop.run_in_executor(executor, fn, *args): the callable is
            # the second positional argument.
            for arg in call.args[1:2]:
                self._seed(project.resolve_callable_ref(fn, arg), THREAD,
                           f"offloaded via run_in_executor in {fn.qname}")
            return
        # Executor/pool submissions: resolve the receiver's class.
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in _SUBMIT_METHODS:
            base = project.resolve_value(fn, call.func.value)
            if base.kind == "instance_external" and \
                    base.ref in _EXECUTOR_DOMAIN:
                domain = _EXECUTOR_DOMAIN[base.ref]  # type: ignore[index]
                for arg in call.args[:1]:
                    self._seed(project.resolve_callable_ref(fn, arg), domain,
                               f"submitted to {base.ref} via "
                               f".{call.func.attr} in {fn.qname}")
            return
        # Executor constructors: initializer= runs in every worker.
        if name in _EXECUTOR_DOMAIN:
            for kw in call.keywords:
                if kw.arg == "initializer":
                    self._seed(project.resolve_callable_ref(fn, kw.value),
                               _EXECUTOR_DOMAIN[name],
                               f"installed as {name} initializer "
                               f"in {fn.qname}")

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> None:
        """Caller domains flow to (non-async) callees until nothing
        changes.  Deterministic: functions visited in sorted order."""
        project = self.project
        edges: List[Tuple[FunctionInfo, FunctionInfo]] = []
        for fn in project.all_functions():
            for callee, _node in project.project_callees(fn):
                edges.append((fn, callee))
        changed = True
        while changed:
            changed = False
            for caller, callee in edges:
                if callee.is_async:
                    continue  # calling a coroutine only instantiates it
                # An unseeded caller is main-reachable by default, and
                # that default must flow: a CLI handler dispatched
                # dynamically still runs its callees on the main thread.
                src = self._domains.get(caller.qname) or {MAIN}
                dst = self._domains.setdefault(callee.qname, set())
                for domain in src:
                    if domain not in dst:
                        dst.add(domain)
                        self._why.setdefault(
                            (callee.qname, domain),
                            f"called from {caller.qname} "
                            f"[{self._short_why(caller, domain)}]")
                        changed = True

    def _short_why(self, fn: FunctionInfo, domain: str) -> str:
        reason = self._why.get((fn.qname, domain), "")
        # Keep chains readable: show at most the nearest two hops.
        if reason.count("[") >= 2:
            head = reason.split("[", 1)[0].rstrip()
            return f"{head} [...]"
        return reason
