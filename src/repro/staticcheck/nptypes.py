"""Numpy dtype propagation and the semantic dtype-soundness rule (R011).

R001 polices the vector kernel *lexically* — no float literals, no
``np.divide`` — but a lexically clean expression can still promote
silently: ``np.zeros(n)`` is float64, ``uint64 < int64`` compares
through float64, and ``int32 + int64`` widens mid-sort-key.  This module
infers a dtype for every expression in the kernel files by propagating
through constructors, ufuncs, ``astype`` and indexing, and flags the
promotions numpy performs without being asked.

The dtype domain is a flat lattice of strings (``"int64"``,
``"float64"``, ``"bool"``, …) plus the Python scalar kinds (``"pyint"``,
``"pyfloat"``, ``"pybool"``) and ``None`` for unknown.  Like the
interval domain this is stdlib-only — numpy is *modelled*, never
imported — and unsound toward silence: an unknown operand silences the
check rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import ModuleInfo
from .rules import Rule, _import_aliases
from .violations import Violation

__all__ = ["NumpyDtypeRule", "infer_function"]

_INT_DTYPES = {"int8", "int16", "int32", "int64",
               "uint8", "uint16", "uint32", "uint64"}
_FLOAT_DTYPES = {"float16", "float32", "float64"}
_ARRAY_DTYPES = _INT_DTYPES | _FLOAT_DTYPES | {"bool", "complex128",
                                               "object"}

_WIDTH = {"int8": 8, "int16": 16, "int32": 32, "int64": 64,
          "uint8": 8, "uint16": 16, "uint32": 32, "uint64": 64}

#: np functions returning int64 (indices/counts) regardless of input.
_INDEX_FNS = {"argsort", "lexsort", "flatnonzero", "searchsorted",
              "argmin", "argmax", "bincount", "count_nonzero",
              "nonzero", "digitize"}
#: np functions preserving their first argument's dtype.
_PRESERVE_FNS = {"repeat", "diff", "append", "cumsum", "sort", "copy",
                 "abs", "clip", "roll", "flip", "ascontiguousarray"}
#: np functions whose result promotes float64 by design.
_FLOAT_FNS = {"mean", "std", "var", "average", "median", "divide",
              "true_divide", "sqrt", "exp", "log"}
#: The sort-key entry points whose arguments define a priority order.
_ORDER_FNS = {"argsort", "lexsort", "sort", "searchsorted"}

#: dtype node (``np.int64``, ``bool``, ``"int64"``) -> dtype string.
_DTYPE_NAMES = {"bool": "bool", "bool_": "bool",
                "int": "int64", "intp": "int64", "int_": "int64",
                "float": "float64", "float_": "float64",
                "int8": "int8", "int16": "int16", "int32": "int32",
                "int64": "int64", "uint8": "uint8", "uint16": "uint16",
                "uint32": "uint32", "uint64": "uint64",
                "float16": "float16", "float32": "float32",
                "float64": "float64", "object": "object",
                "object_": "object"}

#: dtype -> (dtype, origin line) environment.
DtypeEnv = Dict[str, Tuple[Optional[str], int]]


def _is_signed(dtype: str) -> bool:
    return dtype.startswith("int")


class _Finding:
    __slots__ = ("line", "message")

    def __init__(self, line: int, message: str) -> None:
        self.line = line
        self.message = message


class _Inferencer:
    """Per-function dtype inference for one module.

    ``attr_env`` carries ``self.<attr>`` dtypes collected over the whole
    class (conflicting assignments degrade to unknown), so methods can
    read columns ``__init__`` created.  Findings accumulate only when
    ``report`` is True — the attribute-collection pre-pass runs silent.
    """

    def __init__(self, np_aliases: Set[str],
                 attr_env: Optional[DtypeEnv] = None, *,
                 report: bool = True) -> None:
        self.np_aliases = np_aliases
        self.attr_env: DtypeEnv = dict(attr_env or {})
        self.env: DtypeEnv = {}
        self.report = report
        self.findings: List[_Finding] = []

    # -- helpers ------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        if self.report:
            self.findings.append(
                _Finding(getattr(node, "lineno", 1), message))

    def _origin(self, node: ast.expr) -> str:
        """Witness fragment for an operand: its dtype and where that
        dtype was established."""
        dtype = self.eval(node, quiet=True)
        label = _src(node)
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if bound is not None:
                return f"{label}: {bound[0]} (assigned line {bound[1]})"
        if isinstance(node, ast.Attribute) and node.attr in self.attr_env:
            bound = self.attr_env[node.attr]
            return f"{label}: {bound[0]} (assigned line {bound[1]})"
        return f"{label}: {dtype}"

    def _is_np(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self.np_aliases

    def _np_func(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Attribute) and self._is_np(node.value):
            return node.attr
        return None

    def _parse_dtype(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Attribute) and self._is_np(node.value):
            return _DTYPE_NAMES.get(node.attr)
        if isinstance(node, ast.Name):
            return _DTYPE_NAMES.get(node.id)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_NAMES.get(node.value)
        return None

    def _dtype_kwarg(self, node: ast.Call) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._parse_dtype(kw.value)
        return None

    def promote(self, a: Optional[str], b: Optional[str],
                node: Optional[ast.expr] = None,
                operands: Tuple[Optional[ast.expr], Optional[ast.expr]]
                = (None, None)) -> Optional[str]:
        """Numpy's result dtype for ``a <op> b``; flags the silent
        promotions (uint64 vs signed, int array meeting a float)."""
        if a is None or b is None:
            return None
        if a == b:
            return a
        # Python scalars adopt the array dtype (value-based casting).
        for scalar, other in ((a, b), (b, a)):
            if scalar == "pyint" and (other in _INT_DTYPES
                                      or other == "bool"
                                      or other in _FLOAT_DTYPES):
                return "int64" if other == "bool" else other
            if scalar == "pybool":
                return other if other != "pyint" else "int64"
        if a == "pyint" and b == "pyint":
            return "pyint"
        for scalar, other, other_node in (
                (a, b, operands[1]), (b, a, operands[0])):
            if scalar == "pyfloat" and other in _INT_DTYPES:
                if node is not None:
                    self._flag(node, self._promo_chain(
                        node, operands, "a Python float meets an "
                        f"{other} array -> result silently promotes "
                        "to float64"))
                return "float64"
        if a == "bool" and b in _INT_DTYPES:
            return b
        if b == "bool" and a in _INT_DTYPES:
            return a
        if a in _FLOAT_DTYPES and b in _FLOAT_DTYPES:
            return a if _WIDTH.get(a, 64) >= _WIDTH.get(b, 64) else b
        for f, i in ((a, b), (b, a)):
            if f in _FLOAT_DTYPES and i in _INT_DTYPES:
                if node is not None:
                    self._flag(node, self._promo_chain(
                        node, operands, f"{i} meets {f} -> integer "
                        "operand silently becomes floating point"))
                return "float64"
        if a in _INT_DTYPES and b in _INT_DTYPES:
            if ("uint64" in (a, b)) and (_is_signed(a) or _is_signed(b)):
                if node is not None:
                    self._flag(node, self._promo_chain(
                        node, operands, "uint64 meets a signed integer "
                        "-> numpy promotes BOTH to float64 (exact "
                        "integers beyond 2**53 corrupt silently)"))
                return "float64"
            if a.startswith("uint") and b.startswith("uint"):
                return a if _WIDTH[a] >= _WIDTH[b] else b
            if _is_signed(a) and _is_signed(b):
                return a if _WIDTH[a] >= _WIDTH[b] else b
            return "int64"  # mixed signed/unsigned below 64 bits
        return None

    def _promo_chain(self, node: ast.expr,
                     operands: Tuple[Optional[ast.expr],
                                     Optional[ast.expr]],
                     consequence: str) -> str:
        parts = [self._origin(op) for op in operands if op is not None]
        parts.append(f"'{_src(node)}' (line "
                     f"{getattr(node, 'lineno', 1)}): {consequence}")
        return "silent dtype promotion: " + " -> ".join(parts)

    # -- expression inference ----------------------------------------

    def eval(self, node: ast.expr, *, quiet: bool = False
             ) -> Optional[str]:
        saved = self.report
        if quiet:
            self.report = False
        try:
            return self._eval(node)
        finally:
            self.report = saved

    def _eval(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "pybool"
            if isinstance(node.value, int):
                return "pyint"
            if isinstance(node.value, float):
                return "pyfloat"
            return None
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            return bound[0] if bound else None
        if isinstance(node, ast.Attribute):
            bound = self.attr_env.get(node.attr)
            return bound[0] if bound else None
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if isinstance(node.op, ast.Div):
                if left in _INT_DTYPES or right in _INT_DTYPES:
                    self._flag(node, self._promo_chain(
                        node, (node.left, node.right),
                        "true division always produces float64 — use "
                        "// for exact arithmetic"))
                    return "float64"
                return "pyfloat" if (left, right) == ("pyint", "pyint") \
                    else None
            return self.promote(left, right, node,
                                (node.left, node.right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, (ast.USub, ast.UAdd, ast.Invert)):
                return self._eval(node.operand)
            if isinstance(node.op, ast.Not):
                return "pybool"
            return None
        if isinstance(node, ast.Compare):
            kinds = [self._eval(node.left)] + \
                [self._eval(c) for c in node.comparators]
            concrete = [k for k in kinds if k in _INT_DTYPES]
            if "uint64" in concrete and any(_is_signed(k)
                                            for k in concrete):
                self._flag(node, self._promo_chain(
                    node, (node.left, node.comparators[0]),
                    "uint64 compared against a signed integer routes "
                    "through float64 — the comparison itself is inexact"))
            return "bool" if concrete else "pybool"
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            a, b = self._eval(node.body), self._eval(node.orelse)
            return a if a == b else None
        return None

    def _eval_call(self, node: ast.Call) -> Optional[str]:
        fn = self._np_func(node.func)
        if fn is not None:
            return self._eval_np_call(node, fn)
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value)
            if func.attr == "astype" and node.args:
                # Explicit conversion: an audited narrowing, not a
                # silent promotion — never flagged here.
                return self._parse_dtype(node.args[0])
            if func.attr in ("min", "max", "copy", "view", "ravel",
                            "reshape", "cumsum"):
                return base
            if func.attr in ("sum", "prod"):
                return "int64" if base in _INT_DTYPES or base == "bool" \
                    else base
            if func.attr in ("any", "all"):
                return "pybool"
            if func.attr == "mean":
                if base in _INT_DTYPES:
                    self._flag(node, f"'{_src(node)}' (line "
                               f"{node.lineno}): .mean() of an {base} "
                               "array silently promotes to float64")
                return "float64"
            return None
        if isinstance(func, ast.Name):
            if func.id == "int":
                return "pyint"
            if func.id == "bool":
                return "pybool"
            if func.id == "float":
                return "pyfloat"
            if func.id == "abs" and len(node.args) == 1:
                return self._eval(node.args[0])
            if func.id == "divmod" and len(node.args) == 2:
                return self.promote(self._eval(node.args[0]),
                                    self._eval(node.args[1]))
        return None

    def _eval_np_call(self, node: ast.Call, fn: str) -> Optional[str]:
        for arg in node.args:
            self._eval(arg)  # surface promotions inside arguments
        if fn in _ORDER_FNS:
            self._check_order_key(node)
        explicit = self._dtype_kwarg(node)
        if fn in ("zeros", "ones", "empty"):
            if explicit is not None:
                return explicit
            self._flag(node, f"'{_src(node)}' (line {node.lineno}): "
                       f"np.{fn} without dtype defaults to float64 — "
                       "the exact kernel just left int64 silently")
            return "float64"
        if fn == "full":
            if explicit is not None:
                return explicit
            fill = self._eval(node.args[1]) if len(node.args) > 1 \
                else None
            if fill == "pyint":
                return "int64"
            if fill == "pyfloat":
                self._flag(node, f"'{_src(node)}' (line {node.lineno})"
                           ": np.full with a float fill and no dtype "
                           "is silently float64")
                return "float64"
            return fill
        if fn == "arange":
            if explicit is not None:
                return explicit
            kinds = [self._eval(a) for a in node.args]
            if any(k == "pyfloat" for k in kinds):
                self._flag(node, f"'{_src(node)}' (line {node.lineno})"
                           ": np.arange with a float bound is silently "
                           "float64")
                return "float64"
            if kinds and all(k == "pyint" for k in kinds):
                return "int64"
            return "int64" if not node.args else None
        if fn in ("array", "asarray", "fromiter", "frombuffer",
                  "ascontiguousarray"):
            return explicit
        if fn in _INDEX_FNS:
            return "int64"
        if fn in ("where",):
            if len(node.args) == 3:
                return self.promote(self._eval(node.args[1]),
                                    self._eval(node.args[2]), node,
                                    (node.args[1], node.args[2]))
            return None
        if fn in ("maximum", "minimum", "fmax", "fmin"):
            if len(node.args) >= 2:
                return self.promote(self._eval(node.args[0]),
                                    self._eval(node.args[1]), node,
                                    (node.args[0], node.args[1]))
            return None
        if fn in _PRESERVE_FNS:
            return explicit or (self._eval(node.args[0])
                                if node.args else None)
        if fn == "concatenate":
            return explicit
        if fn == "divmod":
            return None  # handled as a tuple at the assignment
        if fn == "unique":
            return self._eval(node.args[0]) if node.args else None
        if fn in _FLOAT_FNS:
            operand = self._eval(node.args[0]) if node.args else None
            if operand in _INT_DTYPES or fn in ("divide",
                                                "true_divide"):
                self._flag(node, f"'{_src(node)}' (line {node.lineno})"
                           f": np.{fn} promotes to float64 — exact "
                           "integer arithmetic ends here")
            return "float64"
        return None

    def _check_order_key(self, node: ast.Call) -> None:
        """Mixed integer widths inside a sort key: the comparison order
        then depends on silent widening, the exact failure mode the
        packed-key layout exists to avoid."""
        for arg in node.args:
            for sub in ast.walk(arg):
                if not isinstance(sub, ast.BinOp):
                    continue
                left = self.eval(sub.left, quiet=True)
                right = self.eval(sub.right, quiet=True)
                if left in _INT_DTYPES and right in _INT_DTYPES and \
                        left != right and \
                        _WIDTH[left] != _WIDTH[right]:
                    self._flag(sub, self._promo_chain(
                        sub, (sub.left, sub.right),
                        f"mixes {left} with {right} inside "
                        "np." + self._np_func(node.func) +
                        " — the key order depends on silent widening"))

    # -- statement walk ----------------------------------------------

    def run_function(self, func: ast.FunctionDef) -> DtypeEnv:
        """Infer dtypes through ``func`` in source order; returns the
        ``self.<attr>`` dtypes it assigns (for the class pre-pass)."""
        self.env = {}
        assigned_attrs: DtypeEnv = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign):
                dtype = self._eval_assign_value(stmt)
                for target in stmt.targets:
                    self._bind(target, dtype, stmt, assigned_attrs)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                dtype = self._eval(stmt.value)
                self._bind(stmt.target, dtype, stmt, assigned_attrs)
            elif isinstance(stmt, ast.AugAssign):
                self._eval(ast.copy_location(
                    ast.BinOp(left=_load_of(stmt.target), op=stmt.op,
                              right=stmt.value), stmt))
            elif isinstance(stmt, ast.Expr):
                self._eval(stmt.value)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._eval(stmt.test)
            elif isinstance(stmt, ast.Return) and stmt.value:
                self._eval(stmt.value)
        return assigned_attrs

    def _eval_assign_value(self, stmt: ast.Assign):
        # Tuple-producing calls: q, j = np.divmod(a, b)  /
        # u, c = np.unique(x, return_counts=True)
        if len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Tuple) and \
                isinstance(stmt.value, ast.Call):
            fn = self._np_func(stmt.value.func)
            if fn == "divmod" and len(stmt.value.args) == 2:
                d = self.promote(self._eval(stmt.value.args[0]),
                                 self._eval(stmt.value.args[1]))
                return (d, d)
            if fn == "unique":
                base = self._eval(stmt.value.args[0]) \
                    if stmt.value.args else None
                return (base, "int64")
        return self._eval(stmt.value)

    def _bind(self, target: ast.expr, dtype, stmt: ast.stmt,
              assigned_attrs: DtypeEnv) -> None:
        if isinstance(target, ast.Name):
            d = dtype if not isinstance(dtype, tuple) else None
            self.env[target.id] = (d, stmt.lineno)
        elif isinstance(target, ast.Tuple):
            parts = dtype if isinstance(dtype, tuple) and \
                len(dtype) == len(target.elts) else \
                (None,) * len(target.elts)
            for sub, d in zip(target.elts, parts):
                self._bind(sub, d, stmt, assigned_attrs)
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            d = dtype if not isinstance(dtype, tuple) else None
            prev = assigned_attrs.get(target.attr)
            if prev is not None and prev[0] != d:
                d = None  # conflicting assignments degrade to unknown
            assigned_attrs[target.attr] = (d, stmt.lineno)


def _load_of(target: ast.expr) -> ast.expr:
    if isinstance(target, ast.Name):
        return ast.copy_location(
            ast.Name(id=target.id, ctx=ast.Load()), target)
    return target


def _src(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover
        return "<expr>"


def infer_function(func: ast.FunctionDef, np_aliases: Set[str],
                   attr_env: Optional[DtypeEnv] = None
                   ) -> Tuple[DtypeEnv, List[Tuple[int, str]]]:
    """Public probe used by tests: dtype env + findings of one function."""
    inf = _Inferencer(np_aliases, attr_env)
    inf.run_function(func)
    return inf.env, [(f.line, f.message) for f in inf.findings]


class NumpyDtypeRule(Rule):
    """Semantic dtype soundness for the vectorized kernel files.

    Where R001 bans float *syntax* in ``sim/vector.py``, this rule
    tracks the dtype numpy would actually infer and flags what slips
    through lexical review: constructors defaulting to float64, true
    division of integer arrays, uint64 meeting signed integers (numpy
    promotes both to float64), ``.mean()`` on integer columns, and
    mixed integer widths inside a sort key — each with a witness chain
    from the operand's defining assignment to the promoting expression.
    """

    rule_id = "R011"
    name = "numpy-dtype-soundness"
    description = ("inferred numpy dtypes in the kernel files must stay "
                   "integral: no silent float64/object promotion, no "
                   "mixed widths in key ordering")

    FILES = ("sim/vector.py", "sim/fastpath.py")

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        if module.relpath not in self.FILES:
            return
        np_aliases = _import_aliases(module.tree, "numpy")
        if not np_aliases:
            return  # fastpath.py: pure-python, trivially sound
        for cls, funcs in _class_functions(module.tree):
            attr_env: DtypeEnv = {}
            if cls is not None:
                # Silent pre-pass: collect self.<attr> dtypes so later
                # methods see the columns __init__ created.
                collector = _Inferencer(np_aliases, report=False)
                for func in funcs:
                    for attr, bound in collector.run_function(
                            func).items():
                        prev = attr_env.get(attr)
                        if prev is not None and prev[0] != bound[0]:
                            bound = (None, bound[1])
                        attr_env[attr] = bound
            for func in funcs:
                inf = _Inferencer(np_aliases, attr_env)
                inf.run_function(func)
                for finding in inf.findings:
                    yield Violation(
                        path=module.relpath, line=finding.line, col=0,
                        rule_id=self.rule_id, message=finding.message)


def _class_functions(tree: ast.Module
                     ) -> Iterator[Tuple[Optional[ast.ClassDef],
                                         List[ast.FunctionDef]]]:
    """Top-level functions (grouped under ``None``) and each class's
    methods (grouped so attribute dtypes can be shared)."""
    top: List[ast.FunctionDef] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            top.append(node)
        elif isinstance(node, ast.ClassDef):
            methods = [stmt for stmt in node.body
                       if isinstance(stmt, ast.FunctionDef)]
            yield node, methods
    if top:
        yield None, top
