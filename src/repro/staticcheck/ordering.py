"""Iteration-order soundness: the R014 classifier and rule.

Byte-identical checkpoints, wire frames, and campaign rows all assume
that whenever the runtime *iterates*, the order either does not matter
(``done.add(x)``) or is deterministic (a list, ``sorted(...)``, a dict
filled on one thread).  Three order sources break that silently:

* **hash order** — ``set`` / ``frozenset`` iteration, which
  ``PYTHONHASHSEED`` reshuffles between processes;
* **filesystem / completion order** — ``os.listdir``, ``glob``,
  ``Path.iterdir``, ``concurrent.futures.as_completed`` and the
  done-set of ``concurrent.futures.wait``;
* **thread-scheduling order** — a ``queue.Queue`` drained across
  producer threads, or a dict/set attribute that worker threads insert
  into (grant order = whichever slot thread asked first).

The classifier here assigns every iterated expression one of those
origins (or *deterministic* / *unknown* — unknown stays silent, per the
project-wide "unsound toward silence" contract), then checks what the
iteration feeds.  Order-insensitive consumption — ``.add`` to a set,
dict stores keyed by the loop variable, integer counters, ``len`` /
``min`` / ``max`` / ``any`` / ``all`` — passes.  Order-*sensitive*
consumption — appending to an ordered sequence, float/str accumulation,
``yield``, writes/emits, invoking a caller-supplied callback — is
flagged with a witness chain from the order origin to the sink, unless
the iterable is laundered through ``sorted(...)`` at the point of use.

Name classification is deliberately *monotone and flow-insensitive*: a
name once bound to an unordered value counts as unordered everywhere in
the function, so the result is a fixpoint independent of statement
order (``tests/test_staticcheck_provenance.py`` pins that with a
hypothesis statement-reordering test).  Laundering is therefore spelled
at the point of use (``for x in sorted(s)``), which is also where the
canonical order becomes part of the code's contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from .callgraph import FunctionInfo, ProjectIndex, _iter_own_statements
from .domains import THREAD, DomainAnalysis
from .passes import project_pass, register_pass
from .rules import Rule
from .violations import Violation

if TYPE_CHECKING:
    from .engine import ModuleInfo

__all__ = ["OrderOrigin", "OrderFinding", "OrderingAnalysis",
           "OrderingSoundnessRule", "classify_source_bindings",
           "module_resolver"]


@dataclass(frozen=True)
class OrderOrigin:
    """Why (and where) an expression's iteration order is unordered."""

    reason: str
    line: int


@dataclass(frozen=True)
class OrderFinding:
    """One unordered-order-reaches-ordered-sink witness, pre-Violation."""

    path: str          # module relpath of the anchor
    line: int          # anchor line (the order origin)
    package: str       # module package, for rule scoping
    message: str


#: External callables whose result iterates in an unordered order.
_UNORDERED_CALLS: Dict[str, str] = {
    "os.listdir": "os.listdir returns entries in filesystem order",
    "os.scandir": "os.scandir returns entries in filesystem order",
    "glob.glob": "glob.glob returns matches in filesystem order",
    "glob.iglob": "glob.iglob yields matches in filesystem order",
    "concurrent.futures.as_completed":
        "as_completed yields futures in completion order",
    "concurrent.futures.wait":
        "concurrent.futures.wait returns done/not-done *sets* "
        "(completion order, then hash order)",
}

#: Path-object methods with filesystem-ordered results.  Matching is by
#: attribute name: nothing in this tree defines a method of these names
#: with a deterministic order, and an unresolved receiver would
#: otherwise hide ``Path.glob`` behind the silence rule.
_UNORDERED_PATH_METHODS = {
    "iterdir": "Path.iterdir yields entries in filesystem order",
    "glob": "Path.glob yields matches in filesystem order",
    "rglob": "Path.rglob yields matches in filesystem order",
}

#: Set methods that keep (or produce) hash-ordered iteration.
_SET_OP_METHODS = ("union", "intersection", "difference",
                   "symmetric_difference", "copy")

#: Calls that consume an iterable order-insensitively (or impose a
#: deterministic order): their results are safe whatever went in.
_LAUNDER_CALLS = {"sorted", "builtins.sorted", "min", "builtins.min",
                  "max", "builtins.max", "sum", "builtins.sum",
                  "len", "builtins.len", "any", "builtins.any",
                  "all", "builtins.all"}

#: Calls that preserve the order of their (first) argument.
_ORDER_PRESERVING_CALLS = {"list", "builtins.list", "tuple",
                           "builtins.tuple", "iter", "builtins.iter",
                           "reversed", "builtins.reversed",
                           "enumerate", "builtins.enumerate"}

#: Constructors that make a hash-ordered collection outright.
_SET_CONSTRUCTORS = {"set", "builtins.set", "frozenset",
                     "builtins.frozenset"}

#: Thread-fed queue classes whose ``get`` order is thread-scheduling
#: order.  ``PriorityQueue`` is excluded (its order is the key order)
#: and ``asyncio.Queue`` too: one event loop is a single consumer fed
#: in loop order, which the service's per-connection pipelining relies
#: on being deterministic.
_SCHEDULING_QUEUES = {"queue.Queue", "queue.SimpleQueue",
                      "queue.LifoQueue", "multiprocessing.Queue"}

#: Method names that insert into a dict/set/list attribute — the writes
#: whose thread domain decides whether iteration order is scheduling-
#: dependent.
_INSERT_METHODS = {"add", "append", "appendleft", "setdefault", "update",
                   "extend", "insert"}

#: Attribute calls inside a loop body that make iteration order
#: observable downstream.
_SEQUENCE_SINK_METHODS = {
    "append": "appends to an ordered sequence",
    "extend": "extends an ordered sequence",
    "appendleft": "prepends to an ordered sequence",
    "insert": "inserts into an ordered sequence",
}
_EMIT_SINK_METHODS = {
    "write": "writes bytes in iteration order",
    "writelines": "writes lines in iteration order",
    "sendall": "sends wire bytes in iteration order",
    "send": "sends wire bytes in iteration order",
    "put": "enqueues in iteration order",
    "put_nowait": "enqueues in iteration order",
}

#: Annotation heads that mean "this returns a hash-ordered collection".
_SET_ANNOTATIONS = {"Set", "FrozenSet", "AbstractSet", "MutableSet",
                    "set", "frozenset"}


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` spelled by a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_resolver(tree: ast.Module) -> Callable[[ast.expr], Optional[str]]:
    """A syntactic callee resolver from one module's import table.

    Resolves ``wait(...)`` to ``concurrent.futures.wait`` when the name
    was bound by ``from concurrent.futures import wait`` — enough for
    fixtures and for the standalone classifier; the project rule uses
    the full :class:`~repro.staticcheck.callgraph.ProjectIndex` instead.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[(alias.asname or alias.name.split(".")[0])] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and not node.level \
                and node.module:
            for alias in node.names:
                if alias.name != "*":
                    imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve(func: ast.expr) -> Optional[str]:
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in imports:
            base = imports[head]
            return f"{base}.{rest}" if rest else base
        return dotted

    return resolve


def _annotation_head(ann: Optional[ast.expr]) -> Optional[str]:
    if isinstance(ann, ast.Subscript):
        ann = ann.value
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    return None


class _Classifier:
    """Expression → :class:`OrderOrigin` (or ``None`` = not proven
    unordered) under one function's monotone name environment."""

    def __init__(self, resolve: Callable[[ast.expr], Optional[str]],
                 returns_unordered: Optional[
                     Callable[[ast.Call], Optional[str]]] = None) -> None:
        self.resolve = resolve
        #: Hook: a call whose *project-resolved* callee returns a Set
        #: (by annotation) — supplies the callee name, else None.
        self.returns_unordered = returns_unordered
        self.env: Dict[str, OrderOrigin] = {}

    # -- expression classification -------------------------------------------

    def origin_of(self, node: ast.expr) -> Optional[OrderOrigin]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            kind = "literal" if isinstance(node, ast.Set) else "comprehension"
            return OrderOrigin(
                f"set {kind} (hash-ordered iteration)", node.lineno)
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Starred):
            return self.origin_of(node.value)
        if isinstance(node, ast.IfExp):
            return self.origin_of(node.body) or self.origin_of(node.orelse)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                found = self.origin_of(value)
                if found is not None:
                    return found
            return None
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.origin_of(node.left) or self.origin_of(node.right)
        if isinstance(node, ast.Call):
            return self._origin_of_call(node)
        return None

    def _origin_of_call(self, node: ast.Call) -> Optional[OrderOrigin]:
        name = self.resolve(node.func)
        if name in _LAUNDER_CALLS:
            return None  # sorted() et al. launder whatever went in
        if name in _UNORDERED_CALLS:
            return OrderOrigin(_UNORDERED_CALLS[name], node.lineno)
        if name in _SET_CONSTRUCTORS:
            return OrderOrigin("set() construction (hash-ordered iteration)",
                               node.lineno)
        if name in _ORDER_PRESERVING_CALLS:
            return self.origin_of(node.args[0]) if node.args else None
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _SET_OP_METHODS:
                found = self.origin_of(node.func.value)
                if found is not None:
                    return found
            if attr in _UNORDERED_PATH_METHODS and (
                    name is None or not name.startswith("glob.")):
                return OrderOrigin(_UNORDERED_PATH_METHODS[attr], node.lineno)
        if self.returns_unordered is not None:
            callee = self.returns_unordered(node)
            if callee is not None:
                return OrderOrigin(
                    f"{callee}() returns a Set (hash-ordered iteration)",
                    node.lineno)
        return None

    # -- name environment (monotone fixpoint) --------------------------------

    def bind_statements(self, stmts: Sequence[ast.AST]) -> None:
        """Accumulate unordered name bindings to a fixpoint.  Origins are
        only ever *added*, so the result is independent of statement
        order and the loop terminates."""
        changed = True
        while changed:
            changed = False
            for stmt in stmts:
                for name, origin in self._bindings_of(stmt):
                    if name not in self.env:
                        self.env[name] = origin
                        changed = True

    def _bindings_of(self, stmt: ast.AST
                     ) -> Iterator[Tuple[str, OrderOrigin]]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            origin = self.origin_of(stmt.value)
            if origin is None:
                return
            if isinstance(target, ast.Name):
                yield target.id, origin
            elif isinstance(target, ast.Tuple):
                # e.g. ``done, not_done = wait(...)`` — both halves of
                # an unordered pair are unordered.
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        yield elt.id, origin
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            origin = self.origin_of(stmt.value)
            if origin is not None:
                yield stmt.target.id, origin
        elif isinstance(stmt, ast.AugAssign) and \
                isinstance(stmt.target, ast.Name):
            origin = self.origin_of(stmt.value)
            if origin is not None:
                yield stmt.target.id, origin


def classify_source_bindings(source: str, func: str) -> Dict[str, str]:
    """Standalone classifier probe: the unordered-name environment of
    one function in ``source``, as ``{name: reason}``.

    Used by the hypothesis statement-reordering test: because binding
    accumulation is a monotone fixpoint, permuting a function's
    assignment statements must never change the result.
    """
    tree = ast.parse(source)
    classifier = _Classifier(module_resolver(tree))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == func:
            classifier.bind_statements(list(_iter_own_statements(node)))
            return {name: origin.reason
                    for name, origin in sorted(classifier.env.items())}
    raise ValueError(f"no function named {func!r} in source")


# ---------------------------------------------------------------------------
# Sink analysis


def _accumulator_inits(stmts: Sequence[ast.AST]) -> Set[str]:
    """Names initialised to a float/str literal or an ordered sequence —
    the accumulators whose ``+=`` inside an unordered loop makes
    iteration order observable (float addition is not associative; str
    and list concatenation are order-preserving)."""
    out: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            value = stmt.value
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, (float, str)):
                out.add(stmt.targets[0].id)
            elif isinstance(value, (ast.List, ast.ListComp)):
                out.add(stmt.targets[0].id)
    return out


def _first_sensitive_op(body: Sequence[ast.stmt], params: Set[str],
                        accumulators: Set[str]
                        ) -> Optional[Tuple[str, int]]:
    """The first order-*sensitive* operation in a loop body, as
    ``(description, line)`` — or ``None`` when every consumption is
    order-insensitive (set adds, dict stores, counters, membership)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields in iteration order", node.lineno
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, ast.Add) and \
                    isinstance(node.target, ast.Name) and \
                    node.target.id in accumulators:
                return (f"accumulates into {node.target.id!r} "
                        "(order-sensitive +=)", node.lineno)
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in params:
                    return (f"invokes caller-visible callback "
                            f"{func.id}() in iteration order", node.lineno)
                if func.id == "print":
                    return "prints in iteration order", node.lineno
            elif isinstance(func, ast.Attribute):
                if func.attr in _SEQUENCE_SINK_METHODS:
                    return _SEQUENCE_SINK_METHODS[func.attr], node.lineno
                if func.attr in _EMIT_SINK_METHODS:
                    return _EMIT_SINK_METHODS[func.attr], node.lineno
    return None


def _unwrap_iter(node: ast.expr) -> ast.expr:
    """Strip order-preserving wrappers (``list(...)``, ``enumerate``)
    off a loop's iterable so attribute sources underneath are visible."""
    while isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("list", "tuple", "enumerate", "reversed") \
            and node.args:
        node = node.args[0]
    return node


def _self_attr_source(node: ast.expr) -> Optional[Tuple[str, int]]:
    """``self.X`` / ``self.X.items()`` under a loop iterable, as
    ``(attr, line)`` — the shape the thread-domain check applies to."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("items", "values", "keys") \
            and not node.args:
        node = node.func.value
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr, node.lineno
    return None


# ---------------------------------------------------------------------------
# The project-wide analysis pass


class OrderingAnalysis:
    """Every unordered-order → ordered-sink witness in the project.

    Registered as the ``"ordering"`` pass; the R014 rule filters the
    findings to its package scope.  Construction also builds the
    ``"domains"`` pass (thread-scheduling order needs to know which
    methods run on worker threads).
    """

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.domains = DomainAnalysis.of(project)
        self.findings: List[OrderFinding] = []
        self._analyse()

    # -- helpers --------------------------------------------------------------

    def _resolver(self, fn: FunctionInfo
                  ) -> Callable[[ast.expr], Optional[str]]:
        fallback = module_resolver(fn.module.tree)

        def resolve(func: ast.expr) -> Optional[str]:
            sym = self.project.resolve_value(fn, func)
            if sym.kind == "external":
                return sym.ref  # type: ignore[return-value]
            if sym.kind == "func":
                return sym.ref.qname  # type: ignore[union-attr]
            return fallback(func)

        return resolve

    def _returns_unordered(self, fn: FunctionInfo
                           ) -> Callable[[ast.Call], Optional[str]]:
        def probe(call: ast.Call) -> Optional[str]:
            sym = self.project.resolve_value(fn, call.func)
            if sym.kind != "func":
                return None
            callee: FunctionInfo = sym.ref  # type: ignore[assignment]
            returns = getattr(callee.node, "returns", None)
            if _annotation_head(returns) in _SET_ANNOTATIONS:
                return callee.name
            return None

        return probe

    def _thread_insertion_origin(self, fn: FunctionInfo, attr: str,
                                 line: int) -> Optional[OrderOrigin]:
        """Is ``self.<attr>`` inserted into by a method that runs on a
        worker thread?  Then its iteration order is thread-scheduling
        order (grant order = whichever thread asked first)."""
        if fn.cls is None:
            return None
        for name in sorted(fn.cls.methods):
            method = fn.cls.methods[name]
            if not self._inserts_into(method, attr):
                continue
            if THREAD in self.domains.domains_of(method):
                why = self.domains.why(method, THREAD)
                return OrderOrigin(
                    f"self.{attr} is inserted into by {method.qname} on a "
                    f"worker thread [{why}], so its iteration order is "
                    "thread-scheduling order", line)
        return None

    @staticmethod
    def _inserts_into(method: FunctionInfo, attr: str) -> bool:
        if isinstance(method.node, ast.Module):
            return False
        for node in _iter_own_statements(method.node):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Subscript):
                target = node.targets[0].value
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _INSERT_METHODS:
                target = node.func.value
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and target.attr == attr:
                return True
        return False

    # -- the walk -------------------------------------------------------------

    def _analyse(self) -> None:
        for fn in self.project.all_functions():
            if isinstance(fn.node, ast.Module):
                stmts: List[ast.AST] = list(_iter_own_statements(fn.node))
            else:
                stmts = list(_iter_own_statements(fn.node))
            classifier = _Classifier(self._resolver(fn),
                                     self._returns_unordered(fn))
            classifier.bind_statements(stmts)
            params = self._param_names(fn)
            accumulators = _accumulator_inits(stmts)
            for stmt in stmts:
                if isinstance(stmt, ast.For):
                    self._check_loop(fn, stmt, classifier, params,
                                     accumulators)
            self._check_queue_drains(fn, stmts)

    @staticmethod
    def _param_names(fn: FunctionInfo) -> Set[str]:
        node = fn.node
        if isinstance(node, ast.Module):
            return set()
        args = node.args
        return {a.arg for a in (args.posonlyargs + args.args +
                                args.kwonlyargs)}

    def _check_loop(self, fn: FunctionInfo, loop: ast.For,
                    classifier: _Classifier, params: Set[str],
                    accumulators: Set[str]) -> None:
        iter_expr = loop.iter
        origin = classifier.origin_of(iter_expr)
        if origin is None:
            source = _self_attr_source(_unwrap_iter(iter_expr))
            if source is not None:
                origin = self._thread_insertion_origin(
                    fn, source[0], source[1])
        if origin is None:
            return
        sink = _first_sensitive_op(loop.body, params, accumulators)
        if sink is None:
            return
        sink_desc, sink_line = sink
        self.findings.append(OrderFinding(
            path=fn.module.relpath,
            line=origin.line,
            package=fn.module.package,
            message=(f"unordered iteration order escapes in {fn.qname}: "
                     f"{origin.reason} (line {origin.line}) -> iterated at "
                     f"line {loop.lineno} -> {sink_desc} at line "
                     f"{sink_line}; sort at the point of use "
                     f"(sorted(...)) or consume order-insensitively")))

    def _check_queue_drains(self, fn: FunctionInfo,
                            stmts: Sequence[ast.AST]) -> None:
        """``x = q.get()`` on a thread-fed queue, with ``x`` then handed
        to a call: arrival order is thread-scheduling order."""
        for stmt in stmts:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr in ("get", "get_nowait")):
                continue
            recv = self.project.resolve_value(fn, stmt.value.func.value)
            if recv.kind != "instance_external" or \
                    recv.ref not in _SCHEDULING_QUEUES:
                continue
            # Each get-site is its own origin (its own pragma anchor).
            self._queue_drain_finding(fn, stmt, str(recv.ref), stmts)

    def _queue_drain_finding(self, fn: FunctionInfo, stmt: ast.Assign,
                             queue_cls: str,
                             stmts: Sequence[ast.AST]) -> None:
        name = stmt.targets[0].id  # type: ignore[union-attr]
        get_line = stmt.value.lineno
        for other in stmts:
            for node in ast.walk(other):
                if not isinstance(node, ast.Call):
                    continue
                if node.lineno == get_line:
                    continue  # the get itself
                for arg in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        callee = _dotted(node.func) or "<call>"
                        self.findings.append(OrderFinding(
                            path=fn.module.relpath,
                            line=get_line,
                            package=fn.module.package,
                            message=(
                                f"thread-completion queue drained in "
                                f"{fn.qname}: {queue_cls}.get at line "
                                f"{get_line} yields events in thread-"
                                f"scheduling order -> {name!r} passed to "
                                f"{callee}() at line {node.lineno} -> "
                                "downstream effects observe arrival "
                                "order; prove the consumer order-"
                                "insensitive and pragma at the get, or "
                                "reorder deterministically")))
                        return


register_pass("domains", DomainAnalysis.of)
register_pass("ordering", OrderingAnalysis)


# ---------------------------------------------------------------------------
# The rule


class OrderingSoundnessRule(Rule):
    """R014: no unordered iteration order may become observable.

    Project rule over the :class:`OrderingAnalysis` pass (which itself
    needs thread domains).  Violations anchor at the order *origin* —
    the set construction, the ``wait``/``as_completed`` call, the
    ``queue.get`` — so a pragma documents the soundness argument where
    the order is born, not at whichever sink happened to trip first.
    """

    rule_id = "R014"
    name = "ordering-soundness"
    description = ("unordered iteration order (sets, listdir/glob, "
                   "completion order, thread-fed queues, thread-mutated "
                   "dict attributes) must not reach appended rows, "
                   "accumulated floats, yields, writes, or callbacks; "
                   "launder with sorted(...) at the point of use")
    uses_project = True
    needs = ("ordering", "domains")

    #: Everything that persists, serves, or aggregates.  The staticcheck
    #: package itself is out of scope (a linter's finding order is
    #: sorted at the engine level, not per-loop).
    SCOPE_PACKAGES = ("core", "sim", "campaign", "workload", "distrib",
                      "service", "analysis", "traces")

    def check_project(self, project: "ProjectIndex"
                      ) -> Iterator[Violation]:
        analysis: OrderingAnalysis = project_pass(  # type: ignore[assignment]
            project, "ordering")
        for finding in analysis.findings:
            if finding.package not in self.SCOPE_PACKAGES:
                continue
            yield Violation(path=finding.path, line=finding.line, col=0,
                            rule_id=self.rule_id, message=finding.message)
