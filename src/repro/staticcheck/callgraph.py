"""Project-wide symbol table and call graph for cross-module rules.

The single-file rules (R001–R005) judge one AST at a time; the
concurrency rules (R006–R009) need to answer questions like "which
functions does a coroutine reach?" and "what class is this module-level
global an instance of?".  :class:`ProjectIndex` answers them from the
same parsed :class:`~repro.staticcheck.engine.ModuleInfo` records the
engine already holds:

* a **symbol table** — every module, top-level function, class, method,
  and nested ``def`` under the scanned root, plus each module's import
  bindings (``import repro.x.y as z``, ``from ..util.lru import LRUCache
  as C``, …) resolved to canonical dotted names;
* **call resolution** — mapping a call expression to the project
  function it invokes (through import aliases, ``self.method``, methods
  of locally-constructed instances, annotated parameters) or to an
  external dotted name (``time.sleep``); anything dynamic degrades to
  :data:`UNKNOWN`, never to a crash or a guess;
* an **instance-type oracle** — the class behind ``ANALYSIS_CACHE`` (a
  module global built by a constructor call), ``self._lock`` (an
  attribute assigned in a method), or a ``model: OverheadModel``
  parameter annotation.

Everything here is deliberately *flow-insensitive* and *unsound in the
direction of silence*: when two assignments disagree or a name is
rebound dynamically, resolution returns :data:`UNKNOWN` and the rules
stay quiet.  Determinism matters more than recall — the same tree must
always produce the same violations.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .engine import ModuleInfo

__all__ = [
    "Sym",
    "UNKNOWN",
    "FunctionInfo",
    "ClassInfo",
    "ModuleTable",
    "CallSite",
    "ProjectIndex",
]

#: The dotted prefix that marks an absolute import as project-internal.
#: Fixture trees mimic the real layout, so the root package answers to
#: the same name there.
ROOT_PACKAGE = "repro"


class Sym:
    """One resolved symbol: a tagged reference.

    ``kind`` is one of ``module``, ``func``, ``class``, ``instance``
    (a value whose class is known), ``external`` (a dotted name outside
    the scanned root, e.g. ``time.sleep``), ``global`` (a module-level
    data binding), or ``unknown``.  ``ref`` is the matching payload;
    ``external`` carries the dotted name string.
    """

    __slots__ = ("kind", "ref")

    def __init__(self, kind: str, ref: object = None) -> None:
        self.kind = kind
        self.ref = ref

    def __repr__(self) -> str:
        return f"Sym({self.kind}, {self.ref!r})"

    @property
    def external_name(self) -> Optional[str]:
        """The dotted name for ``external`` symbols, else ``None``."""
        return self.ref if self.kind == "external" else None  # type: ignore[return-value]


#: The shared don't-know symbol: rules must treat it as silence.
UNKNOWN = Sym("unknown")


class FunctionInfo:
    """One function, method, nested def, or module body."""

    __slots__ = ("qname", "module", "node", "is_async", "is_module",
                 "cls", "parent", "children")

    def __init__(self, qname: str, module: ModuleInfo,
                 node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module],
                 *, is_module: bool = False,
                 cls: Optional["ClassInfo"] = None,
                 parent: Optional["FunctionInfo"] = None) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.is_module = is_module
        self.cls = cls
        self.parent = parent
        self.children: Dict[str, "FunctionInfo"] = {}

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qname})"


class ClassInfo:
    """One class: methods, base names, and inferred attribute types."""

    __slots__ = ("qname", "module", "node", "methods", "bases",
                 "_attr_types")

    def __init__(self, qname: str, module: ModuleInfo,
                 node: ast.ClassDef) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        self.bases: List[ast.expr] = list(node.bases)
        self._attr_types: Optional[Dict[str, Sym]] = None

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]

    def __repr__(self) -> str:
        return f"ClassInfo({self.qname})"


class ModuleTable:
    """Everything the index knows about one module."""

    __slots__ = ("qname", "info", "functions", "classes", "imports",
                 "globals", "body")

    def __init__(self, qname: str, info: ModuleInfo) -> None:
        self.qname = qname
        self.info = info
        #: Top-level functions by bare name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Top-level classes by bare name.
        self.classes: Dict[str, ClassInfo] = {}
        #: Local name -> canonical dotted target.  Project targets are
        #: ``repro.``-prefixed; external targets keep their own spelling.
        self.imports: Dict[str, str] = {}
        #: Module-level data bindings: name -> the assigned value node.
        self.globals: Dict[str, ast.expr] = {}
        #: Pseudo-function for module-level statements.
        self.body: Optional[FunctionInfo] = None


class CallSite:
    """One call expression inside a function, with its resolved target."""

    __slots__ = ("node", "target")

    def __init__(self, node: ast.Call, target: Sym) -> None:
        self.node = node
        self.target = target


def _module_qname(info: ModuleInfo) -> str:
    parts = info.module_parts
    return ".".join(parts) if parts else "__root__"


def _iter_own_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function or class
    bodies — those belong to their own :class:`FunctionInfo`."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _own_nested_defs(node: ast.AST) -> Iterator[Union[ast.FunctionDef,
                                                      ast.AsyncFunctionDef]]:
    """Function definitions whose immediately enclosing scope is
    ``node`` (classes open a new scope, so their methods are excluded)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
            continue
        if isinstance(child, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(child))


class ProjectIndex:
    """The cross-module symbol table, call graph, and type oracle."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleTable] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for info in modules:
            self._index_module(info)
        self._callsites: Dict[str, List[CallSite]] = {}

    # -- construction --------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        qname = _module_qname(info)
        table = ModuleTable(qname, info)
        self.modules[qname] = table
        table.body = FunctionInfo(f"{qname}.<module>", info, info.tree,
                                  is_module=True)
        self.functions[table.body.qname] = table.body
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(table, stmt, f"{qname}.{stmt.name}",
                                     cls=None, parent=None,
                                     bind=table.functions)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(table, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                table.globals.setdefault(stmt.targets[0].id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                    and isinstance(stmt.target, ast.Name):
                table.globals.setdefault(stmt.target.id, stmt.value)
        self._index_imports(table)

    def _index_function(self, table: ModuleTable,
                        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                        qname: str, *, cls: Optional[ClassInfo],
                        parent: Optional[FunctionInfo],
                        bind: Optional[Dict[str, FunctionInfo]]) -> None:
        fn = FunctionInfo(qname, table.info, node, cls=cls, parent=parent)
        self.functions[qname] = fn
        if bind is not None:
            bind[node.name] = fn
        if parent is not None:
            parent.children[node.name] = fn
        for nested in _own_nested_defs(node):
            self._index_function(table, nested, f"{qname}.{nested.name}",
                                 cls=cls, parent=fn, bind=None)

    def _index_class(self, table: ModuleTable, node: ast.ClassDef) -> None:
        qname = f"{table.qname}.{node.name}"
        cls = ClassInfo(qname, table.info, node)
        table.classes[node.name] = cls
        self.classes[qname] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(table, stmt,
                                     f"{qname}.{stmt.name}", cls=cls,
                                     parent=None, bind=None)
                cls.methods[stmt.name] = self.functions[f"{qname}.{stmt.name}"]

    def _index_imports(self, table: ModuleTable) -> None:
        info = table.info
        pkg_parts = list(info.module_parts[:-1]) \
            if not info.relpath.endswith("__init__.py") \
            else list(info.module_parts)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    table.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node, pkg_parts)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table.imports[local] = (f"{base}.{alias.name}"
                                            if base else alias.name)

    @staticmethod
    def _import_base(node: ast.ImportFrom,
                     pkg_parts: List[str]) -> Optional[str]:
        """The dotted module an ``ImportFrom`` pulls names out of, with
        relative imports rebased onto the root package."""
        if node.level == 0:
            return node.module or ""
        if node.level > len(pkg_parts) + 1:
            return None
        base_parts = pkg_parts[:len(pkg_parts) - (node.level - 1)]
        parts = [ROOT_PACKAGE] + base_parts
        if node.module:
            parts += node.module.split(".")
        return ".".join(parts)

    # -- dotted-name resolution ----------------------------------------------

    def _project_parts(self, dotted: str) -> Optional[List[str]]:
        """``dotted`` relative to the scanned root, or ``None`` when it
        names something outside the project."""
        parts = dotted.split(".")
        if parts[0] != ROOT_PACKAGE:
            return None
        return parts[1:]

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Sym:
        """Resolve a canonical dotted name to a project symbol, falling
        back to an external symbol for anything outside the root."""
        if _depth > 16:  # import chains can loop; stay silent, not stuck
            return UNKNOWN
        parts = self._project_parts(dotted)
        if parts is None:
            return Sym("external", dotted)
        # Longest prefix that names a module, then member lookup.
        for split in range(len(parts), -1, -1):
            mod_q = ".".join(parts[:split])
            table = self.modules.get(mod_q if mod_q else "__root__")
            if table is None:
                continue
            rest = parts[split:]
            if not rest:
                return Sym("module", table)
            return self._member(table, rest, _depth)
        return UNKNOWN

    def _member(self, table: ModuleTable, rest: List[str],
                _depth: int = 0) -> Sym:
        head, tail = rest[0], rest[1:]
        if head in table.functions:
            return Sym("func", table.functions[head]) if not tail else UNKNOWN
        if head in table.classes:
            cls = table.classes[head]
            if not tail:
                return Sym("class", cls)
            if len(tail) == 1 and tail[0] in cls.methods:
                return Sym("func", cls.methods[tail[0]])
            return UNKNOWN
        if head in table.globals:
            return Sym("global", (table, head)) if not tail else UNKNOWN
        if head in table.imports:
            target = table.imports[head]
            return self.resolve_dotted(".".join([target] + tail), _depth + 1)
        return UNKNOWN

    # -- expression resolution -----------------------------------------------

    def module_of(self, fn: FunctionInfo) -> ModuleTable:
        return self.modules[_module_qname(fn.module)]

    def resolve_name(self, fn: FunctionInfo, name: str) -> Sym:
        """Resolve a bare name as seen from inside ``fn``."""
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            if name in scope.children:
                return Sym("func", scope.children[name])
            scope = scope.parent
        table = self.module_of(fn)
        if name in table.functions:
            return Sym("func", table.functions[name])
        if name in table.classes:
            return Sym("class", table.classes[name])
        if name in table.imports:
            return self.resolve_dotted(table.imports[name])
        if name in table.globals:
            return Sym("global", (table, name))
        if hasattr(builtins, name):
            return Sym("external", f"builtins.{name}")
        return UNKNOWN

    def resolve_value(self, fn: FunctionInfo, node: ast.expr,
                      _depth: int = 0) -> Sym:
        """Resolve the *value* of an expression: what a reference points
        at (function, class, module, instance-of-class, external)."""
        if _depth > 8:
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and fn.cls is not None:
                return Sym("instance", fn.cls)
            sym = self.resolve_name(fn, node.id)
            if sym.kind == "unknown" and not fn.is_module:
                inferred = self._infer_local(fn, node.id, _depth)
                if inferred is not None:
                    return inferred
            if sym.kind == "global":
                table, gname = sym.ref  # type: ignore[misc]
                inferred = self._instance_of(table.body, table.globals[gname],
                                             _depth)
                return inferred if inferred is not None else sym
            return sym
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute(fn, node, _depth)
        if isinstance(node, ast.Call):
            target = self.resolve_value(fn, node.func, _depth + 1)
            if target.kind == "class":
                return Sym("instance", target.ref)
            return UNKNOWN
        if isinstance(node, ast.Await):
            return self.resolve_value(fn, node.value, _depth + 1)
        return UNKNOWN

    def _resolve_attribute(self, fn: FunctionInfo, node: ast.Attribute,
                           _depth: int) -> Sym:
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                and fn.cls is not None:
            return self._class_member(fn.cls, node.attr)
        base_sym = self.resolve_value(fn, base, _depth + 1)
        if base_sym.kind == "module":
            table: ModuleTable = base_sym.ref  # type: ignore[assignment]
            return self._member(table, [node.attr])
        if base_sym.kind == "external":
            return Sym("external", f"{base_sym.ref}.{node.attr}")
        if base_sym.kind == "class":
            cls: ClassInfo = base_sym.ref  # type: ignore[assignment]
            return self._class_member(cls, node.attr)
        if base_sym.kind == "instance":
            cls = base_sym.ref  # type: ignore[assignment]
            return self._class_member(cls, node.attr)
        if base_sym.kind == "instance_external":
            # An attribute of an externally-constructed value: keep the
            # provenance so e.g. ``self._sock.sendall`` resolves to
            # ``socket.create_connection.sendall``.
            return Sym("external", f"{base_sym.ref}.{node.attr}")
        return UNKNOWN

    def _class_member(self, cls: ClassInfo, attr: str,
                      _seen: Optional[set] = None) -> Sym:
        if _seen is None:
            _seen = set()
        if cls.qname in _seen:
            return UNKNOWN
        _seen.add(cls.qname)
        if attr in cls.methods:
            return Sym("func", cls.methods[attr])
        attr_types = self.attr_types(cls)
        if attr in attr_types:
            return attr_types[attr]
        table = self.modules[_module_qname(cls.module)]
        for base in cls.bases:
            base_sym = None
            if isinstance(base, ast.Name):
                base_sym = self._member(table, [base.id])
            elif isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name):
                base_sym = self._member(table, [base.value.id, base.attr])
            if base_sym is not None and base_sym.kind == "class":
                found = self._class_member(base_sym.ref, attr, _seen)
                if found.kind != "unknown":
                    return found
        return UNKNOWN

    def _infer_local(self, fn: FunctionInfo, name: str,
                     _depth: int) -> Optional[Sym]:
        """Type of a local variable or parameter, from a constructor
        assignment, a ``with ... as`` item, or a parameter annotation."""
        node = fn.node
        if isinstance(node, ast.Module):
            return None
        for stmt in _iter_own_statements(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name) and \
                    stmt.targets[0].id == name:
                return self._instance_of(fn, stmt.value, _depth)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name) and \
                            item.optional_vars.id == name:
                        return self._instance_of(fn, item.context_expr,
                                                 _depth)
        for arg in (node.args.posonlyargs + node.args.args +
                    node.args.kwonlyargs):
            if arg.arg == name and arg.annotation is not None:
                return self._annotation_type(fn, arg.annotation, _depth)
        return None

    def _instance_of(self, fn: FunctionInfo, value: ast.expr,
                     _depth: int) -> Optional[Sym]:
        """The instance symbol a constructor-call expression produces.
        A bare name (``self.state = state``) resolves through the local
        scope, so an annotated parameter propagates its type."""
        if _depth > 8:
            return None
        if isinstance(value, ast.Name):
            sym = self.resolve_value(fn, value, _depth + 1)
            if sym.kind in ("instance", "instance_external"):
                return sym
            return None
        if isinstance(value, ast.Call):
            target = self.resolve_value(fn, value.func, _depth + 1)
            if target.kind == "class":
                return Sym("instance", target.ref)
            if target.kind == "external":
                return Sym("instance_external", target.ref)
            if target.kind == "func":
                callee: FunctionInfo = target.ref  # type: ignore[assignment]
                returns = getattr(callee.node, "returns", None)
                if returns is not None:
                    return self._annotation_type(callee, returns, _depth + 1)
        return None

    def _annotation_type(self, fn: FunctionInfo, ann: ast.expr,
                         _depth: int) -> Optional[Sym]:
        """Instance symbol for a parameter/return annotation; unwraps
        ``Optional[X]`` / ``"X"`` string annotations one level."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            ann = ann.slice if not isinstance(ann.slice, ast.Tuple) \
                else ann.slice.elts[0]
        if isinstance(ann, (ast.Name, ast.Attribute)):
            sym = self.resolve_value(fn, ann, _depth + 1)
            if sym.kind == "class":
                return Sym("instance", sym.ref)
            if sym.kind == "external":
                return Sym("instance_external", sym.ref)
        return None

    # -- attribute types -----------------------------------------------------

    #: Constructor calls treated as type evidence for ``self.x = ...``.
    def attr_types(self, cls: ClassInfo) -> Dict[str, Sym]:
        """``self.<attr>`` types inferred from assignments in any method
        (conflicting assignments drop to unknown and are omitted)."""
        if cls._attr_types is not None:
            return cls._attr_types
        cls._attr_types = {}  # set first: cycle-safe for recursive types
        found: Dict[str, Sym] = {}
        conflicted: set = set()
        for method in cls.methods.values():
            node = method.node
            if isinstance(node, ast.Module):
                continue
            for stmt in _iter_own_statements(node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None:
                    continue
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    inferred = self._instance_of(method, value, 0)
                    if inferred is None:
                        continue
                    attr = target.attr
                    prev = found.get(attr)
                    if prev is not None and (prev.kind, repr(prev.ref)) != \
                            (inferred.kind, repr(inferred.ref)):
                        conflicted.add(attr)
                    else:
                        found[attr] = inferred
        cls._attr_types.update({a: s for a, s in found.items()
                                if a not in conflicted})
        return cls._attr_types

    # -- call graph ----------------------------------------------------------

    def callsites(self, fn: FunctionInfo) -> List[CallSite]:
        """Every call expression in ``fn``'s own body, resolved."""
        cached = self._callsites.get(fn.qname)
        if cached is not None:
            return cached
        sites: List[CallSite] = []
        for node in _iter_own_statements(fn.node):
            if isinstance(node, ast.Call):
                sites.append(CallSite(node, self.resolve_value(fn, node.func)))
        self._callsites[fn.qname] = sites
        return sites

    def project_callees(self, fn: FunctionInfo) -> List[Tuple[FunctionInfo, ast.Call]]:
        """Resolved project-internal callees of ``fn`` (constructor calls
        resolve to ``__init__`` when the class defines one)."""
        out: List[Tuple[FunctionInfo, ast.Call]] = []
        for site in self.callsites(fn):
            target = site.target
            if target.kind == "func":
                out.append((target.ref, site.node))
            elif target.kind == "class":
                init = target.ref.methods.get("__init__")
                if init is not None:
                    out.append((init, site.node))
        return out

    def resolve_callable_ref(self, fn: FunctionInfo,
                             node: ast.expr) -> Sym:
        """Resolve a callback *reference* (``target=self._main``,
        ``pool.submit(worker, ...)``): like :meth:`resolve_value` but a
        bare function/class symbol is the answer, not an instance."""
        sym = self.resolve_value(fn, node)
        if sym.kind in ("func", "class", "external"):
            return sym
        return UNKNOWN

    def all_functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function, module bodies included, in a stable
        order (sorted by qualified name)."""
        for qname in sorted(self.functions):
            yield self.functions[qname]
