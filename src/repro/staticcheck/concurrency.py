"""The interprocedural concurrency rules: R006–R009.

All four rules run over the :class:`~repro.staticcheck.callgraph.ProjectIndex`
(whole-project symbol table + call graph) and the
:class:`~repro.staticcheck.domains.DomainAnalysis` thread-domain pass,
via the engine's ``check_project`` hook.  They exist because PRs 1–2
made the tree concurrent — an asyncio admission service on a dedicated
``ServerThread``, campaign workers in a process pool, process-wide
caches shared between them — and a data race or a stalled event loop
silently voids the determinism guarantees every reproduced figure rests
on.  The single-file rules cannot see any of that; these can:

* **R006 blocking-in-async** — a blocking primitive (``time.sleep``,
  sync socket/file I/O, ``subprocess``) reachable from a coroutine
  stalls the whole event loop, freezing every pipelined connection.
* **R007 domain confinement** — module-level mutable state written from
  more than one thread domain without a lock is a data race; confined
  or internally-locked state is fine and recognised as such.
* **R008 lock discipline** — inconsistent acquisition order across
  threads deadlocks; ``await`` while holding a sync lock blocks the
  loop for as long as any other thread holds the lock; a bare
  ``acquire()`` leaks on the first exception.
* **R009 fork/pickle safety** — locks, sockets, and event-loop
  references do not survive pickling into a ``multiprocessing`` worker
  (or silently detach, which is worse).

Shared design rule: resolution failures stay *silent*.  A dynamic call
the index cannot resolve contributes no edge, no domain, no violation —
the checker must never guess, and never crash.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import ClassInfo, FunctionInfo, ProjectIndex
from .domains import LOOP, DomainAnalysis
from .rules import Rule
from .violations import Violation

__all__ = [
    "BlockingInAsyncRule",
    "DomainConfinementRule",
    "LockDisciplineRule",
    "ForkSafetyRule",
    "CONCURRENCY_RULES",
]


def _child_stmt_lists(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    """The statement lists nested directly inside a compound statement
    (bodies, orelse, finalbody, except-handler bodies) — the unit the
    lock-context walkers recurse on."""
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, list):
            if value and isinstance(value[0], ast.stmt):
                yield value
            else:
                for v in value:
                    if isinstance(v, ast.ExceptHandler):
                        yield v.body


def _own_expr_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """``stmt`` plus its expression subtrees, *not* descending into
    nested statements — structural recursion owns those, so each node is
    visited exactly once with the correct lock context."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for _field, value in ast.iter_fields(node):
            if isinstance(value, ast.AST):
                if not isinstance(value, ast.stmt):
                    stack.append(value)
            elif isinstance(value, list):
                for v in value:
                    if isinstance(v, ast.AST) and \
                            not isinstance(v, (ast.stmt, ast.ExceptHandler)):
                        stack.append(v)


# ---------------------------------------------------------------------------
# R006 — blocking calls reachable from the event loop


class BlockingInAsyncRule(Rule):
    """No blocking primitives on the event loop.

    Every request of the admission service is handled by coroutines on
    one loop; a single ``time.sleep`` (or sync socket read, subprocess
    wait, file read) anywhere in the synchronous call chain under a
    coroutine stalls *every* connection at once.  The rule flags
    blocking primitives in any function the domain pass places on an
    event loop — i.e. reachable from a coroutine without an
    ``run_in_executor`` / ``to_thread`` hop (those re-domain the callee
    to a worker thread and are recognised as such).
    """

    rule_id = "R006"
    name = "blocking-in-async"
    uses_project = True
    description = ("no blocking primitives (time.sleep, sync socket/file "
                   "I/O, subprocess) in functions reachable from a "
                   "coroutine")

    #: Exact external names that block the calling thread.
    BLOCKING = {
        "time.sleep",
        "builtins.open",
        "builtins.input",
        "os.system",
        "os.popen",
        "os.waitpid",
        "select.select",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
    #: Dotted prefixes that block (module families and methods of
    #: externally-constructed blocking objects).
    BLOCKING_PREFIXES = (
        "subprocess.",
        "socket.create_connection.",   # methods of a connected socket
        "socket.socket.",              # methods of a raw socket
    )
    #: Socket methods that wait on the peer (the prefixes above only
    #: match when construction was resolvable; these names make the
    #: message precise).
    _WAITING = {"recv", "recv_into", "accept", "connect", "sendall",
                "makefile", "read", "readline"}

    def _is_blocking(self, external: str) -> bool:
        if external in self.BLOCKING:
            return True
        return any(external.startswith(p) for p in self.BLOCKING_PREFIXES)

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        domains = DomainAnalysis.of(project)
        for fn in project.all_functions():
            if fn.is_module:
                continue
            if LOOP not in domains.domains_of(fn):
                continue
            for site in project.callsites(fn):
                external = site.target.external_name
                if external is None or not self._is_blocking(external):
                    continue
                where = ("inside coroutine" if fn.is_async
                         else "reachable from the event loop")
                yield Violation(
                    path=fn.module.relpath,
                    line=getattr(site.node, "lineno", 1),
                    col=getattr(site.node, "col_offset", 0),
                    rule_id=self.rule_id,
                    message=(f"{external} blocks the event loop "
                             f"({where} {fn.qname}: "
                             f"{domains.why(fn, LOOP)}) — await an async "
                             "equivalent or offload via run_in_executor"))


# ---------------------------------------------------------------------------
# R007 — thread-domain confinement of module-level mutable state


class _WriteSite:
    """One mutation of a tracked module-level global."""

    __slots__ = ("fn", "node", "protected", "how")

    def __init__(self, fn: FunctionInfo, node: ast.AST, protected: bool,
                 how: str) -> None:
        self.fn = fn
        self.node = node
        self.protected = protected
        self.how = how


class DomainConfinementRule(Rule):
    """Module-level mutable state must be single-domain, locked, or
    internally synchronised.

    The process-wide caches (``ANALYSIS_CACHE``, ``HYPERPERIOD_CACHE``)
    are written by campaign code on the main thread *and* by the
    admission service on its ``ServerThread`` event loop; an unlocked
    ``OrderedDict`` mutated from two threads corrupts itself under
    free-threaded Python and drops/duplicates entries even under the
    GIL.  A write is considered safe when it happens under a ``with
    <lock>`` on a resolvable lock, or through a method of a class whose
    mutating methods all take ``self._lock`` (the pattern
    :class:`repro.util.lru.LRUCache` implements) — that is what makes
    "give the LRU a lock" a *fix* the checker can verify rather than a
    comment it has to trust.
    """

    rule_id = "R007"
    name = "domain-confinement"
    uses_project = True
    description = ("module-level mutable state must not be written from "
                   "two thread domains without a lock or internal "
                   "synchronisation")

    #: External constructors that build mutable containers.
    MUTABLE_CTORS = {
        "builtins.list", "builtins.dict", "builtins.set",
        "builtins.bytearray",
        "collections.defaultdict", "collections.OrderedDict",
        "collections.Counter", "collections.deque",
    }
    #: Method names that mutate common containers (used only when the
    #: receiver's class cannot be resolved to project code).
    MUTATOR_NAMES = {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "add", "discard",
        "appendleft", "popleft", "move_to_end", "put",
    }
    #: External lock constructors that protect a write site.
    LOCK_CTORS = {"threading.Lock", "threading.RLock",
                  "threading.Condition", "threading.Semaphore",
                  "threading.BoundedSemaphore"}

    # -- tracked globals -----------------------------------------------------

    def _tracked_globals(self, project: ProjectIndex
                         ) -> Dict[Tuple[str, str], Optional[ClassInfo]]:
        """``(module_qname, name) -> project class (or None)`` for every
        module-level binding whose value is mutable."""
        tracked: Dict[Tuple[str, str], Optional[ClassInfo]] = {}
        for mod_q in sorted(project.modules):
            table = project.modules[mod_q]
            body = table.body
            if body is None:
                continue
            for name, value in table.globals.items():
                if name.isupper() and isinstance(value, (ast.Tuple,
                                                         ast.Constant)):
                    continue  # immutable constant
                if isinstance(value, (ast.List, ast.Dict, ast.Set,
                                      ast.ListComp, ast.SetComp,
                                      ast.DictComp)):
                    tracked[(mod_q, name)] = None
                elif isinstance(value, ast.Call):
                    target = project.resolve_value(body, value.func)
                    if target.kind == "class":
                        tracked[(mod_q, name)] = target.ref
                    elif target.external_name in self.MUTABLE_CTORS:
                        tracked[(mod_q, name)] = None
        return tracked

    # -- lock recognition ----------------------------------------------------

    def _is_lock(self, project: ProjectIndex, fn: FunctionInfo,
                 expr: ast.expr) -> bool:
        sym = project.resolve_value(fn, expr)
        return sym.kind == "instance_external" and \
            sym.ref in self.LOCK_CTORS

    def _lock_attrs(self, project: ProjectIndex, cls: ClassInfo) -> Set[str]:
        return {attr for attr, sym in project.attr_types(cls).items()
                if sym.kind == "instance_external"
                and sym.ref in self.LOCK_CTORS}

    def _method_mutation(self, project: ProjectIndex,
                         method: FunctionInfo) -> str:
        """``'no'`` (method does not mutate self), ``'locked'`` (every
        mutation sits under ``with self.<lock>``), or ``'unlocked'``."""
        cls = method.cls
        if cls is None or isinstance(method.node, ast.Module):
            return "no"
        lock_attrs = self._lock_attrs(project, cls)

        def is_self_attr(node: ast.expr) -> bool:
            return (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self")

        def is_lock_guard(item: ast.withitem) -> bool:
            ctx = item.context_expr
            return is_self_attr(ctx) and ctx.attr in lock_attrs  # type: ignore[union-attr]

        def mutates(node: ast.AST) -> bool:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    inner = target
                    while isinstance(inner, ast.Subscript):
                        inner = inner.value
                    if is_self_attr(inner):
                        # ``self.x = threading.Lock()`` in __init__ is
                        # construction, not shared-state mutation.
                        return method.name != "__init__"
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self.MUTATOR_NAMES:
                inner = node.func.value
                while isinstance(inner, ast.Subscript):
                    inner = inner.value
                if is_self_attr(inner):
                    return True
            return False

        unlocked = False
        mutated = False

        def walk(stmts: Sequence[ast.stmt], locked: bool) -> None:
            nonlocal unlocked, mutated
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    guards = any(is_lock_guard(i) for i in stmt.items)
                    walk(stmt.body, locked or guards)
                    continue
                for node in _own_expr_nodes(stmt):
                    if mutates(node):
                        mutated = True
                        if not locked:
                            unlocked = True
                # Nested statements recurse structurally so a With inside
                # e.g. an If still counts as locked for its body.
                for sub in _child_stmt_lists(stmt):
                    walk(sub, locked)

        walk(list(method.node.body), False)
        if not mutated:
            return "no"
        return "unlocked" if unlocked else "locked"

    # -- write-site scanning -------------------------------------------------

    def _resolve_global(self, project: ProjectIndex, fn: FunctionInfo,
                        name: str,
                        tracked: Dict[Tuple[str, str], Optional[ClassInfo]]
                        ) -> Optional[Tuple[str, str]]:
        """The tracked-global key a bare name refers to, if any (follows
        import aliases so cross-module writes canonicalise)."""
        sym = project.resolve_name(fn, name)
        if sym.kind != "global":
            return None
        table, gname = sym.ref  # type: ignore[misc]
        key = (table.qname, gname)
        return key if key in tracked else None

    def _iter_writes(self, project: ProjectIndex, fn: FunctionInfo,
                     tracked: Dict[Tuple[str, str], Optional[ClassInfo]]
                     ) -> Iterator[Tuple[Tuple[str, str], ast.AST, bool, str]]:
        """Yields ``(global key, node, protected, how)`` for each write
        to a tracked global inside ``fn``."""
        declared_global: Set[str] = set()
        if not fn.is_module:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)

        def under_lock(stack: List[bool]) -> bool:
            return any(stack)

        def classify_method_call(key: Tuple[str, str], call: ast.Call,
                                 locked: bool) -> Optional[
                                     Tuple[Tuple[str, str], ast.AST, bool, str]]:
            attr = call.func.attr  # type: ignore[union-attr]
            cls = tracked[key]
            if cls is not None:
                method = cls.methods.get(attr)
                if method is None:
                    return None
                mutation = self._method_mutation(project, method)
                if mutation == "no":
                    return None
                protected = locked or mutation == "locked"
                how = (f"{cls.name}.{attr}() "
                       + ("synchronises internally" if mutation == "locked"
                          else "mutates without a lock"))
                return key, call, protected, how
            if attr in self.MUTATOR_NAMES:
                return key, call, locked, f".{attr}() on a shared container"
            return None

        def walk(stmts: Sequence[ast.stmt], lock_stack: List[bool]
                 ) -> Iterator[Tuple[Tuple[str, str], ast.AST, bool, str]]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    guards = any(self._is_lock(project, fn, i.context_expr)
                                 for i in stmt.items)
                    yield from walk(stmt.body, lock_stack + [guards])
                    continue
                locked = under_lock(lock_stack)
                for node in _own_expr_nodes(stmt):
                    yield from self._stmt_writes(
                        project, fn, node, tracked, declared_global,
                        locked, classify_method_call)
                for sub in _child_stmt_lists(stmt):
                    yield from walk(sub, lock_stack)

        yield from walk(list(fn.node.body), [])

    def _stmt_writes(self, project: ProjectIndex, fn: FunctionInfo,
                     node: ast.AST,
                     tracked: Dict[Tuple[str, str], Optional[ClassInfo]],
                     declared_global: Set[str], locked: bool,
                     classify_method_call) -> Iterator[
                         Tuple[Tuple[str, str], ast.AST, bool, str]]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    key = self._resolve_global(project, fn,
                                               target.value.id, tracked)
                    if key is not None:
                        yield key, node, locked, "subscript assignment"
                elif isinstance(target, ast.Name) and \
                        target.id in declared_global:
                    key = self._resolve_global(project, fn, target.id,
                                               tracked)
                    if key is not None:
                        yield key, node, locked, "rebinding via `global`"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name):
            key = self._resolve_global(project, fn, node.func.value.id,
                                       tracked)
            if key is not None:
                found = classify_method_call(key, node, locked)
                if found is not None:
                    yield found

    # -- the rule ------------------------------------------------------------

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        domains = DomainAnalysis.of(project)
        tracked = self._tracked_globals(project)
        if not tracked:
            return
        sites: Dict[Tuple[str, str], List[_WriteSite]] = {}
        for fn in project.all_functions():
            for key, node, protected, how in self._iter_writes(project, fn,
                                                               tracked):
                sites.setdefault(key, []).append(
                    _WriteSite(fn, node, protected, how))
        for key in sorted(sites):
            mod_q, name = key
            writes = sites[key]
            write_domains: Set[str] = set()
            for site in writes:
                write_domains |= domains.shared_domains_of(site.fn)
            if len(write_domains) < 2:
                continue  # confined to one domain (workers own a copy)
            unprotected = [s for s in writes if not s.protected]
            for site in unprotected:
                others = sorted(write_domains)
                yield Violation(
                    path=site.fn.module.relpath,
                    line=getattr(site.node, "lineno", 1),
                    col=getattr(site.node, "col_offset", 0),
                    rule_id=self.rule_id,
                    message=(f"{mod_q}.{name} is written from thread "
                             f"domains {{{', '.join(others)}}} but this "
                             f"write ({site.how}, in {site.fn.qname}) "
                             "holds no lock — guard it, confine the "
                             "state to one domain, or synchronise the "
                             "container internally"))


# ---------------------------------------------------------------------------
# R008 — lock discipline


class _LockRef:
    """One resolvable lock object: identity + kind."""

    __slots__ = ("ident", "ctor", "label")

    def __init__(self, ident: Tuple[str, ...], ctor: str, label: str) -> None:
        self.ident = ident
        self.ctor = ctor
        self.label = label

    @property
    def is_sync(self) -> bool:
        return not self.ctor.startswith("asyncio.")

    @property
    def is_reentrant(self) -> bool:
        return self.ctor == "threading.RLock"


class _FnLocks:
    """Per-function lock facts feeding the interprocedural pass."""

    __slots__ = ("acquires", "calls", "violations", "edges")

    def __init__(self) -> None:
        #: Locks this function acquires directly: (lock, node).
        self.acquires: List[Tuple[_LockRef, ast.AST]] = []
        #: Project calls with the locks held at the call site.
        self.calls: List[Tuple[FunctionInfo, ast.AST, Tuple[_LockRef, ...]]] = []
        self.violations: List[Violation] = []
        #: Direct order edges observed lexically: (held, acquired, node).
        self.edges: List[Tuple[_LockRef, _LockRef, ast.AST]] = []


class LockDisciplineRule(Rule):
    """Deadlock-freedom by construction: a global acquisition order, no
    ``await`` under a sync lock, no bare ``acquire()``.

    The acquisition-order graph has one node per lock (module global or
    ``self.<attr>``, conflating instances of a class — conservative) and
    an edge A→B whenever B is acquired, directly or through any resolved
    call chain, while A is held.  A cycle means two threads can block
    each other forever; the single-edge cases (``await`` under a
    ``threading`` lock, ``acquire()`` outside ``with``/``try-finally``)
    hang or leak without needing a second thread.
    """

    rule_id = "R008"
    name = "lock-discipline"
    uses_project = True
    description = ("lock-acquisition order must be acyclic; no await "
                   "under a sync lock; acquire only via with or "
                   "try-finally")

    LOCK_CTORS = {"threading.Lock", "threading.RLock",
                  "threading.Condition", "asyncio.Lock",
                  "asyncio.Condition"}

    # -- lock resolution -----------------------------------------------------

    def _resolve_lock(self, project: ProjectIndex, fn: FunctionInfo,
                      expr: ast.expr) -> Optional[_LockRef]:
        sym = project.resolve_value(fn, expr)
        if sym.kind != "instance_external" or sym.ref not in self.LOCK_CTORS:
            return None
        ctor: str = sym.ref  # type: ignore[assignment]
        if isinstance(expr, ast.Name):
            owner = project.resolve_name(fn, expr.id)
            if owner.kind == "global":
                table, gname = owner.ref  # type: ignore[misc]
                return _LockRef(("global", table.qname, gname), ctor,
                                f"{table.qname}.{gname}")
            return _LockRef(("local", fn.qname, expr.id), ctor,
                            f"{fn.qname}:{expr.id}")
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and \
                expr.value.id == "self" and fn.cls is not None:
            return _LockRef(("attr", fn.cls.qname, expr.attr), ctor,
                            f"{fn.cls.qname}.{expr.attr}")
        return None

    # -- per-function scan ---------------------------------------------------

    def _scan(self, project: ProjectIndex, fn: FunctionInfo) -> _FnLocks:
        facts = _FnLocks()
        edges: List[Tuple[_LockRef, _LockRef, ast.AST]] = []

        def violation(node: ast.AST, message: str) -> None:
            facts.violations.append(Violation(
                path=fn.module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=self.rule_id, message=message))

        def on_acquire(lock: _LockRef, node: ast.AST,
                       held: Tuple[_LockRef, ...]) -> None:
            facts.acquires.append((lock, node))
            for h in held:
                if h.ident == lock.ident:
                    if lock.is_sync and not lock.is_reentrant:
                        violation(node,
                                  f"re-acquisition of non-reentrant lock "
                                  f"{lock.label} while already held — "
                                  "self-deadlock")
                    continue
                edges.append((h, lock, node))

        def visit_expr(node: ast.expr, held: Tuple[_LockRef, ...],
                       releasable: Set[Tuple[str, ...]]) -> None:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Lambda,)):
                    continue
                if isinstance(sub, ast.Await):
                    sync_held = [h for h in held if h.is_sync]
                    if sync_held:
                        violation(sub,
                                  f"await while holding sync lock "
                                  f"{sync_held[0].label} — blocks the "
                                  "event loop until another thread "
                                  "releases it")
                elif isinstance(sub, ast.Call):
                    self._visit_call(project, fn, sub, held, releasable,
                                     facts, on_acquire, violation)

        def finally_released(finalbody: Sequence[ast.stmt]
                             ) -> Set[Tuple[str, ...]]:
            out: Set[Tuple[str, ...]] = set()
            for stmt in finalbody:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            node.func.attr == "release":
                        lock = self._resolve_lock(project, fn,
                                                  node.func.value)
                        if lock is not None:
                            out.add(lock.ident)
            return out

        def walk(stmts: Sequence[ast.stmt], held: Tuple[_LockRef, ...],
                 releasable: Set[Tuple[str, ...]]) -> None:
            for i, stmt in enumerate(stmts):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                # ``lock.acquire()`` immediately followed by
                # ``try: ... finally: lock.release()`` is the idiomatic
                # manual form — the next statement's finally legitimises
                # this statement's acquire (and only this statement's).
                nxt = stmts[i + 1] if i + 1 < len(stmts) else None
                step_releasable = releasable
                if isinstance(nxt, ast.Try) and nxt.finalbody:
                    step_releasable = releasable | \
                        finally_released(nxt.finalbody)
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired: List[_LockRef] = []
                    inner_held = held
                    for item in stmt.items:
                        visit_expr(item.context_expr, inner_held, releasable)
                        lock = self._resolve_lock(project, fn,
                                                  item.context_expr)
                        if lock is not None:
                            on_acquire(lock, item.context_expr, inner_held)
                            acquired.append(lock)
                            inner_held = inner_held + (lock,)
                    if isinstance(stmt, ast.AsyncWith):
                        sync_held = [h for h in held if h.is_sync]
                        if sync_held:
                            violation(stmt,
                                      f"async with while holding sync "
                                      f"lock {sync_held[0].label} — "
                                      "suspends the coroutine with the "
                                      "lock held")
                    walk(stmt.body, inner_held, releasable)
                    continue
                if isinstance(stmt, ast.Try):
                    released = finally_released(stmt.finalbody)
                    walk(stmt.body, held, releasable | released)
                    for handler in stmt.handlers:
                        walk(handler.body, held, releasable | released)
                    walk(stmt.orelse, held, releasable | released)
                    walk(stmt.finalbody, held, releasable)
                    continue
                for _field, value in ast.iter_fields(stmt):
                    if isinstance(value, list) and value and \
                            isinstance(value[0], ast.stmt):
                        walk(value, held, releasable)
                    elif isinstance(value, ast.expr):
                        visit_expr(value, held, step_releasable)
                    elif isinstance(value, list):
                        for v in value:
                            if isinstance(v, ast.expr):
                                visit_expr(v, held, step_releasable)

        walk(list(fn.node.body), (), set())
        facts.edges = edges
        return facts

    def _visit_call(self, project: ProjectIndex, fn: FunctionInfo,
                    call: ast.Call, held: Tuple[_LockRef, ...],
                    releasable: Set[Tuple[str, ...]], facts: _FnLocks,
                    on_acquire, violation) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            lock = self._resolve_lock(project, fn, func.value)
            if lock is not None:
                if lock.ident not in releasable:
                    violation(call,
                              f"{lock.label}.acquire() outside "
                              "with/try-finally — the lock leaks on the "
                              "first exception")
                on_acquire(lock, call, held)
            return
        if isinstance(func, ast.Attribute) and func.attr == "release":
            return
        target = project.resolve_value(fn, func)
        callee: Optional[FunctionInfo] = None
        if target.kind == "func":
            callee = target.ref  # type: ignore[assignment]
        elif target.kind == "class":
            callee = target.ref.methods.get("__init__")  # type: ignore[union-attr]
        if callee is not None:
            facts.calls.append((callee, call, held))

    # -- the rule ------------------------------------------------------------

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        facts: Dict[str, _FnLocks] = {}
        for fn in project.all_functions():
            facts[fn.qname] = self._scan(project, fn)

        # Transitive acquire sets, to a fixpoint (cycle-safe).
        all_acquires: Dict[str, Set[Tuple[str, ...]]] = {
            q: {lock.ident for lock, _ in f.acquires}
            for q, f in facts.items()}
        lock_by_ident: Dict[Tuple[str, ...], _LockRef] = {}
        for f in facts.values():
            for lock, _node in f.acquires:
                lock_by_ident.setdefault(lock.ident, lock)
        changed = True
        while changed:
            changed = False
            for qname in sorted(facts):
                mine = all_acquires[qname]
                for callee, _node, _held in facts[qname].calls:
                    extra = all_acquires.get(callee.qname, set()) - mine
                    if extra:
                        mine |= extra
                        changed = True

        # Order edges: direct (recorded in _scan) + through calls.
        edges: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]],
                    Tuple[str, int, str]] = {}
        for qname in sorted(facts):
            f = facts[qname]
            fn = project.functions[qname]
            for a, b, node in getattr(f, "edges", ()):
                edges.setdefault(
                    (a.ident, b.ident),
                    (fn.module.relpath, getattr(node, "lineno", 1),
                     f"{a.label} -> {b.label} in {qname}"))
            for callee, node, held in f.calls:
                if not held:
                    continue
                for ident in sorted(all_acquires.get(callee.qname, ())):
                    for h in held:
                        if h.ident == ident:
                            lock = lock_by_ident.get(ident)
                            if lock is not None and lock.is_sync and \
                                    not lock.is_reentrant:
                                yield Violation(
                                    path=fn.module.relpath,
                                    line=getattr(node, "lineno", 1),
                                    col=getattr(node, "col_offset", 0),
                                    rule_id=self.rule_id,
                                    message=(f"call to {callee.qname} "
                                             f"re-acquires non-reentrant "
                                             f"lock {h.label} already "
                                             "held here — self-deadlock"))
                            continue
                        edges.setdefault(
                            (h.ident, ident),
                            (fn.module.relpath, getattr(node, "lineno", 1),
                             f"{h.label} -> "
                             f"{lock_by_ident[ident].label} via call to "
                             f"{callee.qname} in {qname}"))

        yield from self._cycle_violations(edges, lock_by_ident)
        for qname in sorted(facts):
            yield from facts[qname].violations

    def _cycle_violations(self, edges, lock_by_ident) -> Iterator[Violation]:
        graph: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
        for a, b in edges:
            graph.setdefault(a, []).append(b)
        for out in graph.values():
            out.sort()
        seen_cycles: Set[Tuple[Tuple[str, ...], ...]] = set()
        visiting: List[Tuple[str, ...]] = []
        done: Set[Tuple[str, ...]] = set()
        cycles: List[List[Tuple[str, ...]]] = []

        def visit(node: Tuple[str, ...]) -> None:
            if node in done:
                return
            if node in visiting:
                cycle = visiting[visiting.index(node):]
                canon = tuple(sorted(cycle))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(cycle))
                return
            visiting.append(node)
            for nxt in graph.get(node, ()):
                visit(nxt)
            visiting.pop()
            done.add(node)

        for node in sorted(graph):
            visit(node)
        for cycle in cycles:
            head, nxt = cycle[0], cycle[1] if len(cycle) > 1 else cycle[0]
            relpath, lineno, how = edges[(head, nxt)]
            labels = [lock_by_ident[i].label for i in cycle]
            yield Violation(
                path=relpath, line=lineno, col=0, rule_id=self.rule_id,
                message=("lock-order cycle: "
                         + " -> ".join(labels + [labels[0]])
                         + f" (first edge: {how}) — two threads taking "
                         "these in opposite orders deadlock"))


# ---------------------------------------------------------------------------
# R009 — fork/pickle safety


class ForkSafetyRule(Rule):
    """Nothing holding a lock, socket, thread, or event-loop reference
    may be shipped into a ``multiprocessing`` worker.

    ``pickle`` either refuses such objects (``TypeError: cannot pickle
    '_thread.lock' object`` — at submit time, killing the campaign) or,
    for some types, silently rebuilds a detached copy in the child, which
    is worse: the worker then "locks" a lock nobody else can see.  The
    rule resolves every argument shipped to a process-pool submission to
    its class and walks the class's attribute graph transitively.
    """

    rule_id = "R009"
    name = "fork-safety"
    uses_project = True
    description = ("objects captured into multiprocessing workers must "
                   "not transitively hold locks, sockets, threads, or "
                   "event-loop references")

    #: External constructors whose values must stay in-process.
    UNSAFE_PREFIXES = (
        "threading.",
        "socket.",
        "asyncio.",
        "ssl.",
        "concurrent.futures.",
        "multiprocessing.",
        "selectors.",
    )
    UNSAFE_EXACT = {"builtins.open"}

    #: Process-backed executors/pools (thread pools pickle nothing).
    PROCESS_EXECUTORS = {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
    PROCESS_CTORS = {"multiprocessing.Process",
                     "multiprocessing.context.Process"}
    SUBMIT_METHODS = {"submit", "apply", "apply_async"}
    MAP_METHODS = {"map", "map_async", "starmap", "imap", "imap_unordered"}

    def _unsafe_ctor(self, ctor: str) -> bool:
        return ctor in self.UNSAFE_EXACT or \
            any(ctor.startswith(p) for p in self.UNSAFE_PREFIXES)

    def _unsafe_path(self, project: ProjectIndex, cls: ClassInfo,
                     _depth: int = 0,
                     _seen: Optional[Set[str]] = None
                     ) -> Optional[Tuple[str, str]]:
        """``(attribute path, offending constructor)`` when ``cls``
        transitively holds an unpicklable resource, else ``None``."""
        if _seen is None:
            _seen = set()
        if cls.qname in _seen or _depth > 5:
            return None
        _seen.add(cls.qname)
        attr_types = project.attr_types(cls)
        for attr in sorted(attr_types):
            sym = attr_types[attr]
            if sym.kind == "instance_external" and \
                    self._unsafe_ctor(sym.ref):  # type: ignore[arg-type]
                return attr, sym.ref  # type: ignore[return-value]
            if sym.kind == "instance":
                nested = self._unsafe_path(project, sym.ref, _depth + 1,
                                           _seen)
                if nested is not None:
                    return f"{attr}.{nested[0]}", nested[1]
        return None

    def _payload_exprs(self, project: ProjectIndex, fn: FunctionInfo,
                       call: ast.Call) -> Iterator[Tuple[ast.expr, str]]:
        """Expressions whose values cross the process boundary at this
        call, labelled for the message."""
        func = call.func
        target = project.resolve_value(fn, func)
        name = target.external_name
        if name in self.PROCESS_CTORS:
            for kw in call.keywords:
                if kw.arg == "target":
                    yield kw.value, "as the Process target"
                elif kw.arg == "args" and isinstance(kw.value,
                                                     (ast.Tuple, ast.List)):
                    for elt in kw.value.elts:
                        yield elt, "in Process args"
                elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
                    for v in kw.value.values:
                        yield v, "in Process kwargs"
            return
        if name in self.PROCESS_EXECUTORS:
            for kw in call.keywords:
                if kw.arg == "initializer":
                    yield kw.value, "as the pool initializer"
                elif kw.arg == "initargs" and isinstance(kw.value,
                                                         (ast.Tuple,
                                                          ast.List)):
                    for elt in kw.value.elts:
                        yield elt, "in the pool initargs"
            return
        if isinstance(func, ast.Attribute) and \
                func.attr in (self.SUBMIT_METHODS | self.MAP_METHODS):
            base = project.resolve_value(fn, func.value)
            if base.kind != "instance_external" or \
                    base.ref not in self.PROCESS_EXECUTORS:
                return
            if call.args:
                yield call.args[0], f"as the .{func.attr}() callable"
            if func.attr in self.SUBMIT_METHODS:
                for arg in call.args[1:]:
                    yield arg, f"as a .{func.attr}() argument"
                for kw in call.keywords:
                    if kw.arg is not None:
                        yield kw.value, f"as a .{func.attr}() argument"
            else:
                # map-style: the iterables' element types are opaque, but
                # a literal list of resolvable names is worth checking.
                for arg in call.args[1:]:
                    if isinstance(arg, (ast.List, ast.Tuple)):
                        for elt in arg.elts:
                            yield elt, f"in a .{func.attr}() iterable"

    def _check_payload(self, project: ProjectIndex, fn: FunctionInfo,
                       expr: ast.expr, label: str) -> Iterator[Violation]:
        sym = project.resolve_value(fn, expr)
        cls: Optional[ClassInfo] = None
        subject = ""
        if sym.kind == "instance":
            cls = sym.ref  # type: ignore[assignment]
            subject = f"a {cls.name} instance"
        elif sym.kind == "func":
            bound: FunctionInfo = sym.ref  # type: ignore[assignment]
            if bound.cls is not None and isinstance(expr, ast.Attribute):
                cls = bound.cls
                subject = f"bound method {cls.name}.{bound.name}"
        if cls is None:
            return
        unsafe = self._unsafe_path(project, cls, 0, None)
        if unsafe is None:
            return
        attr_path, ctor = unsafe
        yield Violation(
            path=fn.module.relpath,
            line=getattr(expr, "lineno", 1),
            col=getattr(expr, "col_offset", 0),
            rule_id=self.rule_id,
            message=(f"{subject} crosses a process boundary {label} but "
                     f"holds {ctor} (via .{attr_path}) — it cannot be "
                     "pickled into a worker; pass plain data instead"))

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for fn in project.all_functions():
            for site in project.callsites(fn):
                for expr, label in self._payload_exprs(project, fn,
                                                       site.node):
                    yield from self._check_payload(project, fn, expr, label)


#: The four concurrency rules, in id order — appended to RULES.
CONCURRENCY_RULES: Tuple[Rule, ...] = (
    BlockingInAsyncRule(),
    DomainConfinementRule(),
    LockDisciplineRule(),
    ForkSafetyRule(),
)
