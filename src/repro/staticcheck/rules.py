"""The domain rules: R001–R005.

Each rule is a small class with a ``check_module`` hook (one file at a
time) and an optional ``finalize`` hook (after every file is parsed, for
cross-file invariants).  Rules yield :class:`~repro.staticcheck.violations.Violation`
records; the engine applies pragma suppression afterwards, so rules never
need to know about pragmas.

The rule ids are stable API — baselines, pragmas, and CI logs refer to
them — so new checks get new ids rather than changing what an existing id
means.
"""

from __future__ import annotations

import ast
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from .engine import ModuleInfo
from .violations import Violation

if TYPE_CHECKING:
    from .callgraph import ProjectIndex

__all__ = [
    "Rule",
    "RULES",
    "ExactnessRule",
    "DeterminismRule",
    "LayeringRule",
    "KeyWidthRule",
    "HygieneRule",
    "LAYERS",
]


class Rule:
    """Base class: subclasses set the id/name/description and override
    one or more hooks."""

    rule_id = "R000"
    name = "abstract"
    description = ""
    #: Set to True by rules that override ``check_project`` — the engine
    #: builds the (expensive) ProjectIndex only when a selected rule
    #: actually needs it.
    uses_project = False
    #: Named project passes (see :mod:`~repro.staticcheck.passes`) this
    #: rule consumes.  The engine constructs exactly the union of the
    #: *selected* rules' declarations, so ``--select R013`` builds the
    #: seed-taint pass and nothing else — not the interval interpreter,
    #: not the ordering classifier.
    needs: Tuple[str, ...] = ()

    def check_module(self, module: ModuleInfo) -> Iterable[Violation]:
        return ()

    def finalize(self, modules: Sequence[ModuleInfo]) -> Iterable[Violation]:
        return ()

    def check_project(self, project: "ProjectIndex") -> Iterable[Violation]:
        """Whole-project hook: runs once with the cross-module symbol
        table / call graph (see :mod:`~repro.staticcheck.callgraph`)."""
        return ()

    def _violation(self, module: ModuleInfo, node: ast.AST,
                   message: str) -> Violation:
        return Violation(path=module.relpath,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         rule_id=self.rule_id, message=message)


def _import_aliases(tree: ast.Module, module_name: str) -> Set[str]:
    """Local names bound to ``import module_name [as alias]``."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name or \
                        alias.name.startswith(module_name + "."):
                    out.add((alias.asname or alias.name).split(".")[0])
    return out


def _from_import_aliases(tree: ast.Module, module_name: str,
                         names: Iterable[str]) -> Set[str]:
    """Local names bound to ``from module_name import name [as alias]``
    for any ``name`` in ``names``."""
    wanted = set(names)
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and not node.level \
                and node.module == module_name:
            for alias in node.names:
                if alias.name in wanted:
                    out.add(alias.asname or alias.name)
    return out


# ---------------------------------------------------------------------------
# R001 — exactness


class ExactnessRule(Rule):
    """No inexact arithmetic in decision paths.

    PD² tie-breaks are exact: integer quanta, rational weights, integer
    packed keys.  A single float literal, ``float()`` conversion, or true
    division (``/``) inside ``core/`` or ``sim/fastpath.py`` can silently
    change a priority comparison — the class of bug the differential
    suite can only catch by luck.  Metric/export conversions that
    genuinely need floats carry a line pragma with a justification.

    The vectorized kernel (``sim/vector.py``) gets the same base checks
    *plus* numpy dtype gating: every array it builds must carry an
    integer (or bool) dtype.  A single ``np.float64`` column — or one
    ``np.true_divide`` — silently rounds the packed 62-bit priority keys
    above 2**53 and reorders ties, so float dtypes and numpy's
    true-division entry points are flagged outright.
    """

    rule_id = "R001"
    name = "exactness"
    description = ("no float literals, float() calls, or true division "
                   "in decision paths (core/, sim/fastpath.py); numpy in "
                   "sim/vector.py restricted to integer dtypes")

    SCOPE_PACKAGES = ("core",)
    SCOPE_FILES = ("sim/fastpath.py",)
    #: Vectorized decision kernels: base checks apply *and* numpy usage
    #: is gated to integer/bool dtypes (int64 keys survive exactly;
    #: float64 mantissas do not).
    NUMPY_KERNEL_FILES = ("sim/vector.py",)

    #: ``np.<attr>`` spellings of inexact dtypes.
    FLOAT_DTYPE_ATTRS = frozenset({
        "float16", "float32", "float64", "float128", "half", "single",
        "double", "longdouble", "floating", "complex64", "complex128",
        "csingle", "cdouble", "complexfloating"})
    #: numpy callables that perform true division whatever the inputs.
    TRUE_DIVISION_FUNCS = frozenset({"divide", "true_divide"})
    #: dtype spellings as plain names / dtype-string prefixes.
    FLOAT_DTYPE_NAMES = ("float", "complex")

    def _in_scope(self, module: ModuleInfo) -> bool:
        return (module.package in self.SCOPE_PACKAGES
                or module.relpath in self.SCOPE_FILES
                or module.relpath in self.NUMPY_KERNEL_FILES)

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        if not self._in_scope(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value,
                                                             (float, complex)):
                yield self._violation(
                    module, node,
                    f"float literal {node.value!r} in a decision path")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "float":
                yield self._violation(
                    module, node, "float() conversion in a decision path")
            elif isinstance(node, (ast.BinOp, ast.AugAssign)) and \
                    isinstance(node.op, ast.Div):
                yield self._violation(
                    module, node,
                    "true division (/) in a decision path — use //, "
                    "Weight, or Fraction")
        if module.relpath in self.NUMPY_KERNEL_FILES:
            yield from self._check_numpy_kernel(module)

    def _is_float_dtype_expr(self, node: ast.AST,
                             numpy_aliases: Set[str]) -> bool:
        """Does ``node`` spell an inexact dtype (``float``, ``'float32'``,
        ``np.float64``, …)?  ``np.<attr>`` forms are excluded here — the
        attribute walk in :meth:`_check_numpy_kernel` already flags them
        wherever they appear, so flagging them again inside ``dtype=``
        would double-report one line."""
        if isinstance(node, ast.Name):
            return node.id in self.FLOAT_DTYPE_NAMES
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.lstrip("<>=|").startswith(
                self.FLOAT_DTYPE_NAMES + ("f2", "f4", "f8", "c8", "c16"))
        return False

    def _check_numpy_kernel(self, module: ModuleInfo) -> Iterator[Violation]:
        numpy_aliases = _import_aliases(module.tree, "numpy")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in numpy_aliases:
                if node.attr in self.FLOAT_DTYPE_ATTRS:
                    yield self._violation(
                        module, node,
                        f"float dtype {node.value.id}.{node.attr} in a "
                        "vectorized decision kernel — integer dtypes only")
                elif node.attr in self.TRUE_DIVISION_FUNCS:
                    yield self._violation(
                        module, node,
                        f"{node.value.id}.{node.attr}() is true division "
                        "— use // or floor_divide")
            elif isinstance(node, ast.keyword) and node.arg == "dtype" and \
                    self._is_float_dtype_expr(node.value, numpy_aliases):
                yield self._violation(
                    module, node.value,
                    "float dtype= in a vectorized decision kernel — "
                    "integer dtypes only")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "astype" and node.args and \
                    self._is_float_dtype_expr(node.args[0], numpy_aliases):
                yield self._violation(
                    module, node,
                    "astype() to a float dtype in a vectorized decision "
                    "kernel — integer dtypes only")


# ---------------------------------------------------------------------------
# R002 — determinism


class DeterminismRule(Rule):
    """No hidden nondeterminism in cached/simulated code paths.

    ``core/`` and ``sim/`` results are memoised across runs (hyperperiod
    cache, analysis cache) and replayed in differential tests, so any
    global-state RNG, wall-clock read, or environment read there breaks
    reproducibility.  That includes the accelerated kernels
    (``sim/fastpath.py``, ``sim/vector.py``): their cycle deltas are
    shared through one cache keyed only on task parameters, so a hidden
    environment read in either kernel would poison replays in the other.  ``campaign/`` is in scope because its checkpoints
    promise byte-identical resume: shard planning and seeding must stay
    clock-free (only the runner's dispatch loop may read clocks, for
    backoff/timeouts/metrics — see :data:`CLOCK_EXEMPT_FILES`).
    ``distrib/`` inherits the same contract — wire codecs and the lease
    table are clock-free; only the three process-facing files (worker
    server, coordinator, run driver) may read clocks, for heartbeats,
    lease deadlines, and status snapshots.  ``traces/`` is in scope
    because trace-replay campaigns promise the same byte-identical
    resume: the SWF parser and job→task mapping must be pure functions
    of the log, and the replay worker's only randomness is the
    planner-seeded ``default_rng`` (per docs/DETERMINISM.md).
    Environment toggles live in ``util/toggles.py`` — the one
    sanctioned read point.
    """

    rule_id = "R002"
    name = "determinism"
    description = ("no seedless RNGs, wall-clock reads, or environment "
                   "reads in core/ + sim/ + campaign/ + distrib/ + "
                   "traces/")

    SCOPE_PACKAGES = ("core", "sim", "campaign", "distrib", "traces")
    #: Files in scope that may read wall clocks: the campaign *runner*
    #: owns retry backoff, timeouts, throughput metering, and run-metadata
    #: timestamps — all of which live outside the determinism contract
    #: (shard planning, seeding, and results never depend on them); the
    #: distrib worker/coordinator/run trio owns heartbeat pacing, lease
    #: deadlines, and status snapshots under the identical argument.  The
    #: RNG and environment checks still apply there.
    CLOCK_EXEMPT_FILES = ("campaign/runner.py", "distrib/worker.py",
                          "distrib/coordinator.py", "distrib/run.py")

    #: Wall-clock reads by module attribute.
    CLOCK_ATTRS = {
        "time": {"time", "time_ns", "monotonic", "monotonic_ns",
                 "perf_counter", "perf_counter_ns", "process_time",
                 "process_time_ns"},
        "datetime": {"now", "utcnow", "today"},
    }
    #: ``np.random.*`` members that are explicitly seeded constructions.
    SEEDED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence",
                        "PCG64", "Philox", "BitGenerator"}

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        if module.package not in self.SCOPE_PACKAGES:
            return
        clocks_exempt = module.relpath in self.CLOCK_EXEMPT_FILES
        tree = module.tree
        random_aliases = _import_aliases(tree, "random")
        time_aliases = _import_aliases(tree, "time")
        datetime_aliases = _import_aliases(tree, "datetime")
        os_aliases = _import_aliases(tree, "os")
        numpy_aliases = _import_aliases(tree, "numpy")
        # ``from datetime import datetime [as dt]`` binds the *class*
        # locally — resolve those bindings so ``dt.now()`` is caught too.
        datetime_cls_aliases = _from_import_aliases(
            tree, "datetime", ("datetime", "date"))

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node,
                                                   clocks_exempt)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(
                    module, node, random_aliases, time_aliases,
                    datetime_aliases, os_aliases, numpy_aliases,
                    datetime_cls_aliases, clocks_exempt)

    def _check_import_from(self, module: ModuleInfo, node: ast.ImportFrom,
                           clocks_exempt: bool) -> Iterator[Violation]:
        if node.level or node.module is None:
            return
        top = node.module.split(".")[0]
        names = {alias.name for alias in node.names}
        if top == "random":
            yield self._violation(
                module, node,
                "stdlib random is a global-state RNG — use a seeded "
                "numpy Generator")
        elif node.module == "time" and names & self.CLOCK_ATTRS["time"] \
                and not clocks_exempt:
            yield self._violation(
                module, node, "wall-clock import from time")
        elif top == "os":
            if names & {"environ", "getenv"}:
                yield self._violation(
                    module, node,
                    "environment read — route toggles through "
                    "util/toggles.py")

    def _check_attribute(self, module: ModuleInfo, node: ast.Attribute,
                         random_aliases: Set[str], time_aliases: Set[str],
                         datetime_aliases: Set[str], os_aliases: Set[str],
                         numpy_aliases: Set[str],
                         datetime_cls_aliases: Set[str],
                         clocks_exempt: bool) -> Iterator[Violation]:
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in datetime_cls_aliases and \
                    node.attr in self.CLOCK_ATTRS["datetime"]:
                if not clocks_exempt:
                    yield self._violation(
                        module, node,
                        f"wall-clock read {base.id}.{node.attr} "
                        "(datetime class imported via from-import)")
            elif base.id in random_aliases:
                yield self._violation(
                    module, node,
                    f"random.{node.attr}: global-state RNG — use a "
                    "seeded numpy Generator")
            elif base.id in time_aliases and \
                    node.attr in self.CLOCK_ATTRS["time"]:
                if not clocks_exempt:
                    yield self._violation(
                        module, node, f"wall-clock read time.{node.attr}")
            elif base.id in os_aliases and node.attr in ("environ", "getenv"):
                yield self._violation(
                    module, node,
                    f"os.{node.attr}: environment read — route toggles "
                    "through util/toggles.py")
        elif isinstance(base, ast.Attribute):
            # np.random.<fn> — legacy global RNG unless explicitly seeded.
            if isinstance(base.value, ast.Name) and \
                    base.value.id in numpy_aliases and \
                    base.attr == "random" and \
                    node.attr not in self.SEEDED_NP_RANDOM:
                yield self._violation(
                    module, node,
                    f"numpy.random.{node.attr}: legacy global RNG — use "
                    "numpy.random.default_rng(seed)")
            # datetime.datetime.now() / datetime.date.today()
            elif isinstance(base.value, ast.Name) and \
                    base.value.id in datetime_aliases and \
                    base.attr in ("datetime", "date") and \
                    node.attr in self.CLOCK_ATTRS["datetime"] and \
                    not clocks_exempt:
                yield self._violation(
                    module, node,
                    f"wall-clock read datetime.{base.attr}.{node.attr}")


# ---------------------------------------------------------------------------
# R003 — layering


#: The import DAG, bottom up.  A module may only import packages at its
#: own layer or below; ties (overheads/partition, sync/fault) are sibling
#: packages that must stay mutually independent — the cycle check catches
#: them if they ever entangle.  Top-level modules (``cli.py``,
#: ``__main__.py``, ``__init__.py``) are the application shell and may
#: import anything.
LAYERS: Dict[str, int] = {
    "util": 0,
    "staticcheck": 0,
    "core": 1,
    "netfair": 1,
    "workload": 2,
    "overheads": 3,
    "partition": 3,
    "sim": 4,
    "sync": 5,
    "fault": 5,
    "analysis": 6,
    "campaign": 7,
    "service": 8,
    "traces": 8,
    "distrib": 9,
}


class LayeringRule(Rule):
    """Enforce the package import DAG ``core → overheads/partition → sim
    → analysis → campaign → service`` (with util below everything).
    ``campaign`` sits above ``analysis`` (it drives analysis work over a
    process pool) and below ``service`` (the server dispatches batch
    analysis onto the engine); a ``campaign → service`` import would be
    the cycle this ordering exists to forbid.

    Upward imports are how "the campaign knows about the engine" quietly
    becomes "the engine knows about the campaign"; the pre-refactor tree
    had exactly that cycle (``core`` subclassing ``sim.quantum``).  The
    rule also rejects packages missing from the layer map, so adding a
    package forces a layering decision.
    """

    rule_id = "R003"
    name = "layering"
    description = ("package imports must follow the DAG util → core → "
                   "workload → overheads/partition → sim → sync/fault → "
                   "analysis → campaign → service/traces → distrib; "
                   "no cycles")

    def _imports_of(self, module: ModuleInfo) -> Iterator[Tuple[str, ast.AST]]:
        """Top-level repro packages imported by ``module`` (resolving
        relative imports against the module's own location)."""
        pkg_parts = list(module.module_parts[:-1]) \
            if not module.relpath.endswith("__init__.py") \
            else list(module.module_parts)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro" or \
                            alias.name.startswith("repro."):
                        parts = alias.name.split(".")[1:]
                        yield (parts[0] if parts else ""), node
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    if node.module and (node.module == "repro"
                                        or node.module.startswith("repro.")):
                        parts = node.module.split(".")[1:]
                        if parts:
                            yield parts[0], node
                        else:
                            for alias in node.names:
                                yield alias.name, node
                    continue
                # Relative import: level 1 = this package, each extra
                # level climbs one parent.
                base = pkg_parts[:len(pkg_parts) - (node.level - 1)] \
                    if node.level <= len(pkg_parts) + 1 else None
                if base is None:
                    continue
                if node.module:
                    target = base + node.module.split(".")
                elif base:
                    target = base
                else:
                    # `from . import X` at the root package.
                    for alias in node.names:
                        yield alias.name, node
                    continue
                if target:
                    yield target[0], node

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        importer = module.package
        if importer == "":
            return  # application shell: unconstrained
        if importer not in LAYERS:
            yield Violation(
                path=module.relpath, line=1, col=0, rule_id=self.rule_id,
                message=f"package '{importer}' is not in the R003 layer "
                        "map — place it in the DAG")
            return
        my_layer = LAYERS[importer]
        for target, node in self._imports_of(module):
            if target == importer or target == "":
                continue
            target_layer = LAYERS.get(target)
            if target_layer is None:
                # Submodule of repro that is a plain module (cli, ...) or
                # unknown package: only flag directories we track.
                continue
            if target_layer > my_layer:
                yield self._violation(
                    module, node,
                    f"upward import: {importer} (layer {my_layer}) must "
                    f"not import {target} (layer {target_layer})")

    def finalize(self, modules: Sequence[ModuleInfo]) -> Iterator[Violation]:
        # Package-level cycle detection (catches equal-layer entanglement
        # that the per-module layer check cannot).
        edges: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for module in modules:
            importer = module.package
            if importer == "":
                continue
            for target, node in self._imports_of(module):
                if target != importer and target in LAYERS and \
                        importer in LAYERS:
                    edges.setdefault(importer, {}).setdefault(
                        target,
                        (module.relpath, getattr(node, "lineno", 1)))
        for cycle in self._find_cycles(edges):
            head, nxt = cycle[0], cycle[1]
            relpath, lineno = edges[head][nxt]
            yield Violation(
                path=relpath, line=lineno, col=0, rule_id=self.rule_id,
                message="package cycle: " + " -> ".join(cycle + [cycle[0]]))

    @staticmethod
    def _find_cycles(edges: Dict[str, Dict[str, Tuple[str, int]]]
                     ) -> List[List[str]]:
        cycles: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        visiting: List[str] = []
        done: Set[str] = set()

        def visit(pkg: str) -> None:
            if pkg in done:
                return
            if pkg in visiting:
                cycle = visiting[visiting.index(pkg):]
                canon = tuple(sorted(cycle))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(cycle))
                return
            visiting.append(pkg)
            for target in edges.get(pkg, ()):
                visit(target)
            visiting.pop()
            done.add(pkg)

        for pkg in sorted(edges):
            visit(pkg)
        return cycles


# ---------------------------------------------------------------------------
# R004 — packed-key width safety


class _ConstEvaluator:
    """Evaluate the constant integer expressions a module defines at top
    level (``GD_BITS = 40``, ``_GD_MASK = (1 << GD_BITS) - 1``, …)."""

    def __init__(self, tree: ast.Module) -> None:
        self.env: Dict[str, int] = {}
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                value = self._eval(node.value)
                if value is not None:
                    self.env[node.targets[0].id] = value

    def _eval(self, node: ast.AST) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._eval(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.BinOp):
            left, right = self._eval(node.left), self._eval(node.right)
            if left is None or right is None:
                return None
            op = node.op
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.FloorDiv):
                return left // right if right else None
            if isinstance(op, ast.LShift):
                return left << right
            if isinstance(op, ast.RShift):
                return left >> right
            if isinstance(op, ast.BitOr):
                return left | right
            if isinstance(op, ast.BitAnd):
                return left & right
            if isinstance(op, ast.Pow):
                return left ** right
        return None


def _keyword_default(tree: ast.Module, func: str, arg: str,
                     *, method_of: Optional[str] = None
                     ) -> Optional[Tuple[int, int]]:
    """``(value, lineno)`` of an int default for ``arg`` of ``func``."""
    scope: Iterable[ast.stmt] = tree.body
    if method_of is not None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == method_of:
                scope = node.body
                break
        else:
            return None
    for node in scope:
        if isinstance(node, ast.FunctionDef) and node.name == func:
            args = node.args
            for arg_list, defaults in (
                    (args.posonlyargs + args.args, args.defaults),
                    (args.kwonlyargs, args.kw_defaults)):
                named = arg_list[len(arg_list) - len(defaults):] \
                    if defaults is args.defaults else arg_list
                for a, d in zip(named, defaults):
                    if a.arg == arg and isinstance(d, ast.Constant) and \
                            isinstance(d.value, int):
                        return d.value, d.lineno
    return None


class KeyWidthRule(Rule):
    """The packed-key bit fields must hold what the generator emits.

    ``core/keytab.py`` packs the PD² tie-break chain into fixed-width
    fields; ``workload/generator.py`` decides the largest period the
    campaigns can produce.  Those two files evolve independently — this
    rule re-derives the field capacities from the keytab AST and checks
    them against the generator's default bounds, so widening the workload
    without widening the key fields fails at lint time instead of
    corrupting a priority order at simulation time.
    """

    rule_id = "R004"
    name = "key-width-safety"
    description = ("core/keytab.py bit-field capacities must cover the "
                   "max period the workload generator emits "
                   "(delegates to R010's dataflow proof when available)")

    KEYTAB = "core/keytab.py"
    GENERATOR = "workload/generator.py"
    DISTRIBUTIONS = "workload/distributions.py"

    def __init__(self) -> None:
        #: When the R010 dataflow proof runs in the same pass, this
        #: keyword-default string-match is strictly weaker — R004 stands
        #: down and stays the cheap fallback under ``--no-project``.
        self._delegated = False

    def configure(self, *, active_ids: Set[str],
                  project_enabled: bool) -> None:
        self._delegated = project_enabled and "R010" in active_ids

    def finalize(self, modules: Sequence[ModuleInfo]) -> Iterator[Violation]:
        if self._delegated:
            return
        by_path = {m.relpath: m for m in modules}
        keytab = by_path.get(self.KEYTAB)
        generator = by_path.get(self.GENERATOR)
        if keytab is None or generator is None:
            return  # partial tree (single-file runs, fixtures)

        consts = _ConstEvaluator(keytab.tree).env
        missing = [name for name in ("GD_BITS", "ID_BITS", "IDX_BITS")
                   if name not in consts]
        if missing:
            yield Violation(
                path=self.KEYTAB, line=1, col=0, rule_id=self.rule_id,
                message="cannot evaluate bit-field constants "
                        f"{', '.join(missing)} — keep them literal ints")
            return
        # Capacities as pack_key() enforces them: the gd-field stores
        # D - d in [0, 2**GD_BITS - 3] (GD_LIGHT and the top value are
        # reserved), the index field holds subtask counts.
        gd_capacity = (1 << consts["GD_BITS"]) - 3
        idx_capacity = (1 << consts["IDX_BITS"]) - 1

        max_periods: List[Tuple[int, int, str]] = []
        found = _keyword_default(generator.tree, "__init__", "max_period",
                                 method_of="TaskSetGenerator")
        if found is not None:
            max_periods.append((*found, self.GENERATOR))
        distributions = by_path.get(self.DISTRIBUTIONS)
        if distributions is not None:
            found = _keyword_default(distributions.tree,
                                     "log_uniform_periods", "max_period")
            if found is not None:
                max_periods.append((*found, self.DISTRIBUTIONS))
        if not max_periods:
            yield Violation(
                path=self.GENERATOR, line=1, col=0, rule_id=self.rule_id,
                message="cannot find an integer max_period default to "
                        "check the packed-key fields against")
            return

        for period, lineno, relpath in max_periods:
            # D - d is bounded by the period; periods are in ticks and a
            # quantum is >= 1 tick, so the tick bound is the worst case.
            if period > gd_capacity:
                yield Violation(
                    path=relpath, line=lineno, col=0, rule_id=self.rule_id,
                    message=f"max_period={period} exceeds the "
                            f"{consts['GD_BITS']}-bit group-deadline "
                            f"field (capacity {gd_capacity}) in "
                            f"{self.KEYTAB}")
            if period > idx_capacity:
                yield Violation(
                    path=relpath, line=lineno, col=0, rule_id=self.rule_id,
                    message=f"max_period={period} exceeds the "
                            f"{consts['IDX_BITS']}-bit index field "
                            f"(capacity {idx_capacity}) in {self.KEYTAB}")


# ---------------------------------------------------------------------------
# R005 — hygiene


class HygieneRule(Rule):
    """Library-code hygiene: the small set of Python footguns that have
    bitten exact-arithmetic code before.

    * mutable default arguments alias state across calls (a cache that
      outlives the task set it was built for);
    * bare ``except:`` swallows ``KeyboardInterrupt`` and hides engine
      bugs;
    * ``assert`` for control flow disappears under ``python -O`` —
      invariant checks must raise.  Narrowing asserts
      (``assert x is not None``) are idiomatic and stay allowed.
    """

    rule_id = "R005"
    name = "hygiene"
    description = ("no mutable default args, bare except, or "
                   "control-flow assert in library code")

    MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                     "Counter", "deque", "bytearray"}

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self._violation(
                    module, node,
                    "bare except: catches KeyboardInterrupt/SystemExit — "
                    "name the exceptions")
            elif isinstance(node, ast.Assert):
                if not self._is_narrowing(node):
                    yield self._violation(
                        module, node,
                        "control-flow assert vanishes under python -O — "
                        "raise an explicit exception")

    def _check_defaults(self, module: ModuleInfo,
                        node: ast.FunctionDef) -> Iterator[Violation]:
        defaults = list(node.args.defaults) + \
            [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                yield self._violation(
                    module, default,
                    "mutable default argument — use None and rebuild "
                    "inside the function")
            elif isinstance(default, ast.Call) and \
                    isinstance(default.func, ast.Name) and \
                    default.func.id in self.MUTABLE_CALLS:
                yield self._violation(
                    module, default,
                    f"mutable default argument {default.func.id}() — use "
                    "None and rebuild inside the function")

    @staticmethod
    def _is_narrowing(node: ast.Assert) -> bool:
        """``assert <expr> is not None`` — type narrowing, not control
        flow; keeping it is idiomatic for Optional unwrapping."""
        test = node.test
        return (isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.IsNot)
                and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None)


#: The concurrency, dataflow, and provenance rules live in their own
#: modules; the imports sit at the bottom because all subclass Rule
#: (defined above).
from .concurrency import CONCURRENCY_RULES  # noqa: E402
from .dataflow import PackedKeyProofRule, WireConformanceRule  # noqa: E402
from .nptypes import NumpyDtypeRule  # noqa: E402
from .ordering import OrderingSoundnessRule  # noqa: E402
from .provenance import (CanonicalSerializationRule,  # noqa: E402
                         SeedProvenanceRule)

#: The default rule set, in id order.
RULES: Tuple[Rule, ...] = (
    ExactnessRule(),
    DeterminismRule(),
    LayeringRule(),
    KeyWidthRule(),
    HygieneRule(),
) + CONCURRENCY_RULES + (
    PackedKeyProofRule(),
    NumpyDtypeRule(),
    WireConformanceRule(),
    SeedProvenanceRule(),
    OrderingSoundnessRule(),
    CanonicalSerializationRule(),
)
