"""The violation record shared by the engine, the rules, and the CLI."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, anchored to a ``file:line`` position.

    ``path`` is stored relative to the scanned root so that baselines and
    JSON output are stable across checkouts.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def anchor(self) -> str:
        """``path:line:col`` — the clickable location prefix."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Baseline identity: stable under unrelated edits to the file.

        Deliberately excludes the line/column so that shifting code above
        a known violation does not make it "new"; two identical
        violations in one file do collapse to one fingerprint, which is
        fine for a transitional baseline.
        """
        return f"{self.rule_id}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.anchor()}: {self.rule_id} {self.message}"
