"""Seed provenance and canonical serialization: R013 and R015.

The campaign layer's reproducibility story is an arithmetic one: every
stochastic value in the runtime derives from one ``CampaignGrid.seed``
through the pure seed-split in ``campaign/spec.py`` (``seed + 7919*k +
104729*r``).  R013 is the static half of that promise — a taint
analysis over the PR-4 call graph that follows every RNG construction
site's seed expression backwards (through local bindings, arithmetic,
helper returns, and caller-passed parameters) and flags the ones that
provably reach *ambient entropy*: ``time.time``, ``os.urandom``,
``uuid``, ``id()``, ``hash()`` (``PYTHONHASHSEED``-dependent for
strings), or an RNG constructed with no seed at all (which the stdlib
seeds from OS entropy).  Per the project-wide contract the analysis is
unsound toward silence: a seed whose provenance cannot be proven either
way stays quiet — only *witnessed* entropy chains fire, and each
violation carries the full origin → binding → sink chain, anchored at
the entropy origin so a pragma documents the soundness argument where
the entropy enters.

R015 closes the other end: bytes that are *persisted or hashed* must be
canonical.  ``json.dumps`` without ``sort_keys=True`` serializes in
dict insertion order — byte-stable only until someone reorders an
assignment — and without pinned ``separators``/``indent`` the spacing
is whatever the stdlib defaults to this decade.  The rule proves every
dumps/dump call whose result reaches a persistence or hashing sink
(``atomic_write_text``, ``.write_text``, ``.write``, ``.encode`` for
wire frames or digests, ``hashlib``) pins both.  Returned or logged
JSON is not a sink; neither is a call forwarding ``**kwargs`` the rule
cannot see through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterator, List, Optional, Set,
                    Tuple)

from .callgraph import FunctionInfo, ProjectIndex, _iter_own_statements
from .engine import ModuleInfo
from .passes import project_pass, register_pass
from .rules import Rule, _import_aliases
from .violations import Violation

__all__ = ["SeedTaintAnalysis", "SeedProvenanceRule",
           "CanonicalSerializationRule", "AmbientTaint"]


# ---------------------------------------------------------------------------
# R013 — seed provenance


#: RNG construction / reseeding entry points whose seed argument must
#: derive from campaign-seed arithmetic.
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "random.seed",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox", "numpy.random.MT19937", "numpy.random.seed",
})

#: RNGs that are ambient by construction, whatever the arguments.
_ALWAYS_AMBIENT = {
    "random.SystemRandom": "random.SystemRandom draws from OS entropy",
}

#: Ambient-entropy sources: a seed that provably flows from one of
#: these is not derivable from the campaign seed.
_ENTROPY_CALLS: Dict[str, str] = {
    "time.time": "wall clock", "time.time_ns": "wall clock",
    "time.monotonic": "monotonic clock",
    "time.monotonic_ns": "monotonic clock",
    "time.perf_counter": "performance counter",
    "time.perf_counter_ns": "performance counter",
    "os.urandom": "OS entropy", "os.getpid": "process id",
    "os.getppid": "process id",
    "uuid.uuid1": "MAC/clock uuid", "uuid.uuid4": "random uuid",
    "secrets.token_bytes": "OS entropy", "secrets.token_hex": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "builtins.id": "CPython object address",
    "builtins.hash": "PYTHONHASHSEED-dependent hash",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
}

#: Pure conversions a seed expression may pass through unchanged.
_PASSTHROUGH_CALLS = frozenset({
    "builtins.int", "builtins.abs", "builtins.round", "builtins.float",
    "builtins.min", "builtins.max", "builtins.sum", "builtins.divmod",
    "int", "abs", "round", "float", "min", "max", "sum", "divmod",
})

_MAX_DEPTH = 8


@dataclass(frozen=True)
class AmbientTaint:
    """A witnessed entropy chain: where the entropy entered, plus the
    steps it took to get wherever the taint query started."""

    origin_path: str
    origin_line: int
    chain: Tuple[str, ...]

    def step(self, text: str) -> "AmbientTaint":
        return AmbientTaint(self.origin_path, self.origin_line,
                            self.chain + (text,))


@dataclass(frozen=True)
class SeedFinding:
    path: str           # anchor: the entropy origin's module
    line: int           # anchor: the entropy origin's line
    sink_package: str   # package of the RNG construction, for scoping
    message: str


class SeedTaintAnalysis:
    """The ``"seeds"`` pass: every proven ambient-entropy → RNG-seed
    chain in the project, computed once and filtered by the rule."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self._callers: Dict[str, List[Tuple[FunctionInfo, ast.Call]]] = {}
        for fn in project.all_functions():
            for callee, call in project.project_callees(fn):
                self._callers.setdefault(callee.qname, []).append((fn, call))
        self.findings: List[SeedFinding] = []
        self._analyse()

    # -- resolution helpers ---------------------------------------------------

    def _callee_name(self, fn: FunctionInfo,
                     call: ast.Call) -> Optional[str]:
        sym = self.project.resolve_value(fn, call.func)
        if sym.kind == "external":
            return sym.ref  # type: ignore[return-value]
        return None

    def _project_callee(self, fn: FunctionInfo,
                        call: ast.Call) -> Optional[FunctionInfo]:
        sym = self.project.resolve_value(fn, call.func)
        return sym.ref if sym.kind == "func" else None  # type: ignore[return-value]

    @staticmethod
    def _at(fn: FunctionInfo, node: ast.AST) -> str:
        return f"{fn.module.relpath}:{getattr(node, 'lineno', '?')}"

    # -- the taint lattice query ----------------------------------------------

    def _expr_taint(self, fn: FunctionInfo, expr: ast.expr, depth: int,
                    stack: FrozenSet[object]) -> Optional[AmbientTaint]:
        """Is ``expr`` (inside ``fn``) provably derived from ambient
        entropy?  ``None`` = not proven (seeded or unknown): silence."""
        if depth > _MAX_DEPTH:
            return None
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Name):
            return self._name_taint(fn, expr.id, depth, stack)
        if isinstance(expr, ast.BinOp):
            return (self._expr_taint(fn, expr.left, depth + 1, stack) or
                    self._expr_taint(fn, expr.right, depth + 1, stack))
        if isinstance(expr, ast.UnaryOp):
            return self._expr_taint(fn, expr.operand, depth + 1, stack)
        if isinstance(expr, ast.IfExp):
            return (self._expr_taint(fn, expr.body, depth + 1, stack) or
                    self._expr_taint(fn, expr.orelse, depth + 1, stack))
        if isinstance(expr, ast.Call):
            return self._call_taint(fn, expr, depth, stack)
        if isinstance(expr, ast.Attribute):
            # e.g. ``uuid.uuid4().int`` — taint of the receiver.
            return self._expr_taint(fn, expr.value, depth + 1, stack)
        return None

    def _call_taint(self, fn: FunctionInfo, call: ast.Call, depth: int,
                    stack: FrozenSet[object]) -> Optional[AmbientTaint]:
        name = self._callee_name(fn, call)
        if name in _ENTROPY_CALLS:
            return AmbientTaint(
                fn.module.relpath, call.lineno,
                (f"{name}() ({_ENTROPY_CALLS[name]}) at "
                 f"{self._at(fn, call)}",))
        if name in _PASSTHROUGH_CALLS:
            for arg in call.args:
                taint = self._expr_taint(fn, arg, depth + 1, stack)
                if taint is not None:
                    return taint
            return None
        callee = self._project_callee(fn, call)
        if callee is not None and not isinstance(callee.node, ast.Module):
            return self._return_taint(fn, call, callee, depth, stack)
        return None

    def _return_taint(self, caller: FunctionInfo, call: ast.Call,
                      callee: FunctionInfo, depth: int,
                      stack: FrozenSet[object]) -> Optional[AmbientTaint]:
        """Taint of ``callee``'s return value for *this* call: params
        are bound to the call's arguments, evaluated in the caller."""
        if callee.qname in stack:
            return None
        stack = stack | {callee.qname}
        bindings = self._bind_args(callee, call)
        for node in _iter_own_statements(callee.node):
            if not (isinstance(node, ast.Return) and node.value is not None):
                continue
            taint = self._expr_taint_bound(callee, node.value, depth + 1,
                                           stack, caller, bindings)
            if taint is not None:
                return taint.step(
                    f"returned by {callee.name}() called at "
                    f"{self._at(caller, call)}")
        return None

    def _expr_taint_bound(self, fn: FunctionInfo, expr: ast.expr,
                          depth: int, stack: FrozenSet[object],
                          caller: FunctionInfo,
                          bindings: Dict[str, ast.expr]
                          ) -> Optional[AmbientTaint]:
        """Like :meth:`_expr_taint`, but bare parameter names of ``fn``
        resolve through ``bindings`` into the calling context (return-
        flow evaluation)."""
        if isinstance(expr, ast.Name) and expr.id in bindings:
            return self._expr_taint(caller, bindings[expr.id], depth + 1,
                                    stack)
        if isinstance(expr, ast.BinOp):
            return (self._expr_taint_bound(fn, expr.left, depth + 1, stack,
                                           caller, bindings) or
                    self._expr_taint_bound(fn, expr.right, depth + 1, stack,
                                           caller, bindings))
        if isinstance(expr, ast.UnaryOp):
            return self._expr_taint_bound(fn, expr.operand, depth + 1,
                                          stack, caller, bindings)
        return self._expr_taint(fn, expr, depth, stack)

    @staticmethod
    def _params_of(fn: FunctionInfo) -> List[str]:
        node = fn.node
        if isinstance(node, ast.Module):
            return []
        names = [a.arg for a in node.args.posonlyargs + node.args.args]
        if fn.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def _bind_args(self, callee: FunctionInfo,
                   call: ast.Call) -> Dict[str, ast.expr]:
        params = self._params_of(callee)
        bindings: Dict[str, ast.expr] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                bindings[params[i]] = arg
        for kw in call.keywords:
            if kw.arg is not None:
                bindings[kw.arg] = kw.value
        return bindings

    def _name_taint(self, fn: FunctionInfo, name: str, depth: int,
                    stack: FrozenSet[object]) -> Optional[AmbientTaint]:
        key = (fn.qname, name)
        if key in stack:
            return None
        stack = stack | {key}
        # Local (re)bindings first: any assignment of the name whose
        # value is tainted taints the name (existential — one bad
        # binding is one real leak).
        for node in _iter_own_statements(fn.node):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and \
                    isinstance(node.target, ast.Name):
                target, value = node.target.id, node.value
            if target != name or value is None:
                continue
            taint = self._expr_taint(fn, value, depth + 1, stack)
            if taint is not None:
                return taint.step(
                    f"bound to {name!r} at {self._at(fn, node)}")
        # Then parameters: join over every project caller's argument.
        if name in self._params_of(fn):
            for caller, call in self._callers.get(fn.qname, ()):
                bindings = self._bind_args(fn, call)
                if name not in bindings:
                    continue
                taint = self._expr_taint(caller, bindings[name], depth + 1,
                                         stack)
                if taint is not None:
                    return taint.step(
                        f"passed as parameter {name!r} of {fn.name}() at "
                        f"{self._at(caller, call)}")
        return None

    # -- the sweep ------------------------------------------------------------

    def _analyse(self) -> None:
        for fn in self.project.all_functions():
            for node in _iter_own_statements(fn.node):
                if isinstance(node, ast.Call):
                    self._check_rng_site(fn, node)

    def _check_rng_site(self, fn: FunctionInfo, call: ast.Call) -> None:
        name = self._callee_name(fn, call)
        if name in _ALWAYS_AMBIENT:
            self.findings.append(SeedFinding(
                path=fn.module.relpath, line=call.lineno,
                sink_package=fn.module.package,
                message=(f"ambient entropy seeds an RNG: {name}() at "
                         f"{self._at(fn, call)} -> "
                         f"{_ALWAYS_AMBIENT[name]} -> stochastic values "
                         "in this run are not derivable from the "
                         "campaign seed")))
            return
        if name not in _RNG_CONSTRUCTORS:
            return
        if not call.args and not call.keywords:
            self.findings.append(SeedFinding(
                path=fn.module.relpath, line=call.lineno,
                sink_package=fn.module.package,
                message=(f"ambient entropy seeds an RNG: {name}() at "
                         f"{self._at(fn, call)} constructed with no seed "
                         "-> the stdlib seeds it from OS entropy/time -> "
                         "stochastic values in this run are not "
                         "derivable from the campaign seed")))
            return
        seed_args = list(call.args) + \
            [kw.value for kw in call.keywords if kw.arg is not None]
        for arg in seed_args:
            taint = self._expr_taint(fn, arg, 0, frozenset())
            if taint is None:
                continue
            chain = " -> ".join(
                taint.chain + (f"seeds {name}() at {self._at(fn, call)}",))
            self.findings.append(SeedFinding(
                path=taint.origin_path, line=taint.origin_line,
                sink_package=fn.module.package,
                message=f"ambient entropy seeds an RNG: {chain}"))
            return


register_pass("seeds", SeedTaintAnalysis)


class SeedProvenanceRule(Rule):
    """R013: every RNG seed derives from the campaign seed split.

    Violations anchor at the entropy *origin* (the ``time.time()`` /
    ``os.urandom`` / no-arg construction site), so a pragma there
    documents why that entropy is acceptable — at the only place the
    soundness argument can be made.
    """

    rule_id = "R013"
    name = "seed-provenance"
    description = ("RNGs in core/, sim/, campaign/, workload/ must be "
                   "seeded from campaign-seed arithmetic; no-arg "
                   "constructions and time/urandom/uuid/id/hash-derived "
                   "seeds are flagged with origin->sink witness chains")
    uses_project = True
    needs = ("seeds",)

    #: Where the reproducibility contract applies.  ``sync/`` and
    #: ``analysis/`` own their seeds (demo scripts, post-hoc sampling).
    #: ``traces/`` is in: the trace-replay worker's subsampling RNG must
    #: come from the planner's shard-seed arithmetic, like any shard.
    SCOPE_PACKAGES = ("core", "sim", "campaign", "workload", "traces")

    def check_project(self, project: "ProjectIndex") -> Iterator[Violation]:
        analysis: SeedTaintAnalysis = project_pass(  # type: ignore[assignment]
            project, "seeds")
        for finding in analysis.findings:
            if finding.sink_package not in self.SCOPE_PACKAGES:
                continue
            yield Violation(path=finding.path, line=finding.line, col=0,
                            rule_id=self.rule_id, message=finding.message)


# ---------------------------------------------------------------------------
# R015 — canonical serialization


#: Call names (bare) that persist a string argument.
_PERSIST_FUNCS = {"atomic_write_text"}

#: Method attributes that persist / transmit / digest their argument.
_PERSIST_METHODS = {"write_text", "write", "writelines", "update",
                    "sendall", "send", "put", "put_nowait"}

#: Wrappers a dumps() result may pass through on its way to a sink.
_TRANSPARENT_PARENTS = (ast.BinOp, ast.IfExp, ast.FormattedValue,
                        ast.JoinedStr, ast.Starred)


class CanonicalSerializationRule(Rule):
    """R015: persisted or hashed JSON is canonical.

    A module rule on purpose: proving a dumps call canonical needs only
    the call's own keywords and the sink its result flows into within
    the enclosing scope — no call graph, no interval interpreter, so
    ``--select R015`` stays cheap (the pass-isolation test pins that).
    """

    rule_id = "R015"
    name = "canonical-serialization"
    description = ("json.dumps/dump whose bytes are persisted, hashed, "
                   "or framed on the wire must pass sort_keys=True and "
                   "pin separators= or indent=")

    SCOPE_PACKAGES = ("core", "sim", "campaign", "workload", "distrib",
                      "service", "analysis", "traces")

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        if module.package not in self.SCOPE_PACKAGES:
            return
        json_names = _import_aliases(module.tree, "json")
        # Local alias -> original for ``from json import dumps [as d]``.
        dumps_aliases: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and not node.level \
                    and node.module == "json":
                for alias in node.names:
                    if alias.name in ("dumps", "dump"):
                        dumps_aliases[alias.asname or alias.name] = \
                            alias.name
        if not json_names and not dumps_aliases:
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._dumps_kind(node, json_names, dumps_aliases)
            if kind is None:
                continue
            problem = self._non_canonical(node)
            if problem is None:
                continue
            sink = self._sink_of(node, kind, parents)
            if sink is None:
                continue
            yield self._violation(module, node, (
                f"non-canonical json.{kind} at {module.relpath}:"
                f"{node.lineno} ({problem}) -> {sink} -> bytes depend on "
                "dict insertion order / default spacing; pass "
                "sort_keys=True and pin separators= or indent="))

    @staticmethod
    def _dumps_kind(call: ast.Call, json_names: Set[str],
                    dumps_aliases: Dict[str, str]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in json_names and \
                func.attr in ("dumps", "dump"):
            return func.attr
        if isinstance(func, ast.Name) and func.id in dumps_aliases:
            return dumps_aliases[func.id]
        return None

    @staticmethod
    def _non_canonical(call: ast.Call) -> Optional[str]:
        """What's missing — or ``None`` if canonical (or unprovable:
        ``**kwargs`` forwarding stays silent)."""
        kwargs = {kw.arg: kw.value for kw in call.keywords}
        if None in kwargs:
            return None  # **kwargs — can't prove either way
        missing = []
        sort_keys = kwargs.get("sort_keys")
        if not (isinstance(sort_keys, ast.Constant) and
                sort_keys.value is True):
            missing.append("sort_keys=True")
        if "separators" not in kwargs and "indent" not in kwargs:
            missing.append("pinned separators/indent")
        if not missing:
            return None
        return "missing " + " and ".join(missing)

    def _sink_of(self, call: ast.Call, kind: str,
                 parents: Dict[ast.AST, ast.AST]) -> Optional[str]:
        """A one-line description of the persistence/hash sink this
        call's bytes reach, or ``None`` (returned/logged JSON is free to
        be non-canonical)."""
        if kind == "dump":
            return f"written to a stream at line {call.lineno}"
        node: ast.AST = call
        parent = parents.get(node)
        while isinstance(parent, _TRANSPARENT_PARENTS):
            node, parent = parent, parents.get(parent)
        sink = self._direct_sink(node, parent)
        if sink is not None:
            return sink
        # One level of name indirection: text = dumps(...); sink(text).
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1 and \
                isinstance(parent.targets[0], ast.Name):
            name = parent.targets[0].id
            scope = self._enclosing_scope(parent, parents)
            for other in ast.walk(scope):
                if isinstance(other, ast.Name) and other.id == name and \
                        other is not parent.targets[0]:
                    inner: ast.AST = other
                    outer = parents.get(inner)
                    while isinstance(outer, _TRANSPARENT_PARENTS):
                        inner, outer = outer, parents.get(outer)
                    sink = self._direct_sink(inner, outer)
                    if sink is not None:
                        return sink
        return None

    @staticmethod
    def _direct_sink(node: ast.AST,
                     parent: Optional[ast.AST]) -> Optional[str]:
        if isinstance(parent, ast.Attribute) and parent.attr == "encode":
            return (f"encoded to wire/digest bytes at line "
                    f"{parent.lineno}")
        if isinstance(parent, ast.Call) and \
                any(arg is node for arg in parent.args):
            func = parent.func
            if isinstance(func, ast.Name) and func.id in _PERSIST_FUNCS:
                return f"persisted via {func.id}() at line {parent.lineno}"
            if isinstance(func, ast.Attribute):
                if func.attr in _PERSIST_METHODS:
                    return (f"persisted via .{func.attr}() at line "
                            f"{parent.lineno}")
                if isinstance(func.value, ast.Name) and \
                        func.value.id == "hashlib":
                    return f"hashed at line {parent.lineno}"
        return None

    @staticmethod
    def _enclosing_scope(node: ast.AST,
                         parents: Dict[ast.AST, ast.AST]) -> ast.AST:
        scope: Optional[ast.AST] = node
        while scope is not None and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            scope = parents.get(scope)
        return scope if scope is not None else node
