"""Named, lazily-built project analysis passes shared between rules.

The project rules are layered on expensive whole-tree analyses — the
call graph itself, thread-domain inference, seed-taint fixpoints,
iteration-order classification.  Before this registry each rule family
owned its own memoisation idiom (``DomainAnalysis.of`` stashes itself on
the :class:`~repro.staticcheck.callgraph.ProjectIndex`); with it, every
pass has a *name*, every rule **declares** the passes it needs
(:attr:`~repro.staticcheck.rules.Rule.needs`), and a pass is constructed
the first time a selected rule asks for it — never because some other
rule in the catalog would have wanted it.  ``--select R013`` therefore
builds the seed-taint pass and nothing else: not the interval
interpreter, not the dtype lattice (``tests/test_staticcheck_provenance.
py`` pins this with a constructor tripwire).

A pass factory takes the :class:`~repro.staticcheck.callgraph.
ProjectIndex` and returns an analysis object; results are memoised per
project instance, so all rules in one check run share one copy.
"""

from __future__ import annotations

from typing import Callable, Dict, List

__all__ = ["register_pass", "project_pass", "built_passes"]

#: Pass name -> factory.  Populated at import time by the modules that
#: own each analysis (domains, ordering, provenance).
_FACTORIES: Dict[str, Callable[[object], object]] = {}


def register_pass(name: str, factory: Callable[[object], object]) -> None:
    """Register ``factory`` as the builder for the named pass."""
    _FACTORIES[name] = factory


def project_pass(project: object, name: str) -> object:
    """The (memoised) named analysis pass for ``project``.

    Raises ``KeyError`` for an unregistered pass name — a rule asking
    for a pass its module never registered is a programming error, not
    something to silently skip.
    """
    cache: Dict[str, object] = getattr(project, "_passes", None)  # type: ignore[assignment]
    if cache is None:
        cache = {}
        project._passes = cache  # type: ignore[attr-defined]
    if name not in cache:
        if name not in _FACTORIES:
            raise KeyError(f"no registered project pass named {name!r}")
        cache[name] = _FACTORIES[name](project)
    return cache[name]


def built_passes(project: object) -> List[str]:
    """The names of every pass actually constructed for ``project`` so
    far (sorted) — what the dependency-isolation tests assert on."""
    return sorted(getattr(project, "_passes", {}))
