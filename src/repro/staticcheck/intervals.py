"""Integer interval lattice for the dataflow rules (R010).

The packed-key proofs in :mod:`repro.staticcheck.dataflow` need one
abstract domain: *which integers can this expression take?*  An
:class:`Interval` is a pair of optional bounds (``None`` = unbounded on
that side) with the arithmetic and bitwise transfer functions the
key-packing code actually uses — shifts, ors, masks, ``bit_length`` —
plus lattice operations (:meth:`join`, :meth:`meet`, :meth:`widen`) and
guard refinement (:func:`refine_by_compare`) so ``if not 0 <= x <= C:
raise`` narrows ``x`` on the fall-through path.

Design rules, shared with the rest of the checker:

* **stdlib only** — intervals are plain Python ints, never numpy
  scalars, so ``python -m repro.staticcheck`` stays importable before
  ``pip install``;
* **unsound toward silence** — every transfer function may widen to
  :data:`TOP` but must never narrow incorrectly; a rule that cannot
  *prove* a bound reports "cannot prove", it never guesses one.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

__all__ = [
    "Interval",
    "TOP",
    "BOTTOM",
    "const",
    "bounded",
    "refine_by_compare",
]

#: Transfer functions refuse to materialise integers beyond this many
#: bits (shift amounts from TOP, pow with huge exponents, …) — the
#: analysis answers "how many bits" questions, so modelling numbers far
#: beyond any field width adds nothing and risks pathological memory use.
_MAX_MODEL_BITS = 512


class Interval:
    """A closed integer interval ``[lo, hi]``; ``None`` means unbounded.

    The empty interval (:data:`BOTTOM`) is the unique instance with
    ``lo == 0, hi == -1``; use :meth:`is_empty` rather than comparing
    bounds directly.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int] = None,
                 hi: Optional[int] = None) -> None:
        self.lo = lo
        self.hi = hi

    # -- predicates ---------------------------------------------------

    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None \
            and self.lo > self.hi

    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def is_const(self) -> Optional[int]:
        """The single value when the interval is a point, else ``None``."""
        if self.lo is not None and self.lo == self.hi:
            return self.lo
        return None

    def within(self, lo: int, hi: int) -> bool:
        """Provably ``lo <= x <= hi`` for every x in the interval?"""
        if self.is_empty():
            return True  # vacuously: no value escapes
        return (self.lo is not None and self.hi is not None
                and lo <= self.lo and self.hi <= hi)

    def nonneg(self) -> bool:
        return self.is_empty() or (self.lo is not None and self.lo >= 0)

    # -- lattice ------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        lo = other.lo if self.lo is None else \
            (self.lo if other.lo is None else max(self.lo, other.lo))
        hi = other.hi if self.hi is None else \
            (self.hi if other.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: a bound that moved since the last
        fixpoint iteration jumps straight to unbounded, so loops
        terminate in two passes instead of walking every integer."""
        if self.is_empty():
            return newer
        if newer.is_empty():
            return self
        lo = self.lo if (self.lo is not None and newer.lo is not None
                         and newer.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and newer.hi is not None
                         and newer.hi <= self.hi) else None
        return Interval(lo, hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_empty():
            return "Interval(empty)"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"Interval[{lo}, {hi}]"

    def describe(self) -> str:
        """Human form for witness chains: ``[0, 1099511627772]``."""
        if self.is_empty():
            return "(empty)"
        if self.is_top():
            return "(unbounded)"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    # -- arithmetic transfer functions --------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        lo = None if self.lo is None or other.lo is None \
            else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None \
            else self.hi + other.hi
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        if self.is_empty():
            return BOTTOM
        return Interval(None if self.hi is None else -self.hi,
                        None if self.lo is None else -self.lo)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        if None in (self.lo, self.hi, other.lo, other.hi):
            # Mixed-sign unbounded products need case analysis that the
            # key-packing code never exercises; nonnegative-by-
            # nonnegative is the one shape worth keeping precise.
            if self.nonneg() and other.nonneg():
                lo = 0 if self.lo is None or other.lo is None \
                    else self.lo * other.lo
                return Interval(lo, None)
            return TOP
        products = (self.lo * other.lo, self.lo * other.hi,
                    self.hi * other.lo, self.hi * other.hi)
        return Interval(min(products), max(products))

    def floordiv(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        # Only constant positive divisors stay precise; anything else
        # (zero in range, unbounded divisor) widens.
        d = other.is_const()
        if d is None or d <= 0:
            return TOP
        lo = None if self.lo is None else self.lo // d
        hi = None if self.hi is None else self.hi // d
        return Interval(lo, hi)

    def mod(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        d = other.is_const()
        if d is None or d <= 0:
            return TOP
        if self.nonneg() and self.hi is not None and self.hi < d:
            return self  # the mod is the identity on [0, d)
        return Interval(0, d - 1)

    def lshift(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        if not other.nonneg() or other.hi is None \
                or other.hi > _MAX_MODEL_BITS:
            return TOP
        shift_lo = other.lo if other.lo is not None else 0
        if self.nonneg():
            lo = 0 if self.lo is None else self.lo << shift_lo
            hi = None if self.hi is None else self.hi << other.hi
            return Interval(lo, hi)
        if self.lo is None or self.hi is None:
            return TOP
        candidates = (self.lo << shift_lo, self.lo << other.hi,
                      self.hi << shift_lo, self.hi << other.hi)
        return Interval(min(candidates), max(candidates))

    def rshift(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        if not (self.nonneg() and other.nonneg()) or other.lo is None:
            return TOP
        lo = 0 if self.lo is None else self.lo >> (
            other.hi if other.hi is not None else _MAX_MODEL_BITS)
        hi = None if self.hi is None else self.hi >> other.lo
        return Interval(lo, hi)

    def bitor(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        if not (self.nonneg() and other.nonneg()):
            return TOP
        if self.hi is None or other.hi is None:
            return Interval(0, None)
        # x | y never clears a set bit, and never sets a bit above the
        # wider operand's top bit: max(x,y) <= x|y < 2**max(bits).
        # (nonneg + non-empty already guarantee the lower bounds exist.)
        lo = max(self.lo or 0, other.lo or 0)
        hi = (1 << max(self.hi.bit_length(), other.hi.bit_length())) - 1
        return Interval(lo, max(hi, max(self.hi, other.hi)))

    def bitand(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        if self.nonneg() and self.hi is not None:
            if other.nonneg() and other.hi is not None:
                return Interval(0, min(self.hi, other.hi))
            return Interval(0, self.hi)
        if other.nonneg() and other.hi is not None:
            return Interval(0, other.hi)
        return TOP

    def bitxor(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        if not (self.nonneg() and other.nonneg()) \
                or self.hi is None or other.hi is None:
            return TOP
        hi = (1 << max(self.hi.bit_length(), other.hi.bit_length())) - 1
        return Interval(0, hi)

    def pow(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return BOTTOM
        b, e = self.is_const(), other.is_const()
        if b is None or e is None or e < 0 or b < 0:
            return TOP
        if b.bit_length() * max(e, 1) > _MAX_MODEL_BITS:
            return TOP
        return const(b ** e)

    def bit_length(self) -> "Interval":
        """Transfer function for ``int.bit_length()`` — monotone on
        nonnegative inputs."""
        if self.is_empty():
            return BOTTOM
        if not self.nonneg():
            return Interval(0, None)
        assert self.lo is not None
        lo = self.lo.bit_length()
        hi = None if self.hi is None else self.hi.bit_length()
        return Interval(lo, hi)


#: Every integer.
TOP = Interval(None, None)
#: No integer (unreachable / contradictory guards).
BOTTOM = Interval(0, -1)


def const(value: int) -> Interval:
    """The point interval ``[value, value]``."""
    return Interval(value, value)


def bounded(lo: int, hi: int) -> Interval:
    """The interval ``[lo, hi]`` (both bounds inclusive)."""
    return Interval(lo, hi)


#: ast.BinOp operator -> Interval method name.
_BINOPS = {
    ast.Add: Interval.add,
    ast.Sub: Interval.sub,
    ast.Mult: Interval.mul,
    ast.FloorDiv: Interval.floordiv,
    ast.Mod: Interval.mod,
    ast.LShift: Interval.lshift,
    ast.RShift: Interval.rshift,
    ast.BitOr: Interval.bitor,
    ast.BitAnd: Interval.bitand,
    ast.BitXor: Interval.bitxor,
    ast.Pow: Interval.pow,
}


def apply_binop(op: ast.operator, left: Interval,
                right: Interval) -> Interval:
    """Interval result of ``left <op> right``; TOP for unmodelled ops
    (notably true division, which the exactness rule forbids anyway)."""
    fn = _BINOPS.get(type(op))
    if fn is None:
        return TOP
    return fn(left, right)


# -- guard refinement -------------------------------------------------


def _half_space(op: ast.cmpop, bound: Interval,
                flipped: bool) -> Optional[Interval]:
    """The interval of ``x`` satisfying ``x <op> bound`` (or
    ``bound <op> x`` when ``flipped``); ``None`` when the comparison
    does not constrain ``x`` usefully."""
    if flipped:
        flip: Dict[type, type] = {ast.Lt: ast.Gt, ast.Gt: ast.Lt,
                                  ast.LtE: ast.GtE, ast.GtE: ast.LtE,
                                  ast.Eq: ast.Eq, ast.NotEq: ast.NotEq}
        new = flip.get(type(op))
        if new is None:
            return None
        op = new()
    if isinstance(op, ast.Lt):
        return None if bound.hi is None else Interval(None, bound.hi - 1)
    if isinstance(op, ast.LtE):
        return None if bound.hi is None else Interval(None, bound.hi)
    if isinstance(op, ast.Gt):
        return None if bound.lo is None else Interval(bound.lo + 1, None)
    if isinstance(op, ast.GtE):
        return None if bound.lo is None else Interval(bound.lo, None)
    if isinstance(op, ast.Eq):
        return bound
    return None  # NotEq / is / in: no contiguous refinement


def negate_cmpop(op: ast.cmpop) -> Optional[ast.cmpop]:
    """The complement comparison (``not (x < c)`` is ``x >= c``)."""
    table: Dict[type, ast.cmpop] = {
        ast.Lt: ast.GtE(), ast.LtE: ast.Gt(),
        ast.Gt: ast.LtE(), ast.GtE: ast.Lt(),
        ast.Eq: ast.NotEq(), ast.NotEq: ast.Eq(),
    }
    return table.get(type(op))


def refine_by_compare(test: ast.Compare, env_eval, *,
                      negated: bool = False
                      ) -> Dict[str, Tuple[Interval, int]]:
    """Variable refinements implied by ``test`` holding (or failing,
    when ``negated``).

    Handles chained comparisons (``0 <= x <= C``) by refining each bare
    ``ast.Name`` operand against its neighbours' intervals, which
    ``env_eval(node)`` supplies.  A negated *chain* only refines when the
    chain has a single link (``not (a <= x <= b)`` is a disjunction and
    refines nothing); a negated single comparison flips the operator.
    Returns ``{name: (refined-interval, lineno)}``.
    """
    ops = list(test.ops)
    operands = [test.left] + list(test.comparators)
    if negated:
        if len(ops) != 1:
            return {}
        flipped_op = negate_cmpop(ops[0])
        if flipped_op is None:
            return {}
        ops = [flipped_op]
    out: Dict[str, Tuple[Interval, int]] = {}
    for i, op in enumerate(ops):
        left, right = operands[i], operands[i + 1]
        for node, other, is_rhs in ((left, right, False),
                                    (right, left, True)):
            if not isinstance(node, ast.Name):
                continue
            bound = env_eval(other)
            half = _half_space(op, bound, flipped=is_rhs)
            if half is None:
                continue
            current = env_eval(node)
            refined = current.meet(half)
            prev = out.get(node.id)
            if prev is not None:
                refined = prev[0].meet(refined)
            out[node.id] = (refined, getattr(test, "lineno", 1))
    return out
