"""Intra-procedural dataflow: interval interpretation and the rules it
powers (R010 packed-key overflow proofs, R012 wire conformance).

This module is the *engine* half of the dataflow layer: an abstract
interpreter over :mod:`ast` using the :mod:`~repro.staticcheck.intervals`
domain, plus the two project rules that consume it.  The numpy dtype
half lives in :mod:`~repro.staticcheck.nptypes`.

The interpreter is deliberately intra-procedural — calls evaluate to
:data:`~repro.staticcheck.intervals.TOP` unless they are one of the
handful of pure builtins the key-packing code uses (``max``, ``min``,
``len``, ``abs``, ``int``, ``getattr`` with a default,
``.bit_length()``).  What makes it strong enough to *prove* the packed
key fits is guard refinement: ``if not 0 <= delta <= _MAX_GD_DELTA:
raise`` bounds ``delta`` on the fall-through path, which is exactly how
``core/keytab.py`` establishes its field invariants at runtime.

Everything here is stdlib-only; see the module docstring of
:mod:`~repro.staticcheck.intervals` for the shared soundness contract
("unsound toward silence").
"""

from __future__ import annotations

import ast
import re
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from .engine import ModuleInfo
from .intervals import (TOP, Interval, apply_binop, const,
                        refine_by_compare)
from .rules import Rule
from .violations import Violation

if TYPE_CHECKING:
    from .callgraph import ProjectIndex

__all__ = [
    "IntervalInterpreter",
    "const_env",
    "PackedKeyProofRule",
    "WireConformanceRule",
]

#: name -> (interval, line the binding was established on).
Env = Dict[str, Tuple[Interval, int]]


# ---------------------------------------------------------------------------
# The abstract interpreter


class OrPack:
    """One ``(x << K) | y`` site: the shape every packed-key layer has.

    Collected during evaluation so :class:`PackedKeyProofRule` can ask
    "does the low operand provably fit below bit ``K``?" for every
    or-pack a function performs.
    """

    __slots__ = ("node", "shift_bits", "low", "low_interval", "blame")

    def __init__(self, node: ast.BinOp, shift_bits: int,
                 low: ast.expr, low_interval: Interval,
                 blame: Env) -> None:
        self.node = node
        self.shift_bits = shift_bits
        self.low = low
        self.low_interval = low_interval
        #: Snapshot of the names the low operand mentions, for witness
        #: chains ("task_id ∈ [0, 4194303] (bound at line 121)").
        self.blame = blame


class IntervalInterpreter:
    """Abstract interpreter for one function body over integer intervals.

    ``consts`` seeds module-level constants (read-only), ``seeds`` the
    parameter environment.  ``attr_assumptions`` and ``len_assumptions``
    let a rule inject domain facts the AST cannot carry — e.g. "every
    ``.period`` attribute is in ``[1, max_period]``" when replaying
    ``sim/vector.py``'s ``_key_layout`` under the workload generator's
    defaults.

    Loops are handled soundly without a full fixpoint: every name the
    loop body assigns is widened to TOP before one abstract pass of the
    body, and the result is joined with the pre-loop environment.
    """

    def __init__(self, consts: Optional[Dict[str, Interval]] = None,
                 seeds: Optional[Env] = None,
                 attr_assumptions: Optional[Dict[str, Interval]] = None,
                 len_assumptions: Optional[Dict[str, Interval]] = None
                 ) -> None:
        self.consts = dict(consts or {})
        self.env: Env = dict(seeds or {})
        self.attr_assumptions = dict(attr_assumptions or {})
        self.len_assumptions = dict(len_assumptions or {})
        #: id(BitOr node) -> OrPack, overwritten per evaluation so the
        #: final environment at each site wins.
        self.orpacks: Dict[int, OrPack] = {}
        #: Every ``return`` value seen: an Interval, or a tuple of
        #: Intervals for ``return a, b, c``.
        self.returns: List[object] = []

    # -- expression evaluation ---------------------------------------

    def eval(self, node: ast.expr) -> Interval:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return const(int(node.value))
            if isinstance(node.value, int):
                return const(node.value)
            return TOP
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if bound is not None:
                return bound[0]
            return self.consts.get(node.id, TOP)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            if isinstance(node.op, ast.BitOr) and \
                    isinstance(node.left, ast.BinOp) and \
                    isinstance(node.left.op, ast.LShift):
                shift = self.eval(node.left.right).is_const()
                if shift is not None and shift >= 1:
                    self.orpacks[id(node)] = OrPack(
                        node, shift, node.right, right,
                        self._snapshot_names(node.right))
            return apply_binop(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return self.eval(node.operand).neg()
            if isinstance(node.op, ast.Not):
                return Interval(0, 1)
            if isinstance(node.op, ast.UAdd):
                return self.eval(node.operand)
            return TOP
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self.attr_assumptions.get(node.attr, TOP)
        if isinstance(node, ast.IfExp):
            return self.eval(node.body).join(self.eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            out = self.eval(node.values[0])
            for value in node.values[1:]:
                out = out.join(self.eval(value))
            return out
        if isinstance(node, ast.Compare):
            return Interval(0, 1)
        return TOP

    def _eval_call(self, node: ast.Call) -> Interval:
        func = node.func
        # Method calls: only int.bit_length() is modelled.
        if isinstance(func, ast.Attribute):
            if func.attr == "bit_length" and not node.args:
                return self.eval(func.value).bit_length()
            return TOP
        if not isinstance(func, ast.Name):
            return TOP
        name = func.id
        if name in ("max", "min"):
            if len(node.args) == 1 and isinstance(
                    node.args[0], (ast.GeneratorExp, ast.ListComp)):
                # max(t.period for t in tasks): the result is some
                # element, so the element's interval bounds it.
                return self.eval(node.args[0].elt)
            if len(node.args) >= 2:
                return self._fold_extremum(name, node.args)
            return TOP
        if name == "len" and len(node.args) == 1 and \
                isinstance(node.args[0], ast.Name):
            return self.len_assumptions.get(node.args[0].id,
                                            Interval(0, None))
        if name == "abs" and len(node.args) == 1:
            inner = self.eval(node.args[0])
            if inner.is_empty():
                return inner
            if inner.nonneg():
                return inner
            return inner.join(inner.neg()).meet(Interval(0, None))
        if name == "int" and len(node.args) == 1:
            return self.eval(node.args[0])
        if name == "getattr" and len(node.args) == 3 and \
                isinstance(node.args[1], ast.Constant) and \
                isinstance(node.args[1].value, str):
            assumed = self.attr_assumptions.get(node.args[1].value, TOP)
            return assumed.join(self.eval(node.args[2]))
        return TOP

    def _fold_extremum(self, name: str,
                       args: Sequence[ast.expr]) -> Interval:
        """Elementwise max/min over evaluated argument intervals."""
        ivs = [self.eval(a) for a in args]
        if any(iv.is_empty() for iv in ivs):
            return TOP
        pick = max if name == "max" else min
        los = [iv.lo for iv in ivs]
        his = [iv.hi for iv in ivs]
        if name == "max":
            # lo: max ignores -inf sides; hi: any +inf side wins.
            known_los = [lo for lo in los if lo is not None]
            lo = pick(known_los) if known_los else None
            hi = None if any(h is None for h in his) else pick(his)
        else:
            known_his = [h for h in his if h is not None]
            hi = pick(known_his) if known_his else None
            lo = None if any(lo is None for lo in los) else pick(los)
        return Interval(lo, hi)

    def _snapshot_names(self, node: ast.expr) -> Env:
        out: Env = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id not in out:
                bound = self.env.get(sub.id)
                if bound is not None:
                    out[sub.id] = bound
                elif sub.id in self.consts:
                    out[sub.id] = (self.consts[sub.id], 0)
        return out

    # -- statement execution -----------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> bool:
        """Abstractly execute ``stmts``; True when control falls through
        the end (no unconditional raise/return on every path)."""
        for stmt in stmts:
            if not self._exec_stmt(stmt):
                return False
        return True

    def _exec_stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value, stmt)
            return True
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value)
                self._bind_target(stmt.target, value, stmt)
            return True
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = self.eval(ast.copy_location(
                    ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt))
                updated = apply_binop(stmt.op, current,
                                      self.eval(stmt.value))
                self.env[stmt.target.id] = (updated, stmt.lineno)
            else:
                self.eval(stmt.value)
            return True
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt)
        if isinstance(stmt, ast.Assert):
            if isinstance(stmt.test, ast.Compare):
                self._apply_refinements(
                    refine_by_compare(stmt.test, self.eval))
            return True
        if isinstance(stmt, (ast.Raise, ast.Return)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if isinstance(stmt.value, ast.Tuple):
                    self.returns.append(tuple(
                        self.eval(e) for e in stmt.value.elts))
                else:
                    self.returns.append(self.eval(stmt.value))
            return False
        if isinstance(stmt, (ast.While, ast.For)):
            return self._exec_loop(stmt)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt)
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return True
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass,
                             ast.Global, ast.Nonlocal, ast.Import,
                             ast.ImportFrom)):
            return True
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            return self.exec_block(stmt.body)
        # Nested defs/classes, del, match, …: skip their bodies but
        # kill any name they (re)bind, staying sound.
        for name in _assigned_names(stmt):
            self.env[name] = (TOP, stmt.lineno)
        return True

    def _bind_target(self, target: ast.expr, value: Interval,
                     stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = (value, stmt.lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            values: Sequence[Interval]
            if isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Tuple) and \
                    len(stmt.value.elts) == len(target.elts):
                values = [self.eval(e) for e in stmt.value.elts]
            else:
                values = [TOP] * len(target.elts)
            for sub, sub_value in zip(target.elts, values):
                self._bind_target(sub, sub_value, stmt)
        # Attribute / Subscript targets: no named binding to track.

    def _apply_refinements(
            self, refinements: Dict[str, Tuple[Interval, int]]) -> None:
        for name, (interval, lineno) in refinements.items():
            self.env[name] = (interval, lineno)

    def _branch_refinements(self, test: ast.expr, *, negated: bool
                            ) -> Dict[str, Tuple[Interval, int]]:
        """Refinements implied by ``test`` being true (or false)."""
        if isinstance(test, ast.Compare):
            return refine_by_compare(test, self.eval, negated=negated)
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._branch_refinements(test.operand,
                                            negated=not negated)
        if isinstance(test, ast.Name):
            if negated:  # `if x:` false branch -> x == 0 (for ints)
                current = self.eval(test)
                refined = current.meet(const(0))
                return {test.id: (refined, test.lineno)}
            return {}
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) \
                and not negated:
            out: Dict[str, Tuple[Interval, int]] = {}
            for value in test.values:
                for name, ref in self._branch_refinements(
                        value, negated=False).items():
                    prev = out.get(name)
                    if prev is not None:
                        ref = (prev[0].meet(ref[0]), ref[1])
                    out[name] = ref
            return out
        return {}

    def _exec_if(self, stmt: ast.If) -> bool:
        true_env = dict(self.env)
        false_env = dict(self.env)

        saved = self.env
        self.env = true_env
        self._apply_refinements(
            self._branch_refinements(stmt.test, negated=False))
        true_falls = self.exec_block(stmt.body)

        self.env = false_env
        self._apply_refinements(
            self._branch_refinements(stmt.test, negated=True))
        false_falls = self.exec_block(stmt.orelse) if stmt.orelse else True

        self.env = saved
        if true_falls and false_falls:
            self.env.clear()
            self.env.update(_join_envs(true_env, false_env))
            return True
        if true_falls:
            self.env.clear()
            self.env.update(true_env)
            return True
        if false_falls:
            self.env.clear()
            self.env.update(false_env)
            return True
        return False

    def _exec_loop(self, stmt) -> bool:
        pre_env = dict(self.env)
        assigned = set()
        for sub in stmt.body:
            assigned |= _assigned_names(sub)
        if isinstance(stmt, ast.For):
            target_iv = TOP
            if isinstance(stmt.iter, ast.Call) and \
                    isinstance(stmt.iter.func, ast.Name) and \
                    stmt.iter.func.id == "range" and \
                    1 <= len(stmt.iter.args) <= 2:
                args = [self.eval(a) for a in stmt.iter.args]
                if len(args) == 1:
                    lo_iv, hi_iv = const(0), args[0]
                else:
                    lo_iv, hi_iv = args
                if lo_iv.lo is not None and hi_iv.hi is not None:
                    target_iv = Interval(lo_iv.lo, hi_iv.hi - 1)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = (target_iv, stmt.lineno)
            else:
                for name in _target_names(stmt.target):
                    self.env[name] = (TOP, stmt.lineno)
        for name in assigned:
            self.env[name] = (TOP, stmt.lineno)
        self.exec_block(stmt.body)
        if stmt.orelse:
            self.exec_block(stmt.orelse)
        merged = _join_envs(pre_env, self.env)
        self.env.clear()
        self.env.update(merged)
        return True

    def _exec_try(self, stmt: ast.Try) -> bool:
        assigned: Set[str] = set()
        for sub in stmt.body + [h for handler in stmt.handlers
                                for h in handler.body]:
            assigned |= _assigned_names(sub)
        body_falls = self.exec_block(stmt.body)
        for name in assigned:
            self.env[name] = (TOP, stmt.lineno)
        handler_falls = any(self.exec_block(list(h.body))
                            for h in stmt.handlers) if stmt.handlers \
            else False
        falls = body_falls or handler_falls or not stmt.handlers
        if stmt.finalbody:
            falls = self.exec_block(stmt.finalbody) and falls
        return falls


def _join_envs(left: Env, right: Env) -> Env:
    out: Env = {}
    for name in set(left) | set(right):
        a, b = left.get(name), right.get(name)
        if a is None or b is None:
            bound = a or b
            assert bound is not None
            out[name] = (bound[0].join(TOP), bound[1])
        else:
            out[name] = (a[0].join(b[0]), max(a[1], b[1]))
    return out


def _assigned_names(stmt: ast.stmt) -> Set[str]:
    """Names (re)bound anywhere inside ``stmt``, for sound loop/try
    widening."""
    out: Set[str] = set()
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                out |= _target_names(target)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            out |= _target_names(sub.target)
        elif isinstance(sub, ast.For):
            out |= _target_names(sub.target)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            out.add(sub.name)
        elif isinstance(sub, ast.withitem) and sub.optional_vars:
            out |= _target_names(sub.optional_vars)
    return out


def _target_names(target: ast.expr) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


def const_env(tree: ast.Module) -> Dict[str, Interval]:
    """Interval environment of a module's top-level constant assigns,
    evaluated in source order (``_GD_MASK = (1 << GD_BITS) - 1`` works)."""
    interp = IntervalInterpreter()
    env: Dict[str, Interval] = {}
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if isinstance(target, ast.Name) and value is not None:
            interp.consts = env
            result = interp.eval(value)
            if not result.is_top():
                env[target.id] = result
    return env


# ---------------------------------------------------------------------------
# Witness-chain helpers


def _src(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _blame_name(pack: OrPack) -> Optional[Tuple[str, Interval, int]]:
    """The name most responsible for an or-pack overflow: the first one
    (source order) whose own interval escapes the field."""
    limit = (1 << pack.shift_bits) - 1
    first: Optional[Tuple[str, Interval, int]] = None
    for sub in ast.walk(pack.low):
        if not isinstance(sub, ast.Name):
            continue
        bound = pack.blame.get(sub.id)
        if bound is None:
            continue
        if first is None:
            first = (sub.id, bound[0], bound[1])
        if not bound[0].within(0, limit):
            return (sub.id, bound[0], bound[1])
    return first


# ---------------------------------------------------------------------------
# R010 — packed-key overflow proof


class PackedKeyProofRule(Rule):
    """Prove — not spot-check — that the packed PD² key never overflows.

    Four sub-proofs over the real source (no hand-maintained constants):

    1. **Or-pack fit**: every ``(x << K) | y`` in ``core/keytab.py``
       has ``y`` provably in ``[0, 2**K - 1]`` under the function's own
       guards, so no field can bleed into the one above it.
    2. **Generator bounds**: the workload generator's ``max_period``
       defaults fit the group-deadline and index capacities derived by
       interval-evaluating the keytab constants (subsumes R004's
       string-match with an actual dataflow proof).
    3. **Vector engagement floor**: replaying ``sim/vector.py``'s
       ``_key_layout`` under the generator defaults (periods ≤ the
       default ``max_period``, horizon ≤ 2**24, ≤ 64 tasks) proves the
       narrowed per-chunk key fits ``MAX_KEY_BITS`` — i.e. the runtime
       ``supports()`` gate is not vacuously rejecting the default
       campaigns, and widening ``max_period`` fails here at lint time.
    4. **Sentinel consistency**: ``MAX_KEY_BITS <= 62`` (one bit below
       int64's sign after the pad) and ``_PAD_KEY == 1 << MAX_KEY_BITS``.

    Violations anchor at the *witness origin* — the line where the
    unprovable value enters (a parameter, a generator default) — with
    the full chain to the overflow sink in the message, so pragmas and
    baseline entries suppress at the origin.
    """

    rule_id = "R010"
    name = "packed-key-proof"
    description = ("dataflow proof that packed-key or-packs, generator "
                   "bounds, and the vector key budget cannot overflow")
    uses_project = True

    KEYTAB = "core/keytab.py"
    GENERATOR = "workload/generator.py"
    DISTRIBUTIONS = "workload/distributions.py"
    VECTOR = "sim/vector.py"

    #: Engagement-floor assumptions for sub-proof 3: the static claim is
    #: "default campaigns engage the vector kernel", quantified over
    #: horizons up to 2**24 slots and task sets up to 64 tasks.
    H_FLOOR_BITS = 24
    N_FLOOR = 64

    def check_project(self, project: "ProjectIndex"
                      ) -> Iterator[Violation]:
        by_relpath = {table.info.relpath: table
                      for table in project.modules.values()}
        keytab = by_relpath.get(self.KEYTAB)
        if keytab is not None:
            yield from self._check_orpacks(keytab.info)
        yield from self._check_generator_bounds(by_relpath)
        yield from self._check_vector_floor(by_relpath)
        vector = by_relpath.get(self.VECTOR)
        if vector is not None:
            yield from self._check_pad_sentinel(vector.info)

    # -- sub-proof 1: every or-pack fits its field --------------------

    def _check_orpacks(self, module: ModuleInfo) -> Iterator[Violation]:
        consts = const_env(module.tree)
        for func in _all_functions(module.tree):
            interp = IntervalInterpreter(consts=consts)
            for arg in _all_args(func):
                interp.env[arg.arg] = (TOP, arg.lineno)
            interp.exec_block(func.body)
            for pack in interp.orpacks.values():
                limit = (1 << pack.shift_bits) - 1
                if pack.low_interval.within(0, limit):
                    continue
                blame = _blame_name(pack)
                chain: List[str] = []
                origin_line = pack.node.lineno
                if blame is not None:
                    name, interval, line = blame
                    origin_line = line or pack.node.lineno
                    chain.append(f"{name} ∈ {interval.describe()} "
                                 f"(bound at line {line})")
                chain.append(f"'{_src(pack.low)}' ∈ "
                             f"{pack.low_interval.describe()}")
                chain.append(f"or-packed into the {pack.shift_bits}-bit "
                             f"field at line {pack.node.lineno} "
                             f"(must fit [0, {limit}])")
                yield Violation(
                    path=module.relpath, line=origin_line, col=0,
                    rule_id=self.rule_id,
                    message=f"cannot prove packed-key field fits in "
                            f"{func.name}: " + " -> ".join(chain))

    # -- sub-proof 2: generator defaults vs field capacities ----------

    def _generator_defaults(self, by_relpath: Dict[str, object]
                            ) -> List[Tuple[int, int, str]]:
        """``(value, lineno, relpath)`` for every max_period default."""
        out: List[Tuple[int, int, str]] = []
        generator = by_relpath.get(self.GENERATOR)
        if generator is not None:
            found = _int_default(generator.info.tree, "__init__",
                                 "max_period", method_of="TaskSetGenerator")
            if found is not None:
                out.append((*found, self.GENERATOR))
        distributions = by_relpath.get(self.DISTRIBUTIONS)
        if distributions is not None:
            found = _int_default(distributions.info.tree,
                                 "log_uniform_periods", "max_period")
            if found is not None:
                out.append((*found, self.DISTRIBUTIONS))
        return out

    def _check_generator_bounds(self, by_relpath: Dict[str, object]
                                ) -> Iterator[Violation]:
        keytab = by_relpath.get(self.KEYTAB)
        if keytab is None or self.GENERATOR not in by_relpath:
            return
        consts = const_env(keytab.info.tree)
        # The group-deadline capacity is whatever pack_key's own guard
        # enforces — derived from the source, not restated here.
        gd_cap = consts.get("_MAX_GD_DELTA", TOP).is_const()
        idx_bits = consts.get("IDX_BITS", TOP).is_const()
        idx_cap = None if idx_bits is None else (1 << idx_bits) - 1
        if gd_cap is None or idx_cap is None:
            yield Violation(
                path=self.KEYTAB, line=1, col=0, rule_id=self.rule_id,
                message="cannot interval-evaluate keytab field "
                        "capacities (_MAX_GD_DELTA / IDX_BITS) — keep "
                        "them constant integer expressions")
            return
        guard_line = _guard_line(keytab.info.tree, "pack_key",
                                 "_MAX_GD_DELTA")
        gd_line = _const_line(keytab.info.tree, "GD_BITS")
        for period, lineno, relpath in self._generator_defaults(by_relpath):
            if period > gd_cap:
                yield Violation(
                    path=relpath, line=lineno, col=0,
                    rule_id=self.rule_id,
                    message=f"max_period={period} (default at line "
                            f"{lineno}) -> D - d can reach the period "
                            f"-> exceeds the group-deadline capacity "
                            f"{gd_cap} (GD_BITS at {self.KEYTAB}:"
                            f"{gd_line}) -> pack_key would raise at "
                            f"{self.KEYTAB}:{guard_line}")
            if period > idx_cap:
                yield Violation(
                    path=relpath, line=lineno, col=0,
                    rule_id=self.rule_id,
                    message=f"max_period={period} (default at line "
                            f"{lineno}) -> exceeds the {idx_bits}-bit "
                            f"index field capacity {idx_cap} in "
                            f"{self.KEYTAB}")

    # -- sub-proof 3: vector per-chunk key budget ---------------------

    def _check_vector_floor(self, by_relpath: Dict[str, object]
                            ) -> Iterator[Violation]:
        vector = by_relpath.get(self.VECTOR)
        if vector is None:
            return
        defaults = self._generator_defaults(by_relpath)
        if not defaults:
            return
        layout = _find_function(vector.info.tree, "_key_layout")
        supports = _find_function(vector.info.tree, "supports",
                                  method_of="VectorPD2Simulator")
        consts = const_env(vector.info.tree)
        max_bits = consts.get("MAX_KEY_BITS", TOP).is_const()
        if layout is None or max_bits is None:
            yield Violation(
                path=self.VECTOR, line=1, col=0, rule_id=self.rule_id,
                message="cannot locate _key_layout / constant "
                        "MAX_KEY_BITS to prove the per-chunk key budget")
            return
        if supports is not None and not any(
                isinstance(sub, ast.Compare) and any(
                    isinstance(n, ast.Name) and n.id == "MAX_KEY_BITS"
                    for n in ast.walk(sub))
                for sub in ast.walk(supports)):
            yield Violation(
                path=self.VECTOR, line=supports.lineno, col=0,
                rule_id=self.rule_id,
                message="supports() no longer gates on MAX_KEY_BITS — "
                        "the runtime guard for the per-chunk key "
                        "narrowing proof is gone")
        # Worst period across the generator defaults: the proof must
        # hold for whichever distribution produces the longest periods.
        worst = max(defaults, key=lambda d: d[0])
        period_hi, default_line, default_path = worst
        horizon = Interval(1, 1 << self.H_FLOOR_BITS)
        interp = IntervalInterpreter(
            consts=consts,
            attr_assumptions={"period": Interval(1, period_hi),
                              "phase": Interval(0, period_hi)},
            len_assumptions={"tasks": Interval(1, self.N_FLOOR)})
        for arg in _all_args(layout):
            interp.env[arg.arg] = (TOP, arg.lineno)
        if "horizon" in interp.env:
            interp.env["horizon"] = (horizon, layout.lineno)
        interp.exec_block(layout.body)
        total: Interval = TOP
        for ret in interp.returns:
            if isinstance(ret, tuple) and len(ret) == 4:
                total = ret[3] if total is TOP else total.join(ret[3])
        if total.within(0, max_bits):
            return
        max_bits_line = _const_line(vector.info.tree, "MAX_KEY_BITS")
        yield Violation(
            path=default_path, line=default_line, col=0,
            rule_id=self.rule_id,
            message=f"cannot prove the vector key budget: periods ≤ "
                    f"max_period={period_hi} (default at line "
                    f"{default_line}) -> _key_layout "
                    f"({self.VECTOR}:{layout.lineno}, horizon ≤ "
                    f"2**{self.H_FLOOR_BITS}, ≤ {self.N_FLOOR} tasks) "
                    f"-> total bits ∈ {total.describe()} -> exceeds "
                    f"MAX_KEY_BITS={max_bits} ({self.VECTOR}:"
                    f"{max_bits_line}) -> supports() would reject "
                    f"default campaigns (vector kernel disengaged)")

    # -- sub-proof 4: pad sentinel ------------------------------------

    def _check_pad_sentinel(self, module: ModuleInfo
                            ) -> Iterator[Violation]:
        consts = const_env(module.tree)
        max_bits = consts.get("MAX_KEY_BITS", TOP).is_const()
        pad = consts.get("_PAD_KEY", TOP).is_const()
        if max_bits is None or pad is None:
            return
        if max_bits > 62:
            yield Violation(
                path=module.relpath,
                line=_const_line(module.tree, "MAX_KEY_BITS"), col=0,
                rule_id=self.rule_id,
                message=f"MAX_KEY_BITS={max_bits} > 62: keys plus the "
                        f"pad sentinel no longer fit a signed int64")
        if pad != (1 << max_bits):
            yield Violation(
                path=module.relpath,
                line=_const_line(module.tree, "_PAD_KEY"), col=0,
                rule_id=self.rule_id,
                message=f"_PAD_KEY={pad} != 1 << MAX_KEY_BITS "
                        f"(= {1 << max_bits}): the pad no longer "
                        f"dominates every real key")


# ---------------------------------------------------------------------------
# AST lookup helpers shared by R010/R012


def _all_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def _all_args(func: ast.FunctionDef) -> List[ast.arg]:
    a = func.args
    return list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs) + \
        ([a.vararg] if a.vararg else []) + \
        ([a.kwarg] if a.kwarg else [])


def _find_function(tree: ast.Module, name: str, *,
                   method_of: Optional[str] = None
                   ) -> Optional[ast.FunctionDef]:
    scope: Sequence[ast.stmt] = tree.body
    if method_of is not None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == method_of:
                scope = node.body
                break
        else:
            return None
    for node in scope:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _int_default(tree: ast.Module, func: str, arg: str, *,
                 method_of: Optional[str] = None
                 ) -> Optional[Tuple[int, int]]:
    """``(value, lineno)`` of an int default for ``arg`` of ``func``."""
    node = _find_function(tree, func, method_of=method_of)
    if node is None:
        return None
    args = node.args
    for arg_list, defaults in (
            (args.posonlyargs + args.args, args.defaults),
            (args.kwonlyargs, args.kw_defaults)):
        named = arg_list[len(arg_list) - len(defaults):] \
            if defaults is args.defaults else arg_list
        for a, d in zip(named, defaults):
            if a.arg == arg and isinstance(d, ast.Constant) and \
                    isinstance(d.value, int):
                return d.value, d.lineno
    return None


def _const_line(tree: ast.Module, name: str) -> int:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id == name:
            return node.lineno
    return 1


def _guard_line(tree: ast.Module, func: str, const_name: str) -> int:
    """Line of the Compare inside ``func`` that mentions ``const_name``
    (the runtime guard a static proof points back to)."""
    node = _find_function(tree, func)
    if node is None:
        return 1
    for sub in ast.walk(node):
        if isinstance(sub, ast.Compare) and any(
                isinstance(n, ast.Name) and n.id == const_name
                for n in ast.walk(sub)):
            return sub.lineno
    return node.lineno


# ---------------------------------------------------------------------------
# R012 — wire-protocol conformance


#: Envelope fields present on every frame; not part of any verb payload.
_ENVELOPE_FIELDS = {"id", "verb", "ok", "error", "heartbeat", "version"}

#: Wire-format tags look like ``repro-campaign-run-v1``.
_FORMAT_TAG_RE = re.compile(r"^repro-[a-z0-9-]+-v\d+$")


class _ModuleWire:
    """Everything R012 extracts from one module."""

    __slots__ = ("relpath", "package", "registries", "parse_calls",
                 "handled", "emissions", "read_keys", "tree")

    def __init__(self, info: ModuleInfo) -> None:
        self.relpath = info.relpath
        self.package = info.package
        self.tree = info.tree
        #: registry name -> {verb: lineno}
        self.registries: Dict[str, Dict[str, int]] = {}
        #: registry names this module feeds into parse_request (+ line).
        self.parse_calls: List[Tuple[str, int]] = []
        #: verb string -> first comparison lineno.
        self.handled: Dict[str, int] = {}
        #: (verb, fields, lineno) emitted by this module.
        self.emissions: List[Tuple[str, Set[str], int]] = []
        #: every string constant in the module (lax read-side model).
        self.read_keys: Set[str] = set()


class WireConformanceRule(Rule):
    """The JSON-lines wire protocol stays closed under evolution.

    Five conformance checks across ``service/`` and ``distrib/`` (plus
    format tags in ``campaign/`` and ``analysis/``):

    1. every verb registered in a ``*VERBS`` tuple has a matching
       ``verb == "..."`` handler branch in some module that feeds that
       registry into ``parse_request`` — a verb you can send but nobody
       answers is a protocol hole;
    2. no handler branch compares against a verb its registry does not
       admit (phantom handlers are dead code that hides protocol drift);
    3. every emitted verb (dict literals with a ``"verb"`` key,
       ``client.request("...")`` calls, ``**builder()`` merges) is
       admitted by the registry its receiving package serves;
    4. every non-envelope field an emitted request carries appears as a
       string constant somewhere on the receiving side (encoder/decoder
       field symmetry, request direction);
    5. modules that define wire-format tags (``repro-…-v1``) never
       ``json.load`` a payload and read its keys without checking the
       ``"format"`` tag first.

    Like every dataflow rule, unsound toward silence: dynamically built
    frames evaluate to "unknown" and are skipped, never guessed at.
    """

    rule_id = "R012"
    name = "wire-conformance"
    description = ("every emitted wire verb has a registered handler, "
                   "field sets are symmetric, format tags are checked")
    uses_project = True

    PACKAGES = ("service", "distrib", "campaign", "analysis")
    #: Only service/distrib speak the verb protocol; campaign/analysis
    #: are in scope for format-tag checking alone.
    VERB_PACKAGES = ("service", "distrib")

    def check_project(self, project: "ProjectIndex"
                      ) -> Iterator[Violation]:
        wires: List[_ModuleWire] = []
        for table in project.modules.values():
            info = table.info
            if info.package not in self.PACKAGES:
                continue
            wires.append(self._extract(info, project))
        yield from self._check_verbs(wires)
        yield from self._check_format_tags(wires)

    # -- extraction ---------------------------------------------------

    def _extract(self, info: ModuleInfo,
                 project: "ProjectIndex") -> _ModuleWire:
        wire = _ModuleWire(info)
        for node in info.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id.endswith("VERBS") \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                verbs: Dict[str, int] = {}
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and \
                            isinstance(elt.value, str):
                        verbs[elt.value] = elt.lineno
                if verbs:
                    wire.registries[node.targets[0].id] = verbs
        # Emission-dict keys must not count as "read" keys: a frame
        # builder mentioning its own field names would otherwise satisfy
        # the symmetry check for every field it emits.
        emitted_key_ids: Set[int] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Compare):
                self._extract_handled(node, wire)
            if isinstance(node, ast.Call):
                self._extract_call(node, wire, info, project)
            if isinstance(node, ast.Dict):
                self._extract_dict(node, wire, info, project,
                                   emitted_key_ids)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Constant) and \
                    isinstance(node.value, str) and \
                    id(node) not in emitted_key_ids:
                wire.read_keys.add(node.value)
        return wire

    def _extract_handled(self, node: ast.Compare,
                         wire: _ModuleWire) -> None:
        if len(node.ops) != 1 or \
                not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            return
        sides = (node.left, node.comparators[0])
        names = [s for s in sides if isinstance(s, ast.Name)]
        consts = [s for s in sides if isinstance(s, ast.Constant)
                  and isinstance(s.value, str)]
        if len(names) == 1 and len(consts) == 1 and \
                names[0].id == "verb":
            wire.handled.setdefault(consts[0].value, node.lineno)

    def _extract_call(self, node: ast.Call, wire: _ModuleWire,
                      info: ModuleInfo,
                      project: "ProjectIndex") -> None:
        func = node.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if fname == "parse_request":
            registry = "VERBS"
            for kw in node.keywords:
                if kw.arg == "verbs" and isinstance(kw.value, ast.Name):
                    registry = kw.value.id
            wire.parse_calls.append((registry, node.lineno))
        elif fname == "request":
            # Client stubs: self.request("admit", tasks=..., dry_run=...)
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                fields = {kw.arg for kw in node.keywords
                          if kw.arg is not None}
                wire.emissions.append(
                    (node.args[0].value, fields, node.lineno))

    def _extract_dict(self, node: ast.Dict, wire: _ModuleWire,
                      info: ModuleInfo, project: "ProjectIndex",
                      emitted_key_ids: Set[int]) -> None:
        verb: Optional[str] = None
        fields: Set[str] = set()
        key_ids: List[int] = []
        for key, value in zip(node.keys, node.values):
            if key is None:
                # {**builder(...), "id": n}: merge the keys of the
                # called builder's returned dict literal, when the
                # builder resolves statically inside the project.
                merged = self._builder_dict(value, project)
                if merged is not None:
                    mverb, mfields = merged
                    if mverb is not None:
                        verb = mverb
                    fields |= mfields
                continue
            if isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                key_ids.append(id(key))
                if key.value == "verb" and \
                        isinstance(value, ast.Constant) and \
                        isinstance(value.value, str):
                    verb = value.value
                else:
                    fields.add(key.value)
        if verb is not None:
            emitted_key_ids.update(key_ids)
            wire.emissions.append((verb, fields - _ENVELOPE_FIELDS,
                                   node.lineno))

    def _builder_dict(self, value: ast.expr, project: "ProjectIndex"
                      ) -> Optional[Tuple[Optional[str], Set[str]]]:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if fname is None:
            return None
        for fn in project.functions.values():
            if fn.qname.rsplit(".", 1)[-1] != fname or \
                    not isinstance(fn.node, ast.FunctionDef):
                continue
            for sub in ast.walk(fn.node):
                if isinstance(sub, ast.Return) and \
                        isinstance(sub.value, ast.Dict):
                    verb: Optional[str] = None
                    fields: Set[str] = set()
                    for key, val in zip(sub.value.keys, sub.value.values):
                        if isinstance(key, ast.Constant) and \
                                isinstance(key.value, str):
                            if key.value == "verb" and \
                                    isinstance(val, ast.Constant) and \
                                    isinstance(val.value, str):
                                verb = val.value
                            else:
                                fields.add(key.value)
                    return verb, fields - _ENVELOPE_FIELDS
        return None

    # -- conformance checks -------------------------------------------

    def _check_verbs(self, wires: List[_ModuleWire]
                     ) -> Iterator[Violation]:
        verb_wires = [w for w in wires
                      if w.package in self.VERB_PACKAGES]
        # registry name -> (defining wire, {verb: lineno})
        registries: Dict[str, Tuple[_ModuleWire, Dict[str, int]]] = {}
        for w in verb_wires:
            for name, verbs in w.registries.items():
                registries[name] = (w, verbs)
        # registry name -> handler wires (modules feeding it into
        # parse_request), with the call line for the witness chain.
        handlers: Dict[str, List[Tuple[_ModuleWire, int]]] = {}
        for w in verb_wires:
            for registry, lineno in w.parse_calls:
                if registry in registries:
                    handlers.setdefault(registry, []).append((w, lineno))

        # 1. registered verb nobody handles.
        for name, (owner, verbs) in registries.items():
            sites = handlers.get(name)
            if not sites:
                continue  # no parse_request caller in this tree: skip
            for verb, lineno in verbs.items():
                if any(verb in w.handled for w, _ in sites):
                    continue
                w, call_line = sites[0]
                yield Violation(
                    path=owner.relpath, line=lineno, col=0,
                    rule_id=self.rule_id,
                    message=f"verb '{verb}' registered in {name} "
                            f"(line {lineno}) -> parse_request admits "
                            f"it at {w.relpath}:{call_line} -> no "
                            f"`verb == \"{verb}\"` handler branch in "
                            + " or ".join(sorted({hw.relpath
                                                  for hw, _ in sites})))

        # 2. handler branch for a verb outside its registry.
        for w in verb_wires:
            served: Set[str] = set()
            for registry, _ in w.parse_calls:
                if registry in registries:
                    served |= set(registries[registry][1])
            if not served:
                continue
            for verb, lineno in w.handled.items():
                if verb not in served:
                    regs = ", ".join(sorted(
                        r for r, _ in w.parse_calls if r in registries))
                    yield Violation(
                        path=w.relpath, line=lineno, col=0,
                        rule_id=self.rule_id,
                        message=f"handler branch for verb '{verb}' "
                                f"(line {lineno}) -> parse_request "
                                f"here only admits {regs} -> "
                                f"'{verb}' can never arrive (phantom "
                                f"handler, protocol drift)")

        # 3 + 4. emissions: verb admitted, fields readable.
        for w in verb_wires:
            for verb, fields, lineno in w.emissions:
                target = self._target_registry(w, verb, registries)
                if target is None:
                    continue
                name, owner, verbs = target
                if verb not in verbs:
                    yield Violation(
                        path=w.relpath, line=lineno, col=0,
                        rule_id=self.rule_id,
                        message=f"emits verb '{verb}' (line {lineno}) "
                                f"-> receiving registry {name} "
                                f"({owner.relpath}) does not admit it "
                                f"-> receiver replies unknown-verb")
                    continue
                readers = [hw for hw, _ in handlers.get(name, [])]
                readers.append(owner)
                readable: Set[str] = set()
                for r in readers:
                    readable |= r.read_keys
                for field_name in sorted(fields - _ENVELOPE_FIELDS):
                    if field_name not in readable:
                        reader_names = " or ".join(sorted(
                            {r.relpath for r in readers}))
                        yield Violation(
                            path=w.relpath, line=lineno, col=0,
                            rule_id=self.rule_id,
                            message=f"verb '{verb}' request field "
                                    f"'{field_name}' (line {lineno}) "
                                    f"-> never read on the receiving "
                                    f"side ({reader_names}) -> silently "
                                    f"dropped payload")

    def _target_registry(
            self, w: _ModuleWire, verb: str,
            registries: Dict[str, Tuple[_ModuleWire, Dict[str, int]]]
    ) -> Optional[Tuple[str, _ModuleWire, Dict[str, int]]]:
        """Which registry an emission from ``w`` must satisfy: the one
        defined in the same package, else the unique registry admitting
        the verb, else unknown (skip — unsound toward silence)."""
        same_pkg = [(name, owner, verbs)
                    for name, (owner, verbs) in registries.items()
                    if owner.package == w.package]
        if len(same_pkg) == 1:
            return same_pkg[0]
        admitting = [(name, owner, verbs)
                     for name, (owner, verbs) in registries.items()
                     if verb in verbs]
        if len(admitting) == 1:
            return admitting[0]
        return None

    # -- format-tag discipline ----------------------------------------

    def _check_format_tags(self, wires: List[_ModuleWire]
                           ) -> Iterator[Violation]:
        for w in wires:
            tags = [k for k in w.read_keys if _FORMAT_TAG_RE.match(k)]
            if not tags:
                continue
            for func in _all_functions(w.tree):
                yield from self._check_tagged_reader(w, func)

    def _check_tagged_reader(self, w: _ModuleWire,
                             func: ast.FunctionDef
                             ) -> Iterator[Violation]:
        loads_line: Optional[int] = None
        reads_keys = False
        checks_format = False
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and \
                        f.attr in ("load", "loads") and \
                        isinstance(f.value, ast.Name) and \
                        f.value.id == "json":
                    loads_line = loads_line or node.lineno
                if isinstance(f, ast.Attribute) and f.attr == "get" \
                        and node.args and \
                        isinstance(node.args[0], ast.Constant) and \
                        isinstance(node.args[0].value, str):
                    if node.args[0].value == "format":
                        checks_format = True
                    else:
                        reads_keys = True
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.slice, ast.Constant) and \
                    isinstance(node.slice.value, str):
                if node.slice.value == "format":
                    checks_format = True
                else:
                    reads_keys = True
            elif isinstance(node, ast.Constant) and \
                    node.value == "format":
                checks_format = True
        if loads_line is not None and reads_keys and not checks_format:
            yield Violation(
                path=w.relpath, line=loads_line, col=0,
                rule_id=self.rule_id,
                message=f"{func.name} json-decodes a payload (line "
                        f"{loads_line}) -> reads its keys -> never "
                        f"checks the \"format\" tag -> a stale or "
                        f"foreign file deserializes silently")
