"""Rule engine: file walking, parsing, pragma suppression, orchestration.

The engine knows nothing about individual invariants — it parses every
``*.py`` under a root, hands :class:`ModuleInfo` records to the rules
(per-module pass, then a whole-project ``finalize`` pass for cross-file
rules like layering and key-width safety), and filters the results
through ``# staticcheck: allow[...]`` pragmas.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .violations import Violation

__all__ = ["ModuleInfo", "CheckResult", "Checker", "run_checks"]

#: Line pragma: suppress the named rules on this physical line.
#: ``ignore[...]`` is an accepted alias for ``allow[...]``.
_PRAGMA_RE = re.compile(
    r"#\s*staticcheck:\s*(?:allow|ignore)\[([A-Za-z0-9_,\s]+)\]")
#: File pragma: suppress the named rules everywhere in this file.
_FILE_PRAGMA_RE = re.compile(
    r"#\s*staticcheck:\s*(?:allow|ignore)-file\[([A-Za-z0-9_,\s]+)\]")

#: Rule id for files the engine itself cannot parse.
PARSE_ERROR = "E000"


def _split_rule_ids(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class ModuleInfo:
    """One parsed source file plus everything a rule needs to judge it."""

    path: Path                        # absolute path on disk
    relpath: str                      # posix path relative to the scanned root
    tree: ast.Module
    source: str
    lines: List[str]
    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    file_allows: Set[str] = field(default_factory=set)

    @property
    def package(self) -> str:
        """Top-level package directory within the root ('' for top-level
        modules like ``cli.py``)."""
        parts = self.relpath.split("/")
        return parts[0] if len(parts) > 1 else ""

    @property
    def module_parts(self) -> Tuple[str, ...]:
        """Dotted-module components relative to the root package,
        e.g. ``('core', 'keytab')``; ``__init__`` is dropped so a
        package's init file resolves to the package itself."""
        parts = self.relpath[:-3].split("/")  # strip ".py"
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return tuple(parts)

    def allows(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_allows:
            return True
        return rule_id in self.line_allows.get(line, ())


def _scan_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, Set[str]], Set[str]]:
    line_allows: Dict[int, Set[str]] = {}
    file_allows: Set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        if "staticcheck" not in text:
            continue
        m = _FILE_PRAGMA_RE.search(text)
        if m:
            file_allows |= _split_rule_ids(m.group(1))
        m = _PRAGMA_RE.search(text)
        if m:
            line_allows.setdefault(lineno, set()).update(
                _split_rule_ids(m.group(1)))
    return line_allows, file_allows


def load_module(path: Path, root: Path) -> Tuple[Optional[ModuleInfo], Optional[Violation]]:
    """Parse one file; returns ``(module, None)`` or ``(None, parse-error)``."""
    relpath = path.relative_to(root).as_posix()
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Violation(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR,
            message=f"cannot parse: {exc.msg}",
        )
    line_allows, file_allows = _scan_pragmas(lines)
    return ModuleInfo(path=path, relpath=relpath, tree=tree, source=source,
                      lines=lines, line_allows=line_allows,
                      file_allows=file_allows), None


@dataclass
class CheckResult:
    """Everything one run produced, before any baseline is applied."""

    root: str
    violations: List[Violation]
    suppressed: int          # pragma-suppressed hits (for -v accounting)
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations


class Checker:
    """Walks a root directory and runs a rule set over it.

    ``root`` is the package directory to scan (canonically ``src/repro``;
    test fixtures use any directory with the same sub-package layout).
    A single ``*.py`` file is accepted too — its parent becomes the root.
    """

    def __init__(self, root: Path, rules: Optional[Sequence[object]] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None,
                 use_project: bool = True) -> None:
        from .rules import RULES

        root = Path(root).resolve()
        if root.is_file():
            self.files: List[Path] = [root]
            self.root = root.parent
        else:
            self.root = root
            self.files = sorted(p for p in root.rglob("*.py")
                                if "__pycache__" not in p.parts)
        chosen = list(RULES if rules is None else rules)
        if select is not None:
            wanted = set(select)
            chosen = [r for r in chosen if r.rule_id in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.rule_id not in dropped]
        #: With ``use_project=False`` (``--no-project``) the expensive
        #: ProjectIndex is never built and project rules are skipped;
        #: rules with a ``configure`` hook (R004) learn about it so
        #: cheap fallbacks can re-engage.
        self.use_project = use_project
        self.rules = chosen
        #: The ProjectIndex of the last ``check()`` run, if one was
        #: built (``None`` otherwise) — introspection for tests.
        self.project = None
        active_ids = {r.rule_id for r in chosen}
        for rule in chosen:
            configure = getattr(rule, "configure", None)
            if configure is not None:
                configure(active_ids=active_ids,
                          project_enabled=use_project)

    def check(self) -> CheckResult:
        modules: List[ModuleInfo] = []
        raw: List[Violation] = []
        for path in self.files:
            module, parse_error = load_module(path, self.root)
            if parse_error is not None:
                raw.append(parse_error)
                continue
            assert module is not None  # exactly one of the pair is set
            modules.append(module)
            for rule in self.rules:
                raw.extend(rule.check_module(module))
        by_relpath = {m.relpath: m for m in modules}
        for rule in self.rules:
            raw.extend(rule.finalize(modules))

        project_rules = [r for r in self.rules
                         if getattr(r, "uses_project", False)] \
            if self.use_project else []
        if project_rules:
            # Deferred import: callgraph imports ModuleInfo from here.
            from .callgraph import ProjectIndex
            from .passes import project_pass

            project = ProjectIndex(modules)
            #: Kept for introspection: the pass-isolation tests assert
            #: via ``passes.built_passes`` that a ``--select`` run built
            #: only the passes the selected rules declared.
            self.project = project
            # Build exactly the union of the selected rules' declared
            # passes up front — rules then hit the memoised copies, and
            # a rule whose declaration is missing fails loudly in its
            # own check_project rather than silently building extra.
            for rule in project_rules:
                for need in getattr(rule, "needs", ()):
                    project_pass(project, need)
            for rule in project_rules:
                raw.extend(rule.check_project(project))

        kept: List[Violation] = []
        suppressed = 0
        for violation in raw:
            module = by_relpath.get(violation.path)
            if module is not None and module.allows(violation.rule_id,
                                                    violation.line):
                suppressed += 1
            else:
                kept.append(violation)
        kept.sort()
        return CheckResult(root=str(self.root), violations=kept,
                           suppressed=suppressed, files_checked=len(self.files))


def run_checks(root: Path, *, select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> CheckResult:
    """One-call convenience wrapper: check ``root`` with the default rules."""
    return Checker(Path(root), select=select, ignore=ignore).check()
