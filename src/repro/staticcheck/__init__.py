"""``repro.staticcheck`` — AST-based invariant checker for this repository.

The paper's argument rests on PD² making *exact* priority decisions:
integer quanta, rational weights, the Eq. (3) inflation.  One float
leaking into a tie-break, one seedless RNG in a cached code path, or one
upward import that lets a campaign-level module reach into the decision
engine, silently breaks invariants that the dynamic test suite can only
sample.  This package enforces them statically, at commit time, from the
AST alone — stdlib ``ast`` only, no third-party dependencies.

Rules (see :mod:`repro.staticcheck.rules` and docs/STATIC_ANALYSIS.md):

* **R001 exactness** — no float literals, ``float()`` calls, or true
  division in decision paths (``core/`` and ``sim/fastpath.py``); numpy
  in the vectorized kernel (``sim/vector.py``) is gated to integer
  dtypes.
* **R002 determinism** — no seedless RNGs, wall-clock reads, or
  environment reads outside ``util/toggles.py`` in ``core/`` + ``sim/``.
* **R003 layering** — the import DAG ``util → core → workload →
  overheads/partition → sim → … → analysis/service`` admits no upward
  imports and no package cycles.
* **R004 key-width safety** — the packed-key bit fields in
  ``core/keytab.py`` hold the largest parameters the workload generator
  emits.
* **R005 hygiene** — no mutable default arguments, bare ``except``, or
  control-flow ``assert`` in library code.

Four further rules are *interprocedural*: they run over a project-wide
symbol table / call graph (:mod:`repro.staticcheck.callgraph`) with
thread-domain inference (:mod:`repro.staticcheck.domains`), enforcing
the concurrency model written down in docs/CONCURRENCY.md:

* **R006 blocking-in-async** — no blocking calls (``time.sleep``,
  ``open``, ``subprocess``, socket connects, …) reachable from
  event-loop code.
* **R007 domain-confinement** — no module-level mutable state written
  from two thread domains without a recognised lock.
* **R008 lock-discipline** — no lock-order cycles (lexical or through
  calls), no ``await`` under a sync lock, no bare ``acquire()``.
* **R009 fork-safety** — nothing transitively holding a lock, socket,
  or event loop crosses a process boundary.

Three more are *dataflow* rules, built on an integer interval domain
(:mod:`repro.staticcheck.intervals`), an abstract interpreter over
function bodies (:mod:`repro.staticcheck.dataflow`), and a numpy dtype
lattice (:mod:`repro.staticcheck.nptypes`):

* **R010 packed-key-proof** — interval analysis *proves* every
  or-packed key field in ``core/keytab.py`` fits its bit width from
  the guards alone, that the workload generator's ``max_period``
  defaults stay within every field capacity, and that the vector
  kernel's narrow-key layout fits ``MAX_KEY_BITS`` for all systems
  ``supports()`` admits (subsumes R004, which delegates to it).
* **R011 numpy-dtype-soundness** — no silent dtype promotion in the
  integer kernels (``sim/vector.py``, ``sim/fastpath.py``): implicit
  float64 defaults, ``uint64``/signed mixing, true division, mixed
  integer widths inside sort keys.
* **R012 wire-conformance** — every registered wire verb has a
  handler, every emitted verb is registered, every emitted field is
  read by a peer, and persisted payloads are format-tag-checked where
  their keys are read.

The last three form the *determinism-provenance* layer
(:mod:`repro.staticcheck.provenance`, :mod:`repro.staticcheck.ordering`),
a taint analysis over the same call graph plus an iteration-order
classifier (see docs/DETERMINISM.md):

* **R013 seed-provenance** — every RNG constructed in ``core/``,
  ``sim/``, ``campaign/``, ``workload/`` is seeded from campaign-seed
  arithmetic; witnessed ambient entropy (no-arg constructions,
  ``time``/``os.urandom``/``uuid``/``id()``/``hash()``-derived seeds)
  is flagged with the full origin → sink chain.
* **R014 ordering-soundness** — unordered iteration order (sets,
  ``listdir``/``glob``, completion order, thread-fed queues,
  thread-mutated dict attributes) must not reach appended rows,
  accumulated floats, yields, writes, or callbacks; ``sorted(...)`` at
  the point of use launders.
* **R015 canonical-serialization** — ``json.dumps``/``dump`` whose
  bytes are persisted, hashed, or framed on the wire must pass
  ``sort_keys=True`` and pin ``separators=`` or ``indent=``.

Each project rule *declares* the analysis passes it needs
(:mod:`repro.staticcheck.passes`), so ``--select R013`` builds the
seed-taint pass and nothing else.

Call-graph resolution is unsound in the direction of silence: dynamic
dispatch degrades to an ``unknown`` target, so these rules miss dynamic
code but never invent findings.

Violations are suppressed line-by-line with ``# staticcheck:
allow[R001]`` pragmas (a justification comment is expected next to every
pragma) or, transitionally, via a committed JSON baseline that makes CI
fail only on *new* violations.
"""

from __future__ import annotations

from .callgraph import ProjectIndex
from .domains import DomainAnalysis
from .engine import CheckResult, Checker, ModuleInfo, run_checks
from .rules import RULES, Rule
from .violations import Violation

__all__ = [
    "Checker",
    "CheckResult",
    "DomainAnalysis",
    "ModuleInfo",
    "ProjectIndex",
    "run_checks",
    "RULES",
    "Rule",
    "Violation",
]
