"""``repro.staticcheck`` — AST-based invariant checker for this repository.

The paper's argument rests on PD² making *exact* priority decisions:
integer quanta, rational weights, the Eq. (3) inflation.  One float
leaking into a tie-break, one seedless RNG in a cached code path, or one
upward import that lets a campaign-level module reach into the decision
engine, silently breaks invariants that the dynamic test suite can only
sample.  This package enforces them statically, at commit time, from the
AST alone — stdlib ``ast`` only, no third-party dependencies.

Rules (see :mod:`repro.staticcheck.rules` and docs/STATIC_ANALYSIS.md):

* **R001 exactness** — no float literals, ``float()`` calls, or true
  division in decision paths (``core/`` and ``sim/fastpath.py``).
* **R002 determinism** — no seedless RNGs, wall-clock reads, or
  environment reads outside ``util/toggles.py`` in ``core/`` + ``sim/``.
* **R003 layering** — the import DAG ``util → core → workload →
  overheads/partition → sim → … → analysis/service`` admits no upward
  imports and no package cycles.
* **R004 key-width safety** — the packed-key bit fields in
  ``core/keytab.py`` hold the largest parameters the workload generator
  emits.
* **R005 hygiene** — no mutable default arguments, bare ``except``, or
  control-flow ``assert`` in library code.

Violations are suppressed line-by-line with ``# staticcheck:
allow[R001]`` pragmas (a justification comment is expected next to every
pragma) or, transitionally, via a committed JSON baseline that makes CI
fail only on *new* violations.
"""

from __future__ import annotations

from .engine import CheckResult, Checker, ModuleInfo, run_checks
from .rules import RULES, Rule
from .violations import Violation

__all__ = [
    "Checker",
    "CheckResult",
    "ModuleInfo",
    "run_checks",
    "RULES",
    "Rule",
    "Violation",
]
