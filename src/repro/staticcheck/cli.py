"""``python -m repro.staticcheck`` / ``repro lint`` — the command line.

Exit codes: 0 clean (or all violations baselined), 1 violations, 2 usage
error.  ``--format json`` emits a machine-readable report for CI
annotation; the default text format prints one ``path:line:col: RULE
message`` line per violation, ready for editors to jump to.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline, split_by_baseline, write_baseline
from .engine import Checker, CheckResult
from .rules import RULES
from .violations import Violation

__all__ = ["main"]

#: Default scan root: the installed/checked-out ``repro`` package itself.
_DEFAULT_ROOT = Path(__file__).resolve().parents[1]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based invariant checker: exactness, determinism, "
                    "layering, key-width safety, hygiene, the "
                    "interprocedural concurrency rules (R006-R009), the "
                    "dataflow rules (R010 packed-key overflow proof, "
                    "R011 numpy dtype soundness, R012 wire conformance), "
                    "and the provenance rules (R013 seed provenance, "
                    "R014 ordering soundness, R015 canonical "
                    "serialization).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=None,
        help="package directories or files to check "
             f"(default: {_DEFAULT_ROOT})")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="baseline JSON: only violations absent from it fail the run")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current violations into --baseline and exit 0")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip whole-project (ProjectIndex) rules — faster, but "
             "R006-R010/R012-R014 are skipped and R004 falls back to "
             "its cheap keyword-default check")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line")
    return parser


def _list_rules() -> int:
    for rule in RULES:
        print(f"{rule.rule_id}  {rule.name}: {rule.description}")
    return 0


def _render_text(new: List[Violation], baselined: List[Violation],
                 result: CheckResult, quiet: bool) -> None:
    for violation in new:
        print(violation.render())
    if not quiet:
        summary = (f"checked {result.files_checked} files: "
                   f"{len(new)} violation(s)")
        if baselined:
            summary += f", {len(baselined)} baselined"
        if result.suppressed:
            summary += f", {result.suppressed} pragma-suppressed"
        print(summary, file=sys.stderr)


def _render_json(new: List[Violation], baselined: List[Violation],
                 result: CheckResult) -> None:
    print(json.dumps({
        "root": result.root,
        "files_checked": result.files_checked,
        "violations": [v.to_dict() for v in new],
        "baselined": len(baselined),
        "pragma_suppressed": result.suppressed,
        "ok": not new,
    }, indent=2))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the checker over the given paths; returns the process exit code.

    Exit 0 when no new violations (relative to the baseline, if any),
    1 when violations were found, 2 on usage errors or unparseable files.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    paths = [Path(p) for p in args.paths] if args.paths else [_DEFAULT_ROOT]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    all_new: List[Violation] = []
    all_baselined: List[Violation] = []
    files_checked = 0
    suppressed = 0
    fingerprints = (load_baseline(args.baseline)
                    if args.baseline is not None else set())
    everything: List[Violation] = []
    last_result: Optional[CheckResult] = None
    for path in paths:
        result = Checker(path, select=select, ignore=ignore,
                         use_project=not args.no_project).check()
        last_result = result
        files_checked += result.files_checked
        suppressed += result.suppressed
        everything.extend(result.violations)
        new, baselined = split_by_baseline(result.violations, fingerprints)
        all_new.extend(new)
        all_baselined.extend(baselined)

    if args.write_baseline:
        write_baseline(args.baseline, everything)
        if not args.quiet:
            print(f"wrote {len(everything)} violation(s) to {args.baseline}",
                  file=sys.stderr)
        return 0

    merged = CheckResult(
        root=str(paths[0]) if len(paths) == 1 else "; ".join(map(str, paths)),
        violations=all_new, suppressed=suppressed,
        files_checked=files_checked)
    if last_result is None:
        parser.error("nothing to check")
    if args.format == "json":
        _render_json(all_new, all_baselined, merged)
    else:
        _render_text(all_new, all_baselined, merged, args.quiet)
    return 1 if all_new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
