"""Service metrics: re-export of :mod:`repro.util.metrics`.

The counter/histogram primitives started life here and moved down to
``util/`` so the campaign engine can reuse them without importing the
service layer (staticcheck R003 forbids that upward edge).  This shim
keeps the historical import path working — the server, its tests, and
``docs/SERVICE.md`` all refer to ``repro.service.metrics``.

Within the service the registry is event-loop confined (no locks): every
update happens on the :class:`~repro.service.server.AdmissionServer`
event loop, and the ``stats`` verb snapshots from the same loop.
"""

from __future__ import annotations

from ..util.metrics import (DEFAULT_BOUNDS, Counter, LatencyHistogram,
                            MetricsRegistry)

__all__ = ["Counter", "LatencyHistogram", "MetricsRegistry",
           "DEFAULT_BOUNDS"]
