"""The asyncio JSON-lines TCP server fronting one live PD² system.

One :class:`AdmissionServer` owns one :class:`~repro.service.state.ServiceState`
and serves the protocol of :mod:`repro.service.protocol`.  Concurrency
model: all request handling runs on the event loop; verbs that mutate the
live system (``admit``, ``leave``, ``reweight``, ``advance``) additionally
serialise through one lock, so Eq. (2) admission is race-free even with
many connections pipelining — exactly the invariant
:class:`~repro.core.dynamic.DynamicPfairSystem` requires.

Shutdown is graceful: the listener closes first, then every connection is
asked to *drain* — stop reading, answer what is already queued, flush, and
close — bounded by a timeout.  A client that asked for ``shutdown`` gets
its response before the listener goes down.

:class:`ServerThread` runs a server on a dedicated thread with its own
event loop, for synchronous callers (the CLI's ``repro serve``, tests,
benchmarks, and ``examples/admission_service_demo.py``).
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from .batching import ConnectionPipeline
from .metrics import MetricsRegistry
from .protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
                       error_response, ok_response, parse_request,
                       parse_spec_sets, parse_specs)
from .state import ServiceError, ServiceState

__all__ = ["AdmissionServer", "ServerThread"]


class AdmissionServer:
    """Serves admission-control requests for one live system."""

    def __init__(self, state: ServiceState, host: str = "127.0.0.1",
                 port: int = 0, *, max_batch: int = 64,
                 max_pending: int = 256,
                 drain_timeout: float = 5.0) -> None:
        self.state = state
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.drain_timeout = drain_timeout
        self.metrics = MetricsRegistry()
        self._lock: Optional[asyncio.Lock] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pipelines: Set[ConnectionPipeline] = set()
        self._stop: Optional[asyncio.Event] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and begin accepting; returns the bound ``(host, port)``
        (the port is the ephemeral one when 0 was requested)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._lock = asyncio.Lock()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port, limit=MAX_LINE_BYTES)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Start (if needed), serve until ``shutdown`` is requested, then
        drain connections and close."""
        if self._server is None:
            await self.start()
        assert self._stop is not None
        await self._stop.wait()
        await self.close()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to wind the server down."""
        if self._stop is not None:
            self._stop.set()

    async def close(self) -> None:
        """Stop accepting, drain live connections, and release the port."""
        if self._server is None:
            return
        self._server.close()
        for pipeline in list(self._pipelines):
            pipeline.begin_drain()
        if self._pipelines:
            waiters = [p.done.wait() for p in list(self._pipelines)]
            try:
                await asyncio.wait_for(asyncio.gather(*waiters),
                                       timeout=self.drain_timeout)
            except asyncio.TimeoutError:
                pass  # stragglers are dropped; their sockets close below
        await self._server.wait_closed()
        self._server = None

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self.metrics.counter("connections").inc("opened")
        pipeline = ConnectionPipeline(
            reader, writer, self.handle,
            max_batch=self.max_batch, max_pending=self.max_pending,
            metrics=self.metrics)
        self._pipelines.add(pipeline)
        try:
            await pipeline.run()
        finally:
            self._pipelines.discard(pipeline)
            self.metrics.counter("connections").inc("closed")

    # -- request handling ----------------------------------------------------

    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded request; never raises.

        Metrics are recorded *after* the response is built, so a ``stats``
        snapshot covers exactly the requests completed before it.
        """
        started = time.perf_counter()
        rid = request.get("id")
        verb = "?"
        error_code = None
        try:
            rid, verb = parse_request(request)
            response = await self._dispatch(rid, verb, request)
        except (ProtocolError, ServiceError) as exc:
            error_code = exc.code
            response = error_response(rid, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 — the server must not die
            error_code = "internal"
            response = error_response(rid, "internal",
                                      f"{type(exc).__name__}: {exc}")
        elapsed = time.perf_counter() - started
        self.metrics.counter("requests").inc(verb)
        self.metrics.histogram(f"latency.{verb}").observe(elapsed)
        if error_code is not None:
            self.metrics.counter("errors").inc(error_code)
        return response

    async def _dispatch(self, rid: Any, verb: str,
                        request: Dict[str, Any]) -> Dict[str, Any]:
        assert self._lock is not None, "server not started"
        if verb == "ping":
            return ok_response(rid, pong=True, version=PROTOCOL_VERSION)
        if verb == "stats":
            return ok_response(rid, metrics=self.metrics.snapshot(),
                               cache=self.state.cache.info(),
                               system=self.state.describe())
        if verb == "query":
            if "tasks" in request:
                specs = parse_specs(request)
                return ok_response(rid, analysis=self.state.analyze(specs),
                                   system=self.state.describe())
            return ok_response(rid, system=self.state.describe())
        if verb == "batch-analyze":
            # Read-only but heavy: the campaign engine dispatches the
            # sets over its process pool, and *waiting* on that pool
            # would park the event loop — so the wait itself moves to a
            # worker thread.  ``analyze_batch`` touches only the
            # internally-locked LRU and the immutable model, never the
            # live system, so no state lock is needed.
            sets = parse_spec_sets(request)
            workers = request.get("workers", 1)
            if not isinstance(workers, int) or not 1 <= workers <= 64:
                raise ProtocolError(
                    "bad-request", "'workers' must be an integer in [1, 64]")
            loop = asyncio.get_running_loop()
            results = await loop.run_in_executor(
                None, self.state.analyze_batch, sets, workers)
            return ok_response(rid, results=results, count=len(results))
        if verb == "shutdown":
            self.request_shutdown()
            return ok_response(rid, closing=True)
        # Mutating verbs serialise on the state lock.
        async with self._lock:
            if verb == "admit":
                specs = parse_specs(request)
                dry = bool(request.get("dry_run", False))
                return ok_response(rid, **self.state.admit(specs,
                                                           dry_run=dry))
            if verb == "leave":
                names = request.get("names")
                if not isinstance(names, list):
                    raise ProtocolError("bad-request",
                                        "'names' must be a list")
                return ok_response(rid, **self.state.leave(names))
            if verb == "reweight":
                for field in ("name", "execution", "period"):
                    if field not in request:
                        raise ProtocolError("bad-request",
                                            f"missing '{field}'")
                if not (isinstance(request["execution"], int)
                        and isinstance(request["period"], int)):
                    raise ProtocolError(
                        "bad-request",
                        "'execution' and 'period' must be integers (ticks)")
                return ok_response(rid, **self.state.reweight(
                    request["name"], request["execution"],
                    request["period"], new_name=request.get("new_name")))
            if verb == "advance":
                return ok_response(
                    rid, **self.state.advance(request.get("slots", 1)))
        raise ProtocolError("unknown-verb", f"unhandled verb {verb!r}")


class ServerThread:
    """An :class:`AdmissionServer` on a background thread, for sync code.

    ::

        srv = ServerThread(ServiceState(processors=4))
        host, port = srv.start()
        ...  # drive it with AdmissionClient
        srv.stop()
    """

    def __init__(self, state: ServiceState, host: str = "127.0.0.1",
                 port: int = 0, **server_kwargs: Any) -> None:
        self.server = AdmissionServer(state, host, port, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def _main(self) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                raise
            finally:
                self._started.set()
            await self.server.serve_forever()

        try:
            asyncio.run(body())
        except BaseException:
            if not self._started.is_set():  # pragma: no cover — bind races
                self._started.set()

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Launch the thread; returns the bound address once listening.

        A failed start (port in use, timeout) unwinds completely — the
        thread is asked to shut down and joined, and the ``ServerThread``
        is left exactly as before the call, so a retry (e.g. with a
        different port) is possible and no half-started daemon leaks.
        """
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._started.clear()
        self._startup_error = None
        thread = threading.Thread(target=self._main,
                                  name="repro-admission-server",
                                  daemon=True)
        self._thread = thread
        thread.start()
        try:
            if not self._started.wait(timeout):
                raise RuntimeError("server did not start in time")
            if self._startup_error is not None:
                raise RuntimeError(
                    f"server failed to start: {self._startup_error}")
        except Exception:
            loop = self._loop
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(self.server.request_shutdown)
            thread.join(timeout)
            self._thread = None
            self._loop = None
            raise
        assert self.server.address is not None
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and join the thread (idempotent: safe to call
        twice, or after a failed :meth:`start`)."""
        if self._thread is None:
            return
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> Tuple[str, int]:
        """Start the server; the context value is the bound address."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
