"""The service's live state: one dynamic PD² system plus cached analysis.

:class:`ServiceState` is the single-threaded heart of the server — every
verb maps to one method here, and the asyncio layer guarantees the
mutating ones run serialised.  It composes three pieces of the library:

* a :class:`~repro.core.dynamic.DynamicPfairSystem` holding the live
  task system (joins gated by Eq. (2), leaves delayed per the paper's
  rules, reweighting as leave-then-rejoin);
* the overhead-aware analyses of :mod:`repro.analysis.schedulability`,
  reporting the minimum processor count under PD² and EDF-FF for every
  requested set;
* an :class:`~repro.service.cache.LRUCache` over those analyses, keyed
  by the canonical task-set hash so repeated queries are O(1).

The cache keyspace is shared with the analysis layer: this instance's
LRU memoises the service-shaped response dicts, while the underlying
``pd2_min_processors`` / ``edf_ff_min_processors`` calls consult the
process-wide :data:`repro.analysis.schedulability.ANALYSIS_CACHE` under
the *same* :func:`~repro.analysis.schedulability.task_set_cache_key`
digests — so a task set analysed by a campaign (or another service
instance in this process) is never recomputed from scratch here, and
vice versa.

Multi-task admission is transactional: the system is snapshotted, the
joins attempted one by one, and on any failure the snapshot is restored —
a rejected request leaves no trace (verified down to the committed-weight
fraction by the test suite).

Time is explicit: the system advances only through the ``advance`` verb,
keeping the service deterministic and replayable.  A wall-clock driver
belongs in deployment glue, not here.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.schedulability import (edf_ff_min_processors,
                                       pd2_min_processors, task_set_cache_key)
from ..core.dynamic import DynamicPfairSystem
from ..core.rational import weight_sum
from ..core.task import PeriodicTask
from ..overheads.model import OverheadModel
from ..workload.spec import TaskSpec
from .cache import LRUCache

__all__ = ["ServiceError", "ServiceState"]


class ServiceError(Exception):
    """A request that is well-formed but unserviceable (unknown task,
    bad quantisation, duplicate name); ``code`` goes on the wire."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")


class ServiceState:
    """Live admission-control state behind one server instance."""

    def __init__(self, processors: int, *,
                 model: Optional[OverheadModel] = None,
                 cache_capacity: int = 1024) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        self.processors = processors
        self.model = model if model is not None else OverheadModel()
        self.system = DynamicPfairSystem(processors)
        self.cache = LRUCache(cache_capacity)
        #: Task name -> task_id, for every task ever admitted.  Names are
        #: unique over the life of the service (leaves do not free them:
        #: a departed task's history must stay addressable in traces).
        self._names: Dict[str, int] = {}
        self._autoname = itertools.count()

    # -- analysis (cached) --------------------------------------------------

    def analyze(self, specs: Sequence[TaskSpec]) -> Dict[str, Any]:
        """Minimum processors under PD² and EDF-FF, through the cache."""
        key = task_set_cache_key(specs, self.model)
        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return {**hit, "cached": True}
        try:
            m_pd2 = pd2_min_processors(specs, self.model)
            m_edf_ff = edf_ff_min_processors(specs, self.model)
        except ValueError as exc:
            raise ServiceError("bad-task", str(exc)) from exc
        result = {
            "m_pd2": m_pd2,
            "m_edf_ff": m_edf_ff,
            "utilization": float(sum(Fraction(s.execution, s.period)
                                     for s in specs)),
            "n_tasks": len(specs),
        }
        if key is not None:
            self.cache.put(key, result)
        return {**result, "cached": False}

    def analyze_batch(self, task_sets: Sequence[Sequence[TaskSpec]],
                      workers: int = 1) -> List[Dict[str, Any]]:
        """Analyse many independent task sets, in input order.

        ``workers`` is positional so the server can ship this bound
        method straight through ``run_in_executor`` (which forwards
        positional arguments only).

        Cache hits are answered from this instance's LRU; the misses go
        through the campaign engine's :func:`~repro.campaign.sched.
        batch_analyze` (warm process pool, worker-death recovery) and
        are cached on the way back.  Invalid sets come back as
        ``{"error": ...}`` entries — one bad set never fails the batch.

        Thread-safety: this method touches only the LRU (internally
        locked) and the immutable model, never the live system, so the
        server may run it off the event loop in an executor.
        """
        from ..campaign.sched import batch_analyze

        keys = [task_set_cache_key(specs, self.model) for specs in task_sets]
        out: List[Optional[Dict[str, Any]]] = [None] * len(task_sets)
        misses: List[int] = []
        for i, key in enumerate(keys):
            hit = self.cache.get(key) if key is not None else None
            if hit is not None:
                out[i] = {**hit, "cached": True}
            else:
                misses.append(i)
        if misses:
            fresh = batch_analyze([task_sets[i] for i in misses],
                                  model=self.model, workers=workers)
            for i, result in zip(misses, fresh):
                if "error" not in result and keys[i] is not None:
                    self.cache.put(keys[i], result)
                out[i] = {**result, "cached": False}
        return [r for r in out if r is not None]  # all filled by now

    # -- conversions --------------------------------------------------------

    def _to_pfair_tasks(self, specs: Sequence[TaskSpec]) -> List[PeriodicTask]:
        """Quantise specs and instantiate them at the current slot.

        Raises :class:`ServiceError` when a period is not a multiple of
        the quantum or a name is already taken (uniqueness is checked
        against live state *and* within the request).
        """
        tasks: List[PeriodicTask] = []
        seen: set = set()
        for spec in specs:
            try:
                e, p = spec.scaled_quanta(self.model.quantum)
            except ValueError as exc:
                raise ServiceError("bad-task", str(exc)) from exc
            if e > p:
                raise ServiceError(
                    "bad-task",
                    f"{spec.name or 'task'}: execution quantises to {e} "
                    f"quanta, above its period {p}")
            name = spec.name or f"task{next(self._autoname)}"
            if name in self._names or name in seen:
                raise ServiceError("duplicate-name",
                                   f"task name {name!r} already admitted")
            seen.add(name)
            tasks.append(PeriodicTask(e, p, phase=self.system.now, name=name))
        return tasks

    def _resolve(self, name: str) -> PeriodicTask:
        if not isinstance(name, str) or name not in self._names:
            raise ServiceError("unknown-task", f"no admitted task {name!r}")
        task = self.system.find_task(self._names[name])
        assert task is not None  # _names only maps admitted tasks
        return task

    # -- verbs --------------------------------------------------------------

    def admit(self, specs: Sequence[TaskSpec], *,
              dry_run: bool = False) -> Dict[str, Any]:
        """Admission decision for ``specs``, joining them unless rejected
        or ``dry_run``.

        All-or-nothing: either every task joins the live system or none
        does (snapshot/restore makes partial failure unobservable).
        """
        analysis = self.analyze(specs)
        tasks = self._to_pfair_tasks(specs)
        new_weight = weight_sum(t.weight for t in tasks)
        admitted = (self.system.committed_weight() + new_weight
                    <= self.processors)
        if admitted and not dry_run:
            snap = self.system.snapshot()
            try:
                for task in tasks:
                    if not self.system.try_join(task):
                        raise ServiceError(
                            "admission-race",
                            f"join of {task.name} failed after the set "
                            f"passed Eq. (2)")  # unreachable: serialised
            except BaseException:
                self.system.restore(snap)
                raise
            for task in tasks:
                self._names[task.name] = task.task_id
        return {
            "admitted": admitted,
            "dry_run": dry_run,
            "tasks": [t.name for t in tasks],
            "requested_weight": str(new_weight),
            "analysis": analysis,
            **self._capacity_fields(),
        }

    def leave(self, names: Sequence[str]) -> Dict[str, Any]:
        """Begin the departure of each named task (idempotent); reports
        the slot at which each task's weight is freed."""
        if not names:
            raise ServiceError("bad-request", "'names' must be non-empty")
        tasks = [self._resolve(n) for n in names]  # resolve all before any
        departures = {t.name: self.system.request_leave(t) for t in tasks}
        return {"departures": departures, **self._capacity_fields()}

    def reweight(self, name: str, execution: int, period: int, *,
                 new_name: Optional[str] = None) -> Dict[str, Any]:
        """Change ``name``'s weight (ticks): the old task leaves under the
        paper's rules and a replacement joins at its departure slot."""
        task = self._resolve(name)
        spec_name = new_name or f"{name}'"
        if spec_name in self._names:
            raise ServiceError("duplicate-name",
                               f"task name {spec_name!r} already admitted")
        try:
            spec = TaskSpec(execution, period, name=spec_name)
            e, p = spec.scaled_quanta(self.model.quantum)
        except ValueError as exc:
            raise ServiceError("bad-task", str(exc)) from exc
        departure, new_task = self.system.reweight(task, e, p, name=spec_name)
        self._names[new_task.name] = new_task.task_id
        return {"old": name, "new": new_task.name, "joins_at": departure,
                **self._capacity_fields()}

    def advance(self, slots: int) -> Dict[str, Any]:
        """Advance the live schedule by ``slots`` quanta.

        A queued reweight join can fail here if intervening admissions
        consumed the freed capacity; such failures are reported, not
        raised — the slot still elapses.
        """
        if not isinstance(slots, int) or slots < 1:
            raise ServiceError("bad-request",
                               f"'slots' must be a positive integer, "
                               f"got {slots!r}")
        from ..core.dynamic import AdmissionError

        failed_joins: List[str] = []
        for _ in range(slots):
            try:
                self.system.advance(1)
            except AdmissionError as exc:
                failed_joins.append(str(exc))
        return {"now": self.system.now, "failed_joins": failed_joins,
                "misses": self.system.sim.stats.miss_count,
                **self._capacity_fields()}

    def describe(self) -> Dict[str, Any]:
        """Current state: time, capacity, Eq. (2) status, and the tasks."""
        tasks = []
        for task in self.system.tasks():
            tasks.append({
                "name": task.name,
                "weight": str(task.weight),
                "departs_at": self.system.departure_time(task.task_id),
            })
        return {"now": self.system.now, "processors": self.processors,
                "tasks": tasks, "misses": self.system.sim.stats.miss_count,
                **self._capacity_fields()}

    # -- helpers ------------------------------------------------------------

    def _capacity_fields(self) -> Dict[str, Any]:
        committed = self.system.committed_weight()
        return {
            "committed_weight": str(committed),
            "committed_weight_float": float(committed),
            "capacity": self.processors,
            "feasible": committed <= self.processors,
            "now": self.system.now,
        }
