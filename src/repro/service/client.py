"""Clients for the admission service: synchronous and asyncio, batched.

:class:`AdmissionClient` is the blocking-socket client used by the CLI,
the examples, and anything that is not already inside an event loop.
:class:`AsyncAdmissionClient` is its asyncio twin for concurrent drivers
(the end-to-end tests run several of them against one server).

Both support **pipelining** through ``send_batch``: all request lines go
out in one write, then the matching response lines are read back in
order.  Against a local server this is the difference between being
bound by round trips and being bound by the admission analysis itself —
``benchmarks/bench_service_throughput.py`` quantifies it.

Convenience verb methods (``admit``, ``query``, ``batch_analyze``,
``leave``, ``reweight``, ``advance``, ``stats``, ``ping``, ``shutdown``)
return the decoded
response dict and raise :class:`ServiceResponseError` when the server
answered ``ok: false`` — callers that want the raw envelope use
:meth:`request`.
"""

from __future__ import annotations

import socket
import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..workload.spec import TaskSpec
from .protocol import decode_line, encode, specs_to_wire

__all__ = ["ServiceResponseError", "AdmissionClient", "AsyncAdmissionClient"]

#: Tasks may be passed as ready specs or as wire dicts.
TaskArg = Union[TaskSpec, Dict[str, Any]]


class ServiceResponseError(Exception):
    """The server answered with ``ok: false``."""

    def __init__(self, response: Dict[str, Any]) -> None:
        self.response = response
        err = response.get("error") or {}
        self.code = err.get("code", "unknown")
        super().__init__(f"{self.code}: {err.get('message', '')}")


def _wire_tasks(tasks: Sequence[TaskArg]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for t in tasks:
        if isinstance(t, TaskSpec):
            out.extend(specs_to_wire([t]))
        else:
            out.append(t)
    return out


def _check(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServiceResponseError(response)
    return response


class _VerbMixin:
    """Shared verb->payload plumbing; subclasses provide ``request``."""

    def _payload(self, verb: str, **fields: Any) -> Dict[str, Any]:
        payload = {k: v for k, v in fields.items() if v is not None}
        payload["verb"] = verb
        return payload


class AdmissionClient(_VerbMixin):
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- transport ----------------------------------------------------------

    def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw envelope."""
        return self.send_batch([self._payload(verb, **fields)])[0]

    def send_batch(self,
                   payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline ``payloads`` in one write; read all responses in order.

        Each payload is a dict with at least ``verb``; ids are assigned
        here and verified against the responses.
        """
        ids = []
        chunks = []
        for payload in payloads:
            self._next_id += 1
            ids.append(self._next_id)
            chunks.append(encode({**payload, "id": self._next_id}))
        self._file.write(b"".join(chunks))
        self._file.flush()
        responses = []
        for expect in ids:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode_line(line)
            got = response.get("id")
            if got is not None and got != expect:
                raise ConnectionError(
                    f"response out of order: expected id {expect}, "
                    f"got {got}")
            responses.append(response)
        return responses

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "AdmissionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- verbs --------------------------------------------------------------

    def admit(self, tasks: Sequence[TaskArg], *,
              dry_run: bool = False) -> Dict[str, Any]:
        """Request admission of ``tasks`` (ticks); see docs/SERVICE.md."""
        return _check(self.request("admit", tasks=_wire_tasks(tasks),
                                   dry_run=dry_run or None))

    def query(self, tasks: Optional[Sequence[TaskArg]] = None
              ) -> Dict[str, Any]:
        """Schedulability analysis of ``tasks`` (no state change), or the
        live-system description when ``tasks`` is omitted."""
        wire = _wire_tasks(tasks) if tasks else None
        return _check(self.request("query", tasks=wire))

    def batch_analyze(self, task_sets: Sequence[Sequence[TaskArg]], *,
                      workers: Optional[int] = None) -> Dict[str, Any]:
        """Analyse many independent task sets in one request.

        ``response["results"]`` aligns with ``task_sets``; each entry is
        an ``analyze`` payload or ``{"error": ...}`` for an invalid set.
        ``workers`` asks the server to fan the misses out over its
        campaign worker pool.
        """
        wire = [_wire_tasks(ts) for ts in task_sets]
        return _check(self.request("batch-analyze", task_sets=wire,
                                   workers=workers))

    def leave(self, *names: str) -> Dict[str, Any]:
        """Begin the departure of the named tasks."""
        return _check(self.request("leave", names=list(names)))

    def reweight(self, name: str, execution: int, period: int, *,
                 new_name: Optional[str] = None) -> Dict[str, Any]:
        """Change ``name``'s weight to ``execution/period`` (ticks)."""
        return _check(self.request("reweight", name=name,
                                   execution=execution, period=period,
                                   new_name=new_name))

    def advance(self, slots: int = 1) -> Dict[str, Any]:
        """Advance the live schedule by ``slots`` quanta."""
        return _check(self.request("advance", slots=slots))

    def stats(self) -> Dict[str, Any]:
        """Metrics, cache, and system snapshot."""
        return _check(self.request("stats"))

    def ping(self) -> Dict[str, Any]:
        """Liveness check; reports the protocol version."""
        return _check(self.request("ping"))

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and stop."""
        return _check(self.request("shutdown"))


class AsyncAdmissionClient(_VerbMixin):
    """Asyncio JSON-lines client; one instance per connection."""

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter") -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncAdmissionClient":
        """Open a connection and wrap it in a client."""
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw envelope."""
        return (await self.send_batch([self._payload(verb, **fields)]))[0]

    async def send_batch(self, payloads: Sequence[Dict[str, Any]]
                         ) -> List[Dict[str, Any]]:
        """Pipeline ``payloads`` in one write; await all responses."""
        ids = []
        chunks = []
        for payload in payloads:
            self._next_id += 1
            ids.append(self._next_id)
            chunks.append(encode({**payload, "id": self._next_id}))
        self._writer.write(b"".join(chunks))
        await self._writer.drain()
        responses = []
        for expect in ids:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode_line(line)
            got = response.get("id")
            if got is not None and got != expect:
                raise ConnectionError(
                    f"response out of order: expected id {expect}, "
                    f"got {got}")
            responses.append(response)
        return responses

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- verbs --------------------------------------------------------------

    async def admit(self, tasks: Sequence[TaskArg], *,
                    dry_run: bool = False) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.admit`."""
        return _check(await self.request("admit", tasks=_wire_tasks(tasks),
                                         dry_run=dry_run or None))

    async def query(self, tasks: Optional[Sequence[TaskArg]] = None
                    ) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.query`."""
        wire = _wire_tasks(tasks) if tasks else None
        return _check(await self.request("query", tasks=wire))

    async def batch_analyze(self, task_sets: Sequence[Sequence[TaskArg]], *,
                            workers: Optional[int] = None) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.batch_analyze`."""
        wire = [_wire_tasks(ts) for ts in task_sets]
        return _check(await self.request("batch-analyze", task_sets=wire,
                                         workers=workers))

    async def leave(self, *names: str) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.leave`."""
        return _check(await self.request("leave", names=list(names)))

    async def reweight(self, name: str, execution: int, period: int, *,
                       new_name: Optional[str] = None) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.reweight`."""
        return _check(await self.request("reweight", name=name,
                                         execution=execution, period=period,
                                         new_name=new_name))

    async def advance(self, slots: int = 1) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.advance`."""
        return _check(await self.request("advance", slots=slots))

    async def stats(self) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.stats`."""
        return _check(await self.request("stats"))

    async def ping(self) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.ping`."""
        return _check(await self.request("ping"))

    async def shutdown(self) -> Dict[str, Any]:
        """Async twin of :meth:`AdmissionClient.shutdown`."""
        return _check(await self.request("shutdown"))
