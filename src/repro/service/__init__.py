"""Admission control as a service: PD²/EDF-FF schedulability online.

The paper's strongest qualitative case for Pfair scheduling (Sec. 5) is
*dynamic* operation — tasks joining, leaving, and reweighting a live
system under the Srinivasan–Anderson rules implemented in
:mod:`repro.core.dynamic`.  This package turns those offline primitives
into a long-running **admission-control service**: an asyncio JSON-lines
TCP server that maintains one live PD²-scheduled system and answers
``admit`` / ``leave`` / ``reweight`` / ``query`` / ``advance`` / ``stats``
requests.

Every admission decision runs both sides of the paper's comparison: the
exact Eq. (2) feasibility test against the live system (via
:meth:`~repro.core.dynamic.DynamicPfairSystem.try_join`) and the
overhead-aware analyses of :mod:`repro.analysis.schedulability`, reporting
the minimum processor count under PD² and under EDF-FF.  Around that core
sit the production trimmings: a canonical task-set hash with an LRU result
cache (:mod:`.cache`), pipelined request batching with per-connection
backpressure (:mod:`.batching`), a metrics registry with counters and
latency histograms (:mod:`.metrics`), and graceful shutdown with
connection draining (:mod:`.server`).

See ``docs/SERVICE.md`` for the wire protocol and
``examples/admission_service_demo.py`` for an end-to-end drive.
"""

from .cache import LRUCache
from .client import (AdmissionClient, AsyncAdmissionClient,
                     ServiceResponseError)
from .metrics import LatencyHistogram, MetricsRegistry
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import AdmissionServer, ServerThread
from .state import ServiceError, ServiceState

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "LRUCache",
    "MetricsRegistry",
    "LatencyHistogram",
    "ServiceError",
    "ServiceState",
    "AdmissionServer",
    "ServerThread",
    "AdmissionClient",
    "AsyncAdmissionClient",
    "ServiceResponseError",
]
