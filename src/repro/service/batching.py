"""Per-connection request pipeline: batching and backpressure.

Each TCP connection gets one :class:`ConnectionPipeline` coupling two
coroutines through a bounded queue:

* a **reader** that frames request lines off the socket and enqueues
  them.  The queue's size is the connection's in-flight budget: when a
  client pipelines faster than the server processes, the reader blocks on
  ``put`` — it stops draining the socket, the kernel receive buffer
  fills, and TCP flow control pushes back on the sender.  Backpressure
  without a single explicit drop.
* a **worker** that takes whatever is queued — one request after an idle
  wait, up to ``max_batch`` when the client pipelined — handles each in
  arrival order, and writes all the responses in a single syscall
  followed by one ``drain``.  Batching amortises the write/drain cost
  that dominates small-request throughput (see
  ``benchmarks/bench_service_throughput.py``).

Response order always matches request order within a connection, which is
what lets clients pipeline without request ids (ids are still echoed for
belt-and-braces matching).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional

from .metrics import MetricsRegistry
from .protocol import ProtocolError, decode_line, encode, error_response

__all__ = ["ConnectionPipeline"]

_EOF = object()  # queue sentinel: connection closed or drain requested

#: A coroutine mapping one decoded request to one response dict.
Handler = Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]


class ConnectionPipeline:
    """Reads, batches, handles, and answers one connection's requests."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, handler: Handler, *,
                 max_batch: int = 64, max_pending: int = 256,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch < 1 or max_pending < 1:
            raise ValueError("max_batch and max_pending must be positive")
        self.reader = reader
        self.writer = writer
        self.handler = handler
        self.max_batch = max_batch
        self.metrics = metrics
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=max_pending)
        self._reader_task: Optional[asyncio.Task] = None
        self.done = asyncio.Event()
        self._draining = False

    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    line = await self.reader.readline()
                except (asyncio.IncompleteReadError, ConnectionError,
                        ValueError):
                    # ValueError: line exceeded the stream limit — the
                    # framing is lost, so the connection must die.
                    break
                if not line:
                    break  # EOF
                if line.strip():
                    await self._queue.put(line)
        except asyncio.CancelledError:
            pass
        finally:
            # Tell the worker no more requests are coming.  This must not
            # be lost, so wait for space if the queue is full — the worker
            # is still draining it and will make room.
            await self._queue.put(_EOF)

    async def run(self) -> None:
        """Serve the connection until EOF or :meth:`begin_drain`."""
        self._reader_task = asyncio.create_task(self._read_loop())
        try:
            eof = False
            while not eof:
                item = await self._queue.get()
                if item is _EOF:
                    break
                batch = [item]
                while len(batch) < self.max_batch:
                    try:
                        nxt = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is _EOF:
                        eof = True
                        break
                    batch.append(nxt)
                await self._serve_batch(batch)
        finally:
            self._reader_task.cancel()
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.done.set()

    async def _serve_batch(self, batch: "List[bytes]") -> None:
        responses = []
        for raw in batch:
            try:
                request = decode_line(raw)
            except ProtocolError as exc:
                responses.append(error_response(None, exc.code, exc.message))
                continue
            responses.append(await self.handler(request))
        if self.metrics is not None:
            self.metrics.counter("batches").inc(
                "pipelined" if len(batch) > 1 else "single")
            self.metrics.counter("batched_requests").inc("total", len(batch))
        try:
            self.writer.write(b"".join(encode(r) for r in responses))
            await self.writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away mid-reply; run() tears down

    def begin_drain(self) -> None:
        """Stop reading new requests; answer what is queued, then close.

        Part of graceful shutdown: the server calls this on every live
        connection and then awaits :attr:`done`.
        """
        if self._draining:
            return
        self._draining = True
        if self._reader_task is not None:
            self._reader_task.cancel()
