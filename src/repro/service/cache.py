"""The service's analysis cache — a re-export of :mod:`repro.util.lru`.

The LRU implementation moved to :mod:`repro.util.lru` so that the
schedulability layer (:mod:`repro.analysis.schedulability`) can share one
cache keyspace with the service without importing the service package.
This module remains the service-facing import path.
"""

from ..util.lru import LRUCache

__all__ = ["LRUCache"]
