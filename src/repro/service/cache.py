"""LRU result cache keyed by canonical task-set hashes.

Admission analysis is the service's hot path: a cold ``admit``/``query``
runs the Eq. (3) fixed-point inflation and a first-fit packing per
candidate processor count — milliseconds of exact rational arithmetic for
paper-sized sets.  Production traffic is heavily repetitive (the same
application profiles arrive again and again), so the service hashes each
``(task set, overhead model)`` pair into a canonical key
(:func:`repro.analysis.schedulability.task_set_cache_key` — order- and
name-insensitive) and memoises the analysis in a bounded LRU: repeated
schedulability queries are O(1) dict lookups.

The cache stores only *pure* analysis results (minimum processor counts,
inflated utilizations).  Live-system admission — Eq. (2) against the
current committed weight — is never cached: it depends on mutable state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded mapping with least-recently-used eviction and hit stats.

    Not thread-safe; the server confines it to the event loop (single
    threaded), which is the only writer.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (refreshing its recency), or
        ``None``.  ``None`` is never a legal cached value."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if value is None:
            raise ValueError("None is reserved for cache misses")
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def info(self) -> Dict[str, Any]:
        """Occupancy and hit-rate statistics for the ``stats`` verb."""
        lookups = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else None,
        }

    def __repr__(self) -> str:
        return (f"LRUCache({len(self._data)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
