"""Wire protocol: newline-delimited JSON requests and responses.

One request or response per line, UTF-8 JSON, ``\\n`` terminated — the
same framing as every JSON-lines service, chosen so the server can be
driven with ``nc`` for debugging and so clients can *pipeline*: write many
request lines in one chunk, then read the matching response lines (the
server preserves per-connection order).

A request is an object with a ``verb``, an optional client-chosen ``id``
(echoed verbatim in the response), and verb-specific fields::

    {"id": 1, "verb": "admit", "tasks": [{"execution": 250, "period": 10000,
                                          "name": "audio"}]}

A response always carries ``ok``; failures add an ``error`` object::

    {"id": 1, "ok": false, "error": {"code": "bad-request",
                                     "message": "..."}}

Task times are integer *ticks* (µs), matching :mod:`repro.workload.io` —
periods must be multiples of the server's quantum (1000 µs by default).
See ``docs/SERVICE.md`` for the full verb reference.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..workload.io import task_set_from_dict
from ..workload.spec import TaskSpec

__all__ = [
    "PROTOCOL_VERSION",
    "VERBS",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode",
    "decode_line",
    "parse_request",
    "parse_specs",
    "parse_spec_sets",
    "MAX_BATCH_SETS",
    "specs_to_wire",
    "ok_response",
    "error_response",
]

#: Bumped on incompatible wire changes; reported by ``ping``.
PROTOCOL_VERSION = 1

#: Every verb the server understands.
VERBS = ("admit", "leave", "reweight", "query", "batch-analyze", "advance",
         "stats", "ping", "shutdown")

#: Upper bound on task sets per ``batch-analyze`` request — keeps one
#: request from monopolising the shared worker pool.
MAX_BATCH_SETS = 1024

#: Upper bound on one request line (also the asyncio stream limit).  A
#: 1000-task admit is ~100 KB; 4 MB leaves two orders of magnitude slack.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed request; ``code`` becomes the wire error code."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")


def encode(obj: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON + newline).

    Canonical on purpose (sorted keys, pinned separators): the distrib
    layer byte-compares and checkpoints what crosses this wire, so two
    encoders building the same message from different insertion orders
    must frame identical bytes.
    """
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`ProtocolError` on junk."""
    try:
        obj = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", f"undecodable request line: {exc}") \
            from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    return obj


def parse_request(obj: Dict[str, Any],
                  verbs: Sequence[str] = VERBS) -> Tuple[Any, str]:
    """Validate the envelope; returns ``(id, verb)``.

    The ``id`` is optional and opaque (any JSON value); the verb must be
    one of ``verbs`` — the admission vocabulary :data:`VERBS` by default,
    or another service's (the distributed worker nodes reuse this framing
    with their own verb set).
    """
    verb = obj.get("verb")
    rid = obj.get("id")
    if not isinstance(verb, str):
        raise ProtocolError("bad-request", "missing string 'verb'")
    if verb not in verbs:
        raise ProtocolError(
            "unknown-verb", f"unknown verb {verb!r}; expected one of "
            f"{', '.join(verbs)}")
    return rid, verb


def parse_specs(obj: Dict[str, Any], field: str = "tasks") -> List[TaskSpec]:
    """Extract a task list (ticks) from a request, reusing the documented
    task-set JSON schema of :mod:`repro.workload.io`."""
    tasks = obj.get(field)
    if not isinstance(tasks, list) or not tasks:
        raise ProtocolError("bad-request",
                            f"'{field}' must be a non-empty list of tasks")
    try:
        return task_set_from_dict({"tasks": tasks})
    except ValueError as exc:
        raise ProtocolError("bad-request", str(exc)) from exc


def parse_spec_sets(obj: Dict[str, Any], field: str = "task_sets"
                    ) -> List[List[TaskSpec]]:
    """Extract a list of task *sets* (``batch-analyze``): each element is
    one task list in the same schema :func:`parse_specs` accepts."""
    sets = obj.get(field)
    if not isinstance(sets, list) or not sets:
        raise ProtocolError(
            "bad-request",
            f"'{field}' must be a non-empty list of task lists")
    if len(sets) > MAX_BATCH_SETS:
        raise ProtocolError(
            "bad-request",
            f"'{field}' holds {len(sets)} sets, above the per-request "
            f"limit of {MAX_BATCH_SETS}")
    out: List[List[TaskSpec]] = []
    for i, tasks in enumerate(sets):
        if not isinstance(tasks, list) or not tasks:
            raise ProtocolError(
                "bad-request",
                f"'{field}[{i}]' must be a non-empty list of tasks")
        try:
            out.append(task_set_from_dict({"tasks": tasks}))
        except ValueError as exc:
            raise ProtocolError("bad-request",
                                f"'{field}[{i}]': {exc}") from exc
    return out


def specs_to_wire(specs: Sequence[TaskSpec]) -> List[Dict[str, Any]]:
    """Serialise specs into the request-side task list."""
    return [
        {"name": s.name, "execution": s.execution, "period": s.period,
         "cache_delay": s.cache_delay, "deadline": s.deadline}
        for s in specs
    ]


def ok_response(rid: Any, **fields: Any) -> Dict[str, Any]:
    """A success response echoing the request ``id``."""
    resp: Dict[str, Any] = {"id": rid, "ok": True}
    resp.update(fields)
    return resp


def error_response(rid: Any, code: str,
                   message: Optional[str] = None) -> Dict[str, Any]:
    """A failure response with a machine-readable ``code``."""
    return {"id": rid, "ok": False,
            "error": {"code": code, "message": message or code}}
