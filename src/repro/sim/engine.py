"""Compatibility shim — the deterministic event queue lives in
:mod:`repro.core.events`.

This module keeps the historical ``repro.sim.engine`` import path working.
"""

from __future__ import annotations

from ..core.events import EventQueue

__all__ = ["EventQueue"]
