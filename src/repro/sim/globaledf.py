"""Global (non-partitioned) EDF/RM on M processors — the Dhall-effect baseline.

The paper motivates both partitioning and Pfair by Dhall & Liu's classic
negative result: *global* scheduling with EDF or RM priorities can miss
deadlines at arbitrarily low total utilization.  The canonical instance is
``M`` light tasks (e = 2ε, p = 1) plus one heavy task (e = 1, p = 1 + ε):
every light job and the heavy job release together; the light jobs occupy
all M processors first (earlier deadlines / shorter periods), and the heavy
job then cannot finish by its deadline even though total utilization tends
to 1 as ε → 0.

This simulator is event-driven like :mod:`repro.sim.uniproc` but keeps the
``M`` highest-priority ready jobs running; it exists to demonstrate that
baseline, and to contrast it with PD² (which schedules the same sets with
no misses whenever total utilization is at most M).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .engine import EventQueue
from .uniproc import UniJob, UniTask

__all__ = ["GlobalResult", "GlobalSimulator", "simulate_global", "dhall_task_set"]


@dataclass
class GlobalResult:
    """Outcome of one global EDF/RM run."""

    horizon: int
    processors: int
    policy: str
    completed: int = 0
    preemptions: int = 0
    migrations: int = 0
    misses: List[Tuple[str, int, int, Optional[int]]] = field(default_factory=list)

    @property
    def miss_count(self) -> int:
        return len(self.misses)


class GlobalSimulator:
    """Global preemptive EDF or RM on ``processors`` identical CPUs.

    At every event (release or completion) the ``M`` highest-priority ready
    jobs run; processor assignment preserves affinity so migration counts
    are meaningful.  Priorities: EDF = absolute deadline, RM = period.
    """

    def __init__(self, tasks: Iterable[UniTask], processors: int, *,
                 policy: str = "edf") -> None:
        policy = policy.lower()
        if policy not in ("edf", "rm"):
            raise ValueError(f"unknown policy {policy!r}")
        if processors < 1:
            raise ValueError("need at least one processor")
        self.tasks = list(tasks)
        self.processors = processors
        self.policy = policy

    def _key(self, job: UniJob) -> Tuple[int, int, int]:
        if self.policy == "edf":
            return (job.abs_deadline, job.task.task_id, job.index)
        return (job.task.period, job.task.task_id, job.index)

    def run(self, horizon: int) -> GlobalResult:
        res = GlobalResult(horizon=horizon, processors=self.processors,
                           policy=self.policy)
        events: EventQueue = EventQueue()
        for task in self.tasks:
            r = task.release_time(1)
            if r is not None and r < horizon:
                events.push(r, (task, 1))
        ready: List[UniJob] = []
        running: List[UniJob] = []
        last_proc: Dict[Tuple[int, int], int] = {}  # (task_id, job idx) -> proc
        proc_of: Dict[Tuple[int, int], int] = {}
        now = 0

        while True:
            next_event = events.peek_time()
            completion = min((now + j.remaining for j in running), default=None)
            candidates = [c for c in (next_event, completion) if c is not None]
            if not candidates:
                break
            nxt = min(candidates)
            clipped = min(nxt, horizon)
            dt = clipped - now
            for j in running:
                j.remaining -= dt
            now = clipped
            if nxt >= horizon:
                break
            # Completions.
            still: List[UniJob] = []
            for j in running:
                if j.remaining == 0:
                    res.completed += 1
                    if now > j.abs_deadline:
                        res.misses.append((j.task.name, j.index, j.abs_deadline, now))
                    proc_of.pop((j.task.task_id, j.index), None)
                else:
                    still.append(j)
            running = still
            # Releases.
            for task, index in events.pop_at(now):
                ready.append(UniJob(task, index, now, task.exec_time(index)))
                nxt_rel = task.release_time(index + 1)
                if nxt_rel is not None and nxt_rel < horizon:
                    events.push(nxt_rel, (task, index + 1))
            # Select the M best among ready + running.
            pool = ready + running
            pool.sort(key=self._key)
            new_running = pool[: self.processors]
            new_ids = {(j.task.task_id, j.index) for j in new_running}
            for j in running:
                jid = (j.task.task_id, j.index)
                if jid not in new_ids:
                    res.preemptions += 1
                    last_proc[jid] = proc_of.pop(jid)
            ready = pool[self.processors:]
            # Processor assignment with affinity.
            taken = set(proc_of.values())
            for j in new_running:
                jid = (j.task.task_id, j.index)
                if jid in proc_of:
                    continue
                prefer = last_proc.get(jid)
                if prefer is not None and prefer not in taken:
                    proc = prefer
                else:
                    proc = next(p for p in range(self.processors) if p not in taken)
                    if prefer is not None and prefer != proc:
                        res.migrations += 1
                proc_of[jid] = proc
                taken.add(proc)
            running = new_running

        for j in ready + running:
            if j.abs_deadline <= horizon and j.remaining > 0:
                res.misses.append((j.task.name, j.index, j.abs_deadline, None))
        return res


def simulate_global(tasks: Iterable[UniTask], processors: int, horizon: int,
                    *, policy: str = "edf") -> GlobalResult:
    """One-call convenience wrapper over :class:`GlobalSimulator`."""
    return GlobalSimulator(tasks, processors, policy=policy).run(horizon)


def dhall_task_set(processors: int, scale: int = 1000,
                   epsilon_inverse: int = 10) -> List[UniTask]:
    """Dhall & Liu's pathological set on an integer grid.

    ``M`` light tasks with e = 2·(scale // epsilon_inverse), p = scale, and
    one heavy task with e = scale, p = scale + scale // epsilon_inverse.
    Larger ``epsilon_inverse`` drives total utilization toward 1 while
    global EDF/RM still misses the heavy task's first deadline.
    """
    eps = scale // epsilon_inverse
    if eps < 1:
        raise ValueError("epsilon too small for the integer grid; raise scale")
    light = [UniTask(2 * eps, scale, name=f"light{i}") for i in range(processors)]
    heavy = UniTask(scale, scale + eps, name="heavy")
    return light + [heavy]
