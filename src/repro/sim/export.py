"""Trace and result export: CSV and JSON for external analysis tools.

Schedule traces, per-task statistics, and miss lists serialise to plain
dict/list structures (JSON-ready) or CSV text, so runs can be inspected in
a spreadsheet or fed to a plotting pipeline without importing this
library.  Only data that is meaningful outside the process is exported —
task references become names, weights become ``"e/p"`` strings.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from .quantum import SimResult
from .trace import ScheduleTrace

__all__ = [
    "trace_to_rows",
    "trace_to_csv",
    "result_to_dict",
    "result_to_json",
]


def trace_to_rows(trace: ScheduleTrace) -> List[Dict[str, Any]]:
    """Flatten a trace to ``{slot, processor, task, subtask}`` dicts in
    slot order."""
    return [
        {"slot": a.slot, "processor": a.processor, "task": a.task.name,
         "subtask": a.subtask_index}
        for a in trace.allocations()
    ]


def trace_to_csv(trace: ScheduleTrace) -> str:
    """CSV text with a header row (``slot,processor,task,subtask``)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=["slot", "processor", "task",
                                             "subtask"])
    writer.writeheader()
    for row in trace_to_rows(trace):
        writer.writerow(row)
    return buf.getvalue()


def result_to_dict(result: SimResult) -> Dict[str, Any]:
    """A JSON-ready summary of a simulation run.

    Includes the experiment frame (horizon, processors, policy), per-task
    counters, and the full miss list; the trace itself is included as rows
    only when the run recorded one.
    """
    tasks = []
    for task in result.tasks:
        stats = result.stats.per_task.get(task.task_id)
        tasks.append({
            "name": task.name,
            "weight": str(task.weight),
            "execution": task.execution,
            "period": task.period,
            "quanta": stats.quanta if stats else 0,
            "preemptions": stats.preemptions if stats else 0,
            "migrations": stats.migrations if stats else 0,
        })
    misses = [
        {"task": m.task.name, "subtask": m.subtask_index,
         "deadline": m.deadline, "completed_at": m.completed_at}
        for m in result.stats.misses
    ]
    out: Dict[str, Any] = {
        "horizon": result.horizon,
        "processors": result.processors,
        "policy": result.policy_name,
        "busy_quanta": result.stats.busy_quanta,
        "idle_quanta": result.stats.idle_quanta,
        "tasks": tasks,
        "misses": misses,
    }
    if result.trace is not None:
        out["trace"] = trace_to_rows(result.trace)
    return out


def result_to_json(result: SimResult, **dumps_kwargs: object) -> str:
    """JSON text of :func:`result_to_dict`."""
    return json.dumps(result_to_dict(result), **dumps_kwargs)
