"""Front end of the slot-synchronous engine.

The engine itself — :class:`~repro.core.quantum.QuantumSimulator` — lives
in :mod:`repro.core.quantum`: it *is* the decision procedure the paper's
argument rests on (PD² is defined by what the engine does each slot), so
the layering pass (rule R003) homes it in ``core`` beneath the
campaign-level simulators.  What belongs at the ``sim`` layer is the
dispatch between decision-identical implementations: ``simulate_pfair``
picks the packed-key fast path (:mod:`repro.sim.fastpath`) when it
supports the configuration and the reference engine otherwise.  The
historical ``repro.sim.quantum`` import path keeps working for both.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.priority import PriorityPolicy
from ..core.quantum import DeadlineMissError, QuantumSimulator, SimResult
from ..core.task import PfairTask

__all__ = ["QuantumSimulator", "SimResult", "DeadlineMissError", "simulate_pfair"]


def simulate_pfair(
    tasks: Iterable[PfairTask],
    processors: int,
    horizon: int,
    policy: Optional[PriorityPolicy] = None,
    *,
    fastpath: Optional[bool] = None,
    **kwargs: object,
) -> SimResult:
    """One-call convenience wrapper: build a simulator and run it.

    ``fastpath=None`` (the default) dispatches to the packed-key
    :class:`~repro.sim.fastpath.FastPD2Simulator` whenever it supports
    the configuration (periodic tasks, PD² priorities, no arrivals) and
    the process-wide toggle (:mod:`repro.util.toggles`) is on; the fast
    path is decision-identical to :class:`QuantumSimulator`.  Pass
    ``fastpath=False`` (or run with ``--no-fastpath`` /
    ``REPRO_NO_FASTPATH=1``) to force the reference simulator,
    ``fastpath=True`` to require the fast path (raises if unsupported).
    """
    task_list = list(tasks)
    if fastpath is None:
        from ..util.toggles import fastpath_enabled

        fastpath = fastpath_enabled()
        explicit = False
    else:
        explicit = fastpath
    if fastpath:
        from .fastpath import FastPD2Simulator, supports

        if supports(task_list, processors, horizon, policy, kwargs):
            return FastPD2Simulator(task_list, processors, policy,
                                    **kwargs).run(horizon)
        if explicit:
            raise ValueError(
                "fastpath=True but the configuration is not supported by "
                "the fast path (see repro.sim.fastpath.supports)"
            )
    sim = QuantumSimulator(task_list, processors, policy, **kwargs)
    return sim.run(horizon)
