"""Front end of the slot-synchronous engine.

The engine itself — :class:`~repro.core.quantum.QuantumSimulator` — lives
in :mod:`repro.core.quantum`: it *is* the decision procedure the paper's
argument rests on (PD² is defined by what the engine does each slot), so
the layering pass (rule R003) homes it in ``core`` beneath the
campaign-level simulators.  What belongs at the ``sim`` layer is the
dispatch between decision-identical implementations: ``simulate_pfair``
picks the packed-key fast path (:mod:`repro.sim.fastpath`) when it
supports the configuration and the reference engine otherwise.  The
historical ``repro.sim.quantum`` import path keeps working for both.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.priority import PriorityPolicy
from ..core.quantum import DeadlineMissError, QuantumSimulator, SimResult
from ..core.task import PfairTask

__all__ = ["QuantumSimulator", "SimResult", "DeadlineMissError", "simulate_pfair"]


def simulate_pfair(
    tasks: Iterable[PfairTask],
    processors: int,
    horizon: int,
    policy: Optional[PriorityPolicy] = None,
    *,
    vector: Optional[bool] = None,
    fastpath: Optional[bool] = None,
    **kwargs: object,
) -> SimResult:
    """One-call convenience wrapper: build a simulator and run it.

    Dispatches down the decision-identical kernel chain **vector →
    fastpath → reference**: the struct-of-arrays
    :class:`~repro.sim.vector.VectorPD2Simulator` when it supports the
    configuration, else the packed-key
    :class:`~repro.sim.fastpath.FastPD2Simulator`, else the reference
    :class:`QuantumSimulator`.  Each tier has an independent toggle
    (:mod:`repro.util.toggles`): ``vector=False`` / ``--no-vector`` /
    ``REPRO_NO_VECTOR=1`` skips the vector kernel, ``fastpath=False`` /
    ``--no-fastpath`` / ``REPRO_NO_FASTPATH=1`` forces the reference
    (it disables the vector tier too — both accelerated kernels are
    "the fast path" from the caller's point of view).  Passing
    ``vector=True`` or ``fastpath=True`` *requires* that tier and raises
    if the configuration is unsupported.
    """
    task_list = list(tasks)
    if fastpath is None:
        from ..util.toggles import fastpath_enabled

        fastpath = fastpath_enabled()
        explicit = False
    else:
        explicit = fastpath
    if vector is None:
        from ..util.toggles import vector_enabled

        vector = fastpath and vector_enabled()
        explicit_vector = False
    else:
        explicit_vector = vector
    if vector:
        from .vector import VectorPD2Simulator
        from .vector import supports as vector_supports

        if vector_supports(task_list, processors, horizon, policy, kwargs):
            return VectorPD2Simulator(task_list, processors, policy,
                                      **kwargs).run(horizon)
        if explicit_vector:
            raise ValueError(
                "vector=True but the configuration is not supported by "
                "the vector kernel (see repro.sim.vector.supports)"
            )
    if fastpath:
        from .fastpath import FastPD2Simulator, supports

        if supports(task_list, processors, horizon, policy, kwargs):
            return FastPD2Simulator(task_list, processors, policy,
                                    **kwargs).run(horizon)
        if explicit:
            raise ValueError(
                "fastpath=True but the configuration is not supported by "
                "the fast path (see repro.sim.fastpath.supports)"
            )
    sim = QuantumSimulator(task_list, processors, policy, **kwargs)
    return sim.run(horizon)
