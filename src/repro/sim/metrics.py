"""Compatibility shim — schedule statistics live in
:mod:`repro.core.metrics` (they are part of the engine's result type).

This module keeps the historical ``repro.sim.metrics`` import path
working.
"""

from __future__ import annotations

from ..core.metrics import DeadlineMiss, SimStats, TaskStats, job_response_times

__all__ = ["TaskStats", "SimStats", "DeadlineMiss", "job_response_times"]
