"""Partitioned multiprocessor simulation: one uniprocessor EDF/RM per bin.

Under partitioning each processor schedules its own task subset from a
local queue, completely independently — which is why the paper notes that
partitioned scheduling overhead does not grow with the processor count.
This façade runs one :class:`~repro.sim.uniproc.UniprocSimulator` per
processor bin of a packing and aggregates the results; it also provides
the Sec. 5.4 fault-tolerance experiment — killing a processor and trying
to re-home its tasks by first fit into the survivors' spare capacity,
which can fail even when total utilization is below ``M − 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..partition.accept import AcceptanceTest, EDFUtilizationTest
from ..partition.bins import Partition
from ..workload.spec import TaskSpec
from .uniproc import UniprocResult, UniprocSimulator, UniTask

__all__ = ["PartitionedResult", "PartitionedSimulator", "reassign_after_failure"]


@dataclass
class PartitionedResult:
    """Aggregated outcome of per-processor runs."""

    per_processor: List[UniprocResult] = field(default_factory=list)

    @property
    def miss_count(self) -> int:
        return sum(r.miss_count for r in self.per_processor)

    @property
    def preemptions(self) -> int:
        return sum(r.preemptions for r in self.per_processor)

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.per_processor)

    def misses(self) -> List[Tuple[str, int, int, Optional[int]]]:
        out = []
        for r in self.per_processor:
            out.extend(r.misses)
        return out


class PartitionedSimulator:
    """Simulate a packed partition, each bin under its own uniprocessor
    scheduler (``edf`` or ``rm``)."""

    def __init__(self, partition: Partition, *, policy: str = "edf") -> None:
        self.partition = partition
        self.policy = policy

    def run(self, horizon: int) -> PartitionedResult:
        result = PartitionedResult()
        for b in self.partition.bins:
            tasks = [UniTask(t.execution, t.period, name=t.name or None)
                     for t in b.tasks]
            sim = UniprocSimulator(tasks, policy=self.policy)
            result.per_processor.append(sim.run(horizon))
        return result


def reassign_after_failure(partition: Partition, failed: int, *,
                           accept: Optional[AcceptanceTest] = None
                           ) -> Tuple[bool, List[TaskSpec]]:
    """Try to re-home the failed processor's tasks into the survivors.

    First fit over the surviving bins with the given acceptance test
    (default: exact EDF).  Returns ``(fully_reassigned, orphans)`` — tasks
    in ``orphans`` could not be placed anywhere, i.e. the partitioned
    system cannot transparently tolerate this failure (contrast with Pfair,
    which tolerates the loss of K processors whenever total weight is at
    most M − K).  The partition is mutated with the successful moves.
    """
    if accept is None:
        accept = EDFUtilizationTest()
    if not 0 <= failed < partition.processors:
        raise IndexError(f"no processor {failed}")
    victim = partition.bins[failed]
    survivors = [b for b in partition.bins if b.index != failed]
    orphans: List[TaskSpec] = []
    # Largest first improves the odds, like any repacking.
    for spec in sorted(victim.tasks, key=lambda s: -s.utilization):
        placed = False
        for b in survivors:
            u = accept.admit(b, spec)
            if u is not None:
                b.add(spec, u)
                placed = True
                break
        if not placed:
            orphans.append(spec)
    victim.tasks.clear()
    from fractions import Fraction
    victim.load = Fraction(0)
    victim.max_cache_delay = 0
    victim.min_period = None
    return (not orphans), orphans
