"""Packed-key PD² fast path: a decision-identical QuantumSimulator clone.

:class:`FastPD2Simulator` produces, slot for slot, the same schedule —
the same ``(slot, processor, task)`` allocations and the same
:class:`~repro.sim.metrics.SimStats` — as
:class:`~repro.sim.quantum.QuantumSimulator` under
:class:`~repro.core.priority.PD2Priority`, for synchronous/asynchronous
periodic task systems.  It gets there by removing every source of
per-slot object churn:

* the ready queue is a heap of **plain integers** — the packed PD² keys
  of :mod:`repro.core.keytab` — so pushes and pops cost one machine
  integer comparison per heap level instead of tuple-element walks;
* subtask windows are **never materialised**: each task carries a
  :class:`~repro.core.keytab.TaskKeyTable`, and activating the successor
  of subtask ``i`` is two integer additions (key and release are linear
  in the job number);
* **idle slots are skipped**: when the ready queue is empty the clock
  jumps straight to the next pending eligibility time, charging
  ``M × skipped`` idle quanta — exactly what the reference accumulates
  one slot at a time (an empty slot changes no other state);
* whole **hyperperiods are memoised** (:mod:`repro.sim.cache`): once the
  boundary state at ``t = kH`` repeats, the per-cycle stats delta is
  tiled across the remaining horizon instead of re-simulated.

The equivalence argument is split between the packed-key order proof
(:mod:`repro.core.keytab`) and the differential test suite
(``tests/test_fastpath_differential.py``), which checks hundreds of
randomized task systems for identical schedules and stats.  End-of-run
unscheduled misses (an overloaded system) are reported in the canonical
priority-key order all three simulator tiers share; misses recorded
during the run (late completions) follow the schedule order.

Use :func:`repro.sim.quantum.simulate_pfair`, which dispatches here
automatically when :func:`supports` says the configuration qualifies and
the fast path is enabled (see :mod:`repro.util.toggles`).  The
struct-of-arrays kernel (:mod:`repro.sim.vector`) sits one tier above
and takes precedence when it supports the configuration.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import lcm
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.keytab import (
    GD_BITS,
    ID_BITS,
    IDX_BITS,
    TaskKeyTable,
    check_capacity,
    task_key_table,
    unpack_key,
)
from ..core.priority import PD2Priority, PriorityPolicy
from ..core.task import PeriodicTask, PfairTask
from .metrics import DeadlineMiss, SimStats, TaskStats
from .quantum import DeadlineMissError, SimResult
from .trace import ScheduleTrace

__all__ = ["FastPD2Simulator", "supports"]

_ID_SHIFT = IDX_BITS
_ID_MASK = (1 << ID_BITS) - 1
_IDX_MASK = (1 << IDX_BITS) - 1
_D_SHIFT = 1 + GD_BITS + ID_BITS + IDX_BITS


def supports(
    tasks: List[PfairTask],
    processors: int,
    horizon: int,
    policy: Optional[PriorityPolicy],
    kwargs: dict,
) -> bool:
    """True when the fast path reproduces the reference exactly.

    The fast path covers the workhorse configuration of every experiment
    in the paper: periodic tasks (any phases), PD² priorities, fixed
    processor count, no online arrivals.  Everything else — sporadic/IS
    tasks, arrival callbacks, processor failures, other policies, tasks
    that leave (``last_subtask``) — falls back to the reference
    simulator, as do systems that would overflow a packed-key field.
    """
    if policy is not None and type(policy) is not PD2Priority:
        return False
    if kwargs.get("arrivals") is not None:
        return False
    if kwargs.get("capacity_fn") is not None:
        return False
    if processors < 1:
        return False
    for t in tasks:
        if type(t) is not PeriodicTask or t.last_subtask is not None:
            return False
    return check_capacity(tasks, horizon)


class _TaskInfo:
    """Hot-loop record for one task: key table plus scheduling flags."""

    __slots__ = ("task", "tab", "execution", "er")

    def __init__(self, task: PfairTask, tab: TaskKeyTable) -> None:
        self.task = task
        self.tab = tab
        self.execution = task.execution
        self.er = task.early_release


class FastPD2Simulator:
    """Packed-key drop-in for :class:`~repro.sim.quantum.QuantumSimulator`.

    Accepts the same constructor surface (the unsupported hooks must be
    ``None``/absent — :func:`supports` gates dispatch) and produces an
    identical :class:`~repro.sim.quantum.SimResult`.
    """

    def __init__(
        self,
        tasks: Iterable[PfairTask],
        processors: int,
        policy: Optional[PriorityPolicy] = None,
        *,
        early_release: bool = False,
        trace: bool = False,
        on_miss: str = "record",
        arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
        capacity_fn: Optional[Callable[[int], int]] = None,
        preserve_affinity: bool = True,
        hyperperiod_memo: bool = True,
    ) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        if on_miss not in ("record", "raise"):
            raise ValueError(f"on_miss must be 'record' or 'raise', got {on_miss!r}")
        if arrivals is not None or capacity_fn is not None:
            raise ValueError("fast path does not support arrivals/capacity_fn")
        self.tasks: List[PfairTask] = list(tasks)
        self.processors = processors
        self.policy = policy if policy is not None else PD2Priority()
        self.early_release = early_release
        self.on_miss = on_miss
        self.preserve_affinity = preserve_affinity
        self.hyperperiod_memo = hyperperiod_memo
        self.trace: Optional[ScheduleTrace] = ScheduleTrace() if trace else None
        self.stats = SimStats()
        self.last_scheduled_index: Dict[int, int] = {}
        self._info: Dict[int, _TaskInfo] = {}
        # (eligible, key): subtasks waiting to become eligible.  At most
        # one live subtask per task exists (successors activate only when
        # their predecessor is scheduled), so keys never collide and the
        # tuple order is total without a sequence number.
        self._pending: List[Tuple[int, int]] = []
        # Plain packed keys: the eligible subtasks, best (smallest) first.
        self._ready: List[int] = []
        for task in self.tasks:
            info = _TaskInfo(task, task_key_table(task))
            self._info[task.task_id] = info
            heappush(self._pending, (info.tab.release(1), info.tab.key(1)))

    # -- internals -----------------------------------------------------------

    def _record_miss(self, task: PfairTask, index: int, deadline: int,
                     completed_at: Optional[int]) -> None:
        miss = DeadlineMiss(task, index, deadline, completed_at)
        self.stats.misses.append(miss)
        if self.on_miss == "raise":
            raise DeadlineMissError(miss)

    # -- main loop -----------------------------------------------------------

    def run(self, horizon: int) -> SimResult:
        """Simulate slots ``0 .. horizon-1`` and return the result."""
        if horizon < 0:
            raise ValueError("horizon must be nonnegative")

        memo = None
        if (self.hyperperiod_memo and self.trace is None and self.tasks
                and all(t.phase == 0 for t in self.tasks)):
            period_lcm = lcm(*(t.period for t in self.tasks))
            # A cycle can only be detected and tiled when the horizon
            # spans several hyperperiods.
            if 2 * period_lcm < horizon:
                from .cache import HyperperiodMemo

                memo = HyperperiodMemo(self, period_lcm)

        pending = self._pending
        ready = self._ready
        capacity = self.processors
        stats = self.stats
        per_task = stats.per_task
        info_of = self._info
        last_sched = self.last_scheduled_index
        trace = self.trace
        affinity = self.preserve_affinity
        er_global = self.early_release

        now = 0
        while now < horizon:
            if memo is not None and now >= memo.next_boundary:
                now = memo.on_boundary(now, horizon)
                if memo.done:
                    memo = None
                if now >= horizon:
                    break
            while pending and pending[0][0] <= now:
                heappush(ready, heappop(pending)[1])
            if not ready:
                # Idle-slot skip: nothing can run before the next pending
                # eligibility.  The reference burns these slots one at a
                # time, accumulating only idle quanta; jump instead.
                nxt = pending[0][0] if pending else horizon
                if nxt > horizon:
                    nxt = horizon
                if memo is not None and nxt > memo.next_boundary:
                    nxt = memo.next_boundary
                stats.idle_quanta += capacity * (nxt - now)
                now = nxt
                continue

            scheduled: List[int] = []
            while ready and len(scheduled) < capacity:
                scheduled.append(heappop(ready))

            # Processor assignment, mirroring QuantumSimulator exactly.
            placed: List[Tuple[int, int]]  # (processor, key)
            if not affinity:
                placed = list(zip(range(capacity), scheduled))
            else:
                taken = [False] * capacity
                assignment: List[Tuple[Optional[int], int]] = []
                for key in scheduled:
                    ts = per_task.get((key >> _ID_SHIFT) & _ID_MASK)
                    proc: Optional[int] = None
                    if (ts is not None and ts.last_slot == now - 1
                            and ts.last_proc is not None
                            and ts.last_proc < capacity
                            and not taken[ts.last_proc]):
                        proc = ts.last_proc
                        taken[proc] = True
                    assignment.append((proc, key))
                free = [p for p in range(capacity) if not taken[p]]
                free.reverse()  # pop() yields the lowest-numbered processor
                placed = []
                for proc, key in assignment:
                    if proc is None:
                        ts = per_task.get((key >> _ID_SHIFT) & _ID_MASK)
                        if (ts is not None and ts.last_proc is not None
                                and ts.last_proc < capacity
                                and not taken[ts.last_proc]):
                            proc = ts.last_proc
                            taken[proc] = True
                            free.remove(proc)
                        else:
                            proc = free.pop()
                            taken[proc] = True
                    placed.append((proc, key))

            nxt_slot = now + 1
            for proc, key in placed:
                tid = (key >> _ID_SHIFT) & _ID_MASK
                idx = key & _IDX_MASK
                info = info_of[tid]
                e = info.execution
                if now >= key >> _D_SHIFT:
                    self._record_miss(info.task, idx, key >> _D_SHIFT, nxt_slot)
                q, j = divmod(idx - 1, e)
                job = q + 1
                ts = per_task.get(tid)
                if ts is None:
                    ts = per_task[tid] = TaskStats()
                # Inlined TaskStats.on_scheduled.
                if ts.last_slot is not None:
                    if now != ts.last_slot + 1 and job == ts.last_job:
                        ts.preemptions += 1
                        ts.job_preemptions[job] = ts.job_preemptions.get(job, 0) + 1
                    if ts.last_proc is not None and proc != ts.last_proc:
                        ts.migrations += 1
                ts.quanta += 1
                ts.last_slot = now
                ts.last_proc = proc
                ts.last_job = job
                last_sched[tid] = idx
                if trace is not None:
                    trace.record(now, proc, info.task, idx)
                # Activate the successor: key(idx+1) = key(idx) + step for
                # mid-job successors, else next base row.
                tab = info.tab
                if j + 1 < e:
                    succ_key = tab.base[j + 1] + q * tab.job_step
                    succ_rel = tab.rel[j + 1] + q * info.task.period
                    if er_global or info.er:
                        elig = nxt_slot  # ERfair: ready as soon as we finish
                    else:
                        elig = succ_rel if succ_rel > nxt_slot else nxt_slot
                else:
                    succ_rel = tab.rel[0] + (q + 1) * info.task.period
                    succ_key = tab.base[0] + (q + 1) * tab.job_step
                    elig = succ_rel if succ_rel > nxt_slot else nxt_slot
                heappush(pending, (elig, succ_key))
            stats.busy_quanta += len(placed)
            stats.idle_quanta += capacity - len(placed)
            now = nxt_slot
        return self.finalize(horizon)

    def finalize(self, horizon: int) -> SimResult:
        """Sweep unfinished subtasks for misses and package the result."""
        self.stats.slots = horizon
        # Canonical end-of-run miss order (shared by all simulator tiers):
        # priority-key order over every unfinished subtask.  Packed-key
        # order is exactly PD² tuple order, so one sort suffices.
        leftovers = sorted([key for _, key in self._pending] + self._ready)
        for key in leftovers:
            deadline, tid, idx = unpack_key(key)
            if deadline <= horizon:
                self._record_miss(self._info[tid].task, idx, deadline, None)
        return SimResult(
            stats=self.stats,
            trace=self.trace,
            horizon=horizon,
            processors=self.processors,
            policy_name=self.policy.name,
            tasks=self.tasks,
        )
