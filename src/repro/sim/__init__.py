"""Simulation substrate: quantum-driven multiprocessor and event-driven
uniprocessor simulators, traces, metrics, and schedule validators."""

from .cache import CacheModel, ColdResumptions, count_cold_resumptions
from .export import result_to_dict, result_to_json, trace_to_csv, trace_to_rows
from .metrics import DeadlineMiss, SimStats, TaskStats, job_response_times
from .servers import TotalBandwidthServer
from .staggered import StaggeredResult, StaggeredSimulator, simulate_staggered
from .varquantum import (
    VariableQuantumResult,
    VariableQuantumSimulator,
    simulate_variable_quantum,
)
from .quantum import DeadlineMissError, QuantumSimulator, SimResult, simulate_pfair
from .trace import Allocation, ScheduleTrace, render_schedule, render_windows
from .vector import VectorPD2Simulator
from .validate import (
    ValidationError,
    check_erfair_lags,
    check_pfair_lags,
    check_sequential,
    check_structure,
    check_windows,
    lag_series,
    validate_schedule,
)

__all__ = [
    "CacheModel",
    "ColdResumptions",
    "count_cold_resumptions",
    "DeadlineMiss",
    "SimStats",
    "TaskStats",
    "job_response_times",
    "result_to_dict",
    "result_to_json",
    "trace_to_csv",
    "trace_to_rows",
    "TotalBandwidthServer",
    "StaggeredResult",
    "StaggeredSimulator",
    "simulate_staggered",
    "VariableQuantumResult",
    "VariableQuantumSimulator",
    "simulate_variable_quantum",
    "DeadlineMissError",
    "QuantumSimulator",
    "SimResult",
    "VectorPD2Simulator",
    "simulate_pfair",
    "Allocation",
    "ScheduleTrace",
    "render_schedule",
    "render_windows",
    "ValidationError",
    "check_structure",
    "check_sequential",
    "check_windows",
    "check_pfair_lags",
    "check_erfair_lags",
    "lag_series",
    "validate_schedule",
]
