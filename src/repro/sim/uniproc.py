"""Compatibility shim — the event-driven uniprocessor engine lives in
:mod:`repro.core.uniproc`.

``core`` owns the decision engines (see rule R003's layer map); the
workload generator and overhead measurement both need :class:`UniTask`
without reaching *up* into ``sim``.  This module keeps the historical
``repro.sim.uniproc`` import path working.
"""

from __future__ import annotations

from ..core.uniproc import (
    CBSServer,
    UniJob,
    UniprocResult,
    UniprocSimulator,
    UniTask,
    simulate_uniproc,
)

__all__ = [
    "UniTask",
    "UniJob",
    "CBSServer",
    "UniprocResult",
    "UniprocSimulator",
    "simulate_uniproc",
]
