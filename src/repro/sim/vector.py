"""Struct-of-arrays PD² kernel: key-order placement instead of slot loops.

:class:`VectorPD2Simulator` is the third (fastest) tier of the simulator
stack — reference (:class:`~repro.core.quantum.QuantumSimulator`) →
packed-key fastpath (:mod:`repro.sim.fastpath`) → this kernel — and like
the fastpath it is *decision-identical* to the reference: same
allocations (slot, processor, task, subtask), same
:class:`~repro.sim.metrics.SimStats`, same miss records in the same
order.  The differential suite (``tests/test_fastpath_differential.py``,
``tests/test_sim_vector.py``) pins the identity three ways across
randomized systems including early release, nonzero phases, overload and
both affinity modes.

Why it is fast — the key-order placement theorem
------------------------------------------------

The reference runs one slot at a time: release eligible subtasks, pop
the ``M`` smallest PD² keys, assign processors, activate successors.
That is at least one Python heap operation per allocation *per slot*.
This kernel never iterates slots at all.  It rests on a structural fact
about slot-synchronous top-``M`` scheduling of chain-precedence unit
jobs (each subtask becomes eligible no earlier than one slot after its
predecessor runs, and PD² keys strictly increase along each chain):

    The slot-by-slot schedule equals the *greedy placement in global
    key order*: process all subtasks ordered by priority key; place
    each at the earliest slot ``>= max(eligibility,
    predecessor_slot + 1)`` that still has fewer than ``M`` occupants.

Proof sketch (induction over key order): when subtask ``x`` is placed at
slot ``s`` by the slot simulator, every slot in ``[avail(x), s)`` was
filled with ``M`` higher-priority subtasks — all of which precede ``x``
in key order, so greedy placement sees exactly the same occupancy and
picks the same ``s``; conversely a slot with spare capacity and an
eligible ``x`` always schedules ``x`` (the simulator schedules
``min(M, ready)`` subtasks).  The predecessor of ``x`` has a strictly
smaller key (pseudo-deadlines strictly increase along a task's chain for
weights ``<= 1``), so ``predecessor_slot`` is known when ``x`` is
processed.  Processor *numbers* are provably irrelevant to which
subtasks run in which slot, so the affinity assignment is reconstructed
afterwards by a linear fold (below) that reproduces the reference's
two-pass rule exactly.

That turns simulation into:

1. a **vectorized precompute** (numpy int64 end to end): the per-weight
   subtask parameter columns (:func:`repro.core.keytab._column_base`)
   are concatenated once per run; every chunk then derives releases,
   deadlines and *narrow* per-run int64 priority keys
   ``|deadline | 1-b | gd | row|`` for all rows in a handful of gathers
   and adds (key and release are affine in the job number).  Narrow keys
   induce the same order as :func:`repro.core.keytab.pack_key` over the
   live set (row rank = task-id rank; the index field is unnecessary
   because deadlines strictly increase within a task);
2. one **global argsort** over the key column;
3. a single **earliest-fit pass** in key order using a union-find
   "next slot with spare capacity" pointer array (path halving).  This
   *generalizes the fastpath's idle-slot skip*: the fastpath jumps the
   clock over empty slots only; here no slot is ever visited — an idle
   slot is simply never touched, and a full slot collapses to one
   pointer hop, so whole stable slot ranges are skipped in O(alpha)
   regardless of why they are stable;
4. **vectorized stats**: quanta, preemptions (gap within a job),
   per-job preemption counts, busy/idle and misses are computed from
   the placement columns with bincounts and shifted compares.  The
   placement pass and the processor fold (a single bitmask scan in
   continuations-first slot order) are the only per-allocation Python
   loops left.

The hyperperiod memo (:mod:`repro.sim.cache`) composes by *chunking*:
when the memo preconditions hold (synchronous system, no trace, memoing
enabled, ``2·lcm < horizon``) the kernel runs one hyperperiod per chunk,
carrying exact per-task state (live subtask, eligibility, affinity)
across boundaries, and speaks the same :class:`~repro.sim.cache.CycleLog`
protocol as the fastpath — signatures and deltas are constructed
identically, so :data:`~repro.sim.cache.HYPERPERIOD_CACHE` entries are
shared between both kernels in either direction.

Everything is exact integer arithmetic: every numpy array in this module
is int64 (or bool), enforced by staticcheck rule R001, which gates this
file to integer dtypes and flags any float dtype or true division.

Use :func:`repro.sim.quantum.simulate_pfair`, which dispatches here
automatically when :func:`supports` accepts the configuration and the
toggle (``--no-vector`` / ``REPRO_NO_VECTOR``, :mod:`repro.util.toggles`)
is on, falling back vector → fastpath → reference.
"""

from __future__ import annotations

from math import lcm
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.keytab import _column_base
from ..core.priority import PD2Priority, PriorityPolicy
from ..core.task import PeriodicTask, PfairTask
from .metrics import DeadlineMiss, SimStats, TaskStats
from .quantum import DeadlineMissError, SimResult
from .trace import ScheduleTrace

__all__ = ["VectorPD2Simulator", "supports"]

#: Largest number of precomputed subtasks per chunk before the kernel
#: bows out (memory gate; the fastpath handles what falls through).
MAX_CHUNK_SUBTASKS = 4_000_000

#: Largest chunk length in slots: the placement pass allocates the
#: union-find pointer array and the occupancy countdown per slot.  Very
#: long sparse horizons fall through to the fastpath's idle-slot skip.
MAX_CHUNK_SLOTS = 4_000_000

#: Narrow keys must fit a signed int64 lane below the pad sentinel.
MAX_KEY_BITS = 62

#: ``_PAD_KEY`` sorts after every real narrow key, so the per-row pad
#: items (which carry the previous chunk's state) are never placed.
_PAD_KEY = 1 << 62


def _key_layout(tasks: List[PfairTask],
                horizon: int) -> Tuple[int, int, int, int]:
    """``(dbias, gdbits, rowbits, total_bits)`` of the narrow key layout.

    Narrow keys are built per run: ``((deadline - t0 + dbias) << 1 | 1-b)
    << gdbits | gd_field) << rowbits | row``.  ``dbias`` keeps the
    deadline field nonnegative even for backlogged subtasks whose
    deadlines lie a whole horizon before the chunk start; ``gd_field``
    reverses ``D - d`` inside ``gdbits`` exactly like
    :func:`repro.core.keytab.pack_key` does in 40 bits.
    """
    max_p = max(t.period for t in tasks)
    max_ph = max(getattr(t, "phase", 0) for t in tasks)
    dbias = horizon + 2 * max_p + max_ph + 2
    dbits = (2 * dbias).bit_length()
    gdbits = (max_p + 2).bit_length()
    rowbits = max(1, (len(tasks) - 1).bit_length())
    return dbias, gdbits, rowbits, dbits + 1 + gdbits + rowbits


def _chunk_length(tasks: List[PfairTask], horizon: int,
                  use_memo: bool) -> int:
    """Slots simulated per kernel pass: one hyperperiod when the memo
    protocol applies (so boundaries can be sampled), else the horizon."""
    if use_memo and tasks and all(t.phase == 0 for t in tasks):
        period_lcm = lcm(*(t.period for t in tasks))
        if 2 * period_lcm < horizon:
            return period_lcm
    return horizon


def supports(
    tasks: List[PfairTask],
    processors: int,
    horizon: int,
    policy: Optional[PriorityPolicy],
    kwargs: dict,
) -> bool:
    """True when the vector kernel reproduces the reference exactly.

    Same closed world as the fastpath — periodic tasks, PD² priorities,
    fixed capacity, no arrivals or departures — plus the kernel's own
    resource gates: distinct task ids (the row field *is* the task-id
    tie-break), narrow keys that fit int64, and bounded per-chunk
    subtask and slot counts.  Anything else falls through to the
    fastpath or the reference via :func:`repro.sim.quantum.simulate_pfair`.
    """
    if policy is not None and type(policy) is not PD2Priority:
        return False
    if kwargs.get("arrivals") is not None:
        return False
    if kwargs.get("capacity_fn") is not None:
        return False
    if processors < 1:
        return False
    seen_ids = set()
    for t in tasks:
        if type(t) is not PeriodicTask or t.last_subtask is not None:
            return False
        if t.task_id in seen_ids:
            return False
        seen_ids.add(t.task_id)
    if not tasks or horizon <= 0:
        return True
    use_memo = (bool(kwargs.get("hyperperiod_memo", True))
                and not kwargs.get("trace", False))
    chunk = _chunk_length(tasks, horizon, use_memo)
    if chunk > MAX_CHUNK_SLOTS:
        return False
    total = sum((max(0, chunk - t.phase) // t.period + 2) * t.execution
                for t in tasks)
    if total > MAX_CHUNK_SUBTASKS:
        return False
    return _key_layout(tasks, horizon)[3] <= MAX_KEY_BITS


class VectorPD2Simulator:
    """Struct-of-arrays drop-in for :class:`~repro.sim.quantum.QuantumSimulator`.

    Accepts the same constructor surface as the fastpath (the unsupported
    hooks must be ``None``/absent — :func:`supports` gates dispatch) and
    produces an identical :class:`~repro.sim.quantum.SimResult`.
    """

    def __init__(
        self,
        tasks: Iterable[PfairTask],
        processors: int,
        policy: Optional[PriorityPolicy] = None,
        *,
        early_release: bool = False,
        trace: bool = False,
        on_miss: str = "record",
        arrivals: Optional[Iterable[Tuple[int, Callable[[], None]]]] = None,
        capacity_fn: Optional[Callable[[int], int]] = None,
        preserve_affinity: bool = True,
        hyperperiod_memo: bool = True,
    ) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        if on_miss not in ("record", "raise"):
            raise ValueError(f"on_miss must be 'record' or 'raise', got {on_miss!r}")
        if arrivals is not None or capacity_fn is not None:
            raise ValueError("vector kernel does not support arrivals/capacity_fn")
        self.tasks: List[PfairTask] = list(tasks)
        self.processors = processors
        self.policy = policy if policy is not None else PD2Priority()
        self.early_release = early_release
        self.on_miss = on_miss
        self.preserve_affinity = preserve_affinity
        self.hyperperiod_memo = hyperperiod_memo
        self.trace: Optional[ScheduleTrace] = ScheduleTrace() if trace else None
        self.stats = SimStats()
        self.last_scheduled_index: Dict[int, int] = {}

        n = self._n = len(self.tasks)
        # Rows ranked by task id: the narrow key's row field then breaks
        # ties exactly like the packed key's task-id field.
        order = sorted(range(n), key=lambda i: self.tasks[i].task_id)
        self._rows: List[PfairTask] = [self.tasks[i] for i in order]
        self._row_of: List[int] = [0] * n
        for rank, pos in enumerate(order):
            self._row_of[pos] = rank
        # Per-row scheduling state, carried across chunks — parallel
        # int64 columns.  ``_live`` is the first unscheduled subtask
        # (1-based); ``_elig`` its exact eligibility
        # ``max(static eligibility, predecessor_slot + 1)``.
        self._live = np.ones(n, dtype=np.int64)
        self._elig = np.array([getattr(t, "phase", 0) for t in self._rows],
                              dtype=np.int64)
        self._er: List[bool] = [bool(early_release or t.early_release)
                                for t in self._rows]
        # Per-row stats columns (materialized into TaskStats at the end).
        self._quanta = np.zeros(n, dtype=np.int64)
        self._pre = np.zeros(n, dtype=np.int64)
        self._migr = np.zeros(n, dtype=np.int64)
        self._jp: List[Dict[int, int]] = [{} for _ in range(n)]
        self._last_slot = np.full(n, -2, dtype=np.int64)  # -2 = never
        self._last_job = np.full(n, -1, dtype=np.int64)
        self._lp = np.full(n, -1, dtype=np.int64)         # last processor
        #: Rows in first-allocation order — the reference creates
        #: ``per_task`` entries on first scheduling, and dict equality in
        #: snapshots is order-blind but we reproduce insertion order
        #: anyway so serialized results match byte for byte.
        self._order_seen: List[int] = []
        self._fold_tab: Optional[List[Tuple[int, int]]] = None
        self._busy = 0
        self._idle = 0
        self._H = 0

    # -- main loop -----------------------------------------------------------

    def run(self, horizon: int) -> SimResult:
        """Simulate slots ``0 .. horizon-1`` and return the result."""
        if horizon < 0:
            raise ValueError("horizon must be nonnegative")
        tasks = self.tasks
        if self._n == 0 or horizon == 0:
            self._idle += self.processors * horizon
            self._materialize()
            return self._finalize(horizon)

        dbias, gdbits, rowbits, bits = _key_layout(tasks, horizon)
        if bits > MAX_KEY_BITS:
            raise ValueError(
                "task set overflows the narrow key layout; dispatch through "
                "repro.sim.quantum.simulate_pfair, which gates on supports()"
            )
        self._dbias = dbias
        self._gdbits = gdbits
        self._rowbits = rowbits
        ngd_mask = (1 << gdbits) - 1

        # Per-run static columns, concatenated across rows: the cached
        # per-weight job-0 parameter columns plus the shift-invariant
        # part of the narrow key (b-bit, group-deadline field, row).
        # Everything a chunk needs is then a gather plus an affine add.
        n = self._n
        rows = self._rows
        self._e_arr = np.array([t.execution for t in rows], dtype=np.int64)
        self._p_arr = np.array([t.period for t in rows], dtype=np.int64)
        self._ph_arr = np.array([getattr(t, "phase", 0) for t in rows],
                                dtype=np.int64)
        self._er_arr = np.array(self._er, dtype=bool)
        bases = [_column_base(t.execution, t.period) for t in rows]
        self._barr = np.zeros(n, dtype=np.int64)
        np.cumsum(self._e_arr[:-1], out=self._barr[1:])
        self._rel0c = np.concatenate([b[0] for b in bases])
        self._dl0c = np.concatenate([b[1] for b in bases])
        bbarc = np.concatenate([b[2] for b in bases])
        gddc = np.concatenate([b[3] for b in bases])
        ngdc = np.where(gddc < 0, ngd_mask, ngd_mask - 1 - gddc)
        rowf = np.repeat(np.arange(n, dtype=np.int64), self._e_arr)
        self._K0c = ((((self._dl0c << 1) | bbarc) << gdbits | ngdc)
                     << rowbits | rowf)
        self._KSH = 1 << (1 + gdbits + rowbits)

        use_memo = (self.hyperperiod_memo and self.trace is None
                    and all(t.phase == 0 for t in tasks))
        H = 0
        log = None
        if use_memo:
            period_lcm = lcm(*(t.period for t in tasks))
            if 2 * period_lcm < horizon:
                from .cache import CycleLog, hyperperiod_cache_key

                H = self._H = period_lcm
                log = CycleLog(hyperperiod_cache_key(self))

        t = 0
        while t < horizon:
            if log is not None and t > 0 and t % H == 0:
                # Hyperperiod boundary: same protocol, same signatures
                # and deltas as HyperperiodMemo on the fastpath.
                if self.stats.misses or bool((self._elig < t).any()):
                    log = None
                else:
                    sig = self._signature(t)
                    delta = log.probe(sig)
                    if delta is None:
                        prev = log.previous(sig)
                        if prev is not None:
                            delta = self._measure(t, *prev)
                            log.store(sig, delta)
                    if delta is not None:
                        cycles = (horizon - t) // (delta.cycles * H)
                        if cycles > 0:
                            t = self._apply(t, delta, cycles)
                        log = None
                        if t >= horizon:
                            break
                    else:
                        log.record(sig, t, self._snapshot())
                        if log.exhausted:
                            log = None
            t1 = min(t + H, horizon) if H else horizon
            self._simulate_chunk(t, t1)
            t = t1
        self._materialize()
        return self._finalize(horizon)

    # -- one chunk -----------------------------------------------------------

    def _simulate_chunk(self, t0: int, t1: int) -> None:
        """Place every subtask that can run in ``[t0, t1)`` and fold stats."""
        n = self._n
        M = self.processors
        chunk = t1 - t0
        rows = self._rows
        e_arr = self._e_arr
        live = self._live

        # -- precompute: one flat [pad, subtasks...] block per row -----------
        # Only jobs whose boundary subtask is released before the chunk
        # end can place anything (early release never crosses a job
        # boundary), plus the in-flight job of the live subtask; one
        # sentinel subtask past that carries the eligibility forward.
        jb = np.maximum((t1 - self._ph_arr - 1) // self._p_arr + 1, 0)
        hi = np.maximum(jb, (live - 1) // e_arr + 1) * e_arr + 1
        sizes = hi - live + 2          # block = pad + subtasks live..hi
        offs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=offs[1:])
        total = int(offs[n])
        pads = offs[:n]
        rowid = np.repeat(np.arange(n, dtype=np.int64), sizes)
        w = np.arange(total, dtype=np.int64) - np.repeat(pads, sizes)
        idxv = live[rowid] + w - 1     # pad -> live-1 (state overwritten)
        q, j = np.divmod(idxv - 1, e_arr[rowid])
        shift = q * self._p_arr[rowid] + self._ph_arr[rowid]
        g = self._barr[rowid] + j
        dl_ = self._dl0c[g] + shift
        nkey = self._K0c[g] + (shift + (self._dbias - t0)) * self._KSH
        # Slot-relative static eligibility; an ER mid-job successor is
        # eligible the moment its predecessor completes (the chain max in
        # the placement pass supplies ``predecessor_slot + 1``).
        el_ = np.where(self._er_arr[rowid] & (j > 0), 0,
                       self._rel0c[g] + shift) - t0
        np.maximum(el_, 0, out=el_)
        jobs = q + 1
        nkey[pads] = _PAD_KEY
        jobs[pads] = self._last_job
        el_[pads + 1] = np.maximum(self._elig - t0, 0)  # exact carried elig
        pl_l = [chunk] * total                          # chunk == unplaced
        for i3, v3 in zip(pads.tolist(), (self._last_slot - t0).tolist()):
            pl_l[i3] = v3

        # -- key-order earliest-fit placement (per-item loop #1) -------------
        # The union-find array stores the negated spare capacity for root
        # slots (< 0) and the next-candidate pointer for full ones; a
        # bottomless sink root past the chunk end absorbs overflow.
        order = np.argsort(nkey)
        ord_r = order[: total - n]     # pads sort last; skip them
        order_l = ord_r.tolist()
        el_o = el_[ord_r].tolist()
        uf = [-M] * chunk
        uf.append(-(1 << 60))
        for fi, a2 in zip(order_l, el_o):
            s = pl_l[fi - 1] + 1
            if a2 > s:
                s = a2
            if s >= chunk:
                continue
            v = uf[s]
            if v >= 0:                 # full: follow pointers, path-halving
                r2 = v
                while True:
                    v = uf[r2]
                    if v < 0:
                        break
                    uf[s] = v
                    s = r2
                    r2 = v
                s = r2
                if s >= chunk:
                    continue
                v = uf[s]
            pl_l[fi] = s
            v += 1
            uf[s] = s + 1 if not v else v

        pl = np.array(pl_l, dtype=np.int64)
        pl_o = pl[ord_r]
        placed_o = pl_o < chunk
        fi_k = ord_r[placed_o]         # placed allocations, in key order
        s_k = pl_o[placed_o]
        cont_k = pl[fi_k - 1] == s_k - 1

        # -- misses / canonical (slot, key) ordering -------------------------
        # Miss records, trace records and rank-procs all follow the
        # reference's (slot, key) emission order; the common fast path
        # (no misses, no trace, affinity fold) never needs the sort.
        raise_miss = None
        trace = self.trace
        miss_any = bool((s_k + t0 >= dl_[fi_k]).any())
        if miss_any or trace is not None or not self.preserve_affinity:
            o2 = np.lexsort((nkey[fi_k], s_k))
            fi_k = fi_k[o2]
            s_k = s_k[o2]
            cont_k = cont_k[o2]
            if miss_any:
                miss_pos = np.flatnonzero(s_k + t0 >= dl_[fi_k])
                if self.on_miss == "raise":
                    # The reference raises at the first late allocation;
                    # reconstruct its exact partial state.
                    cut = int(miss_pos[0])
                    fi_m = int(fi_k[cut])
                    raise_miss = DeadlineMiss(rows[int(rowid[fi_m])],
                                              int(idxv[fi_m]), int(dl_[fi_m]),
                                              int(pl[fi_m]) + t0 + 1)
                    fi_k = fi_k[:cut]
                    s_k = s_k[:cut]
                    cont_k = cont_k[:cut]
                else:
                    for pos in miss_pos.tolist():
                        fi = int(fi_k[pos])
                        self.stats.misses.append(DeadlineMiss(
                            rows[int(rowid[fi])], int(idxv[fi]),
                            int(dl_[fi]), int(pl[fi]) + t0 + 1))
        n_placed = len(fi_k)

        # -- processors: affinity fold or rank-within-slot -------------------
        r_all = rowid[fi_k]
        if self.preserve_affinity:
            pf_l = self._fold_affinity(fi_k, s_k, cont_k, pads, total)
            # Migrations, recovered vectorized: a continuation always
            # keeps its processor, so a changed processor with a real
            # predecessor is exactly the reference's migration event.
            pf_arr = np.array(pf_l, dtype=np.int64)
            pfm = pf_arr[fi_k - 1]
            mig_mask = (pfm >= 0) & (pf_arr[fi_k] != pfm)
            if mig_mask.any():
                self._migr += np.bincount(r_all[mig_mask], minlength=n)
        else:
            pf_l, mig = self._rank_procs(fi_k, s_k, pads, total)
            if mig:
                self._migr += np.bincount(
                    rowid[np.asarray(mig, dtype=np.int64)], minlength=n)

        # -- vectorized stat columns -----------------------------------------
        pre_mask = (~cont_k) & (jobs[fi_k] == jobs[fi_k - 1])
        k = np.bincount(r_all, minlength=n)
        newly = np.flatnonzero((self._quanta == 0) & (k > 0))
        if newly.size:
            # First-allocation order: the reference creates per_task
            # entries at the first (slot, key-rank) allocation.
            first = pads[newly] + 1
            ordn = np.lexsort((nkey[first], pl[first]))
            self._order_seen.extend(newly[ordn].tolist())
        self._quanta += k
        self._pre += np.bincount(r_all[pre_mask], minlength=n)
        if pre_mask.any():
            self._count_job_preemptions(r_all[pre_mask],
                                        jobs[fi_k][pre_mask])
        sched = k > 0
        last = pads + k                # row's last placed item (pad if none)
        self._last_slot = np.where(sched, pl[last] + t0, self._last_slot)
        self._last_job = np.where(sched, jobs[last], self._last_job)
        # pf_l[pad] carries the previous chunk's processor for idle rows.
        self._lp = np.fromiter(map(pf_l.__getitem__, last.tolist()),
                               dtype=np.int64, count=n)
        self._live = live + k
        self._elig = np.where(
            sched, np.maximum(el_[last + 1] + t0, pl[last] + t0 + 1),
            self._elig)

        if trace is not None:
            rec = trace.record
            s_t = (s_k + t0).tolist()
            r_t = r_all.tolist()
            i_t = idxv[fi_k].tolist()
            for i2, fi in enumerate(fi_k.tolist()):
                rec(s_t[i2], pf_l[fi], rows[r_t[i2]], i_t[i2])

        if raise_miss is None:
            self._busy += n_placed
            self._idle += M * chunk - n_placed
        else:
            # The reference charges busy/idle at the end of each slot, so
            # the raising slot is not charged.
            s_m = raise_miss.completed_at - 1 - t0
            nb = int(np.count_nonzero(s_k < s_m))
            self._busy += nb
            self._idle += M * s_m - nb
            self.stats.misses.append(raise_miss)
            self._materialize()
            raise DeadlineMissError(raise_miss)

    def _fold_affinity(
        self, fi_s: np.ndarray, s_arr: np.ndarray, cont: np.ndarray,
        pads: np.ndarray, total: int,
    ) -> List[int]:
        """Reconstruct the reference's two-pass processor assignment.

        The reference iterates each slot twice in key order: pass 1 lets
        continuations (ran in the previous slot) keep their processor —
        two continuations can never claim the same one — pass 2 gives
        everyone else their last processor if free, else the lowest-
        numbered free one (a migration, when the task ran before).  A
        single pass over the allocations sorted continuations-first
        within each slot is equivalent; a task's last processor is
        always its predecessor item's assignment (``pf[fi - 1]``), with
        the pad items carrying the previous chunk's processors, so the
        whole fold is one scan over flat lists with a free-set bitmask.

        Returns the per-item processor column as a plain list (indexed
        like the flat precompute arrays; ``-1`` where unplaced); the
        caller recovers migrations vectorized from the column.

        The caller may pass allocations in either key order or
        (slot, key) order: both are key-ascending within a slot, so the
        composite sort below lands on the same sequence either way.

        A continuation's processor is provably still free when it is
        reached (continuations come first and never collide), so the
        continuation case coincides with the keep-if-free rule and the
        per-item decision is a pure function of (free mask, previous
        processor) — precomputed as a flat lookup table for small
        machines, with the branchy scan kept as the general fallback.
        """
        # Stable radix sort on the small (slot, is-continuation) key —
        # ties resolve to input position, which is key-ascending.
        m = len(fi_s)
        order2 = np.argsort((s_arr * 2 + (~cont)).astype(np.int32),
                            kind="stable")
        fv = fi_s[order2].tolist()
        so = s_arr[order2]
        ns = np.empty(m, dtype=bool)   # slot-start flags (free-mask reset)
        if m:
            ns[0] = True
            ns[1:] = so[1:] != so[:-1]
        nsv = ns.tolist()
        pf_l = [-1] * total
        for i4, v4 in zip(pads.tolist(), self._lp.tolist()):
            pf_l[i4] = v4
        M = self.processors
        full = (1 << M) - 1
        if M <= 7:
            tab = self._fold_table()
            full_s = (full << 3) | 1    # table index base: (free << 3) + 1
            free = full_s
            for fi, b in zip(fv, nsv):
                if b:
                    free = full_s
                pf_l[fi], free = tab[free + pf_l[fi - 1]]
        else:
            free = full
            for fi, b in zip(fv, nsv):
                if b:
                    free = full
                p = pf_l[fi - 1]
                if p >= 0 and free >> p & 1:
                    free &= ~(1 << p)
                    pf_l[fi] = p
                else:
                    low = free & -free
                    free ^= low
                    pf_l[fi] = low.bit_length() - 1
        return pf_l

    def _fold_table(self) -> List[Tuple[int, int]]:
        """Decision table for :meth:`_fold_affinity` (``M <= 7`` only).

        Indexed by ``(free << 3) + prev_proc + 1``; each entry is
        ``(proc, next_index_base)`` where the stored base already has
        the new free mask shifted and offset, so the hot loop is a
        single add-and-index per allocation.
        """
        tab = self._fold_tab
        if tab is not None:
            return tab
        M = self.processors
        full = (1 << M) - 1
        tab = [(-1, 1)] * ((full << 3) + M + 2)
        for free in range(full + 1):
            for p in range(-1, M):
                if p >= 0 and free >> p & 1:
                    proc, nf = p, free & ~(1 << p)
                elif free:
                    low = free & -free
                    proc, nf = low.bit_length() - 1, free ^ low
                else:       # unreachable: at most M items per slot
                    proc, nf = -1, 0
                tab[(free << 3) + p + 1] = (proc, (nf << 3) | 1)
        self._fold_tab = tab
        return tab

    def _rank_procs(
        self, fi_s: np.ndarray, s_arr: np.ndarray, pads: np.ndarray,
        total: int,
    ) -> Tuple[List[int], List[int]]:
        """``preserve_affinity=False``: processor = rank within the slot.

        Requires the canonical (slot, key) allocation order — the caller
        always routes this mode through the lexsort.  Fully vectorized —
        migrations compare each allocation's processor with its
        predecessor's (the pad carries the previous chunk's last
        processor).  Same return contract as :meth:`_fold_affinity`.
        """
        m = len(fi_s)
        procs = np.zeros(m, dtype=np.int64)
        if m:
            newslot = np.empty(m, dtype=bool)
            newslot[0] = True
            newslot[1:] = s_arr[1:] != s_arr[:-1]
            starts = np.flatnonzero(newslot)
            reps = np.diff(np.append(starts, m))
            procs = np.arange(m, dtype=np.int64) - np.repeat(starts, reps)
        pf = np.full(total, -1, dtype=np.int64)
        pf[pads] = self._lp
        pf[fi_s] = procs
        prev_proc = pf[fi_s - 1]
        mig = fi_s[(prev_proc >= 0) & (procs != prev_proc)]
        return pf.tolist(), mig.tolist()

    def _count_job_preemptions(self, pr: np.ndarray, pj: np.ndarray) -> None:
        """Fold per-(row, job) preemption counts into the ``_jp`` dicts."""
        jp_all = self._jp
        jmin = int(pj.min())
        width = int(pj.max()) - jmin + 1
        if self._n * width <= (1 << 22):
            b = np.bincount(pr * width + (pj - jmin))
            nz = np.flatnonzero(b)
            # Row-major packing keeps nz grouped by row; within a row the
            # ascending job order matches the reference's chronological
            # dict insertion order, so a fresh dict is one dict(zip(...)).
            rws = nz // width
            jl = (nz % width + jmin).tolist()
            cl = b[nz].tolist()
            bounds = np.flatnonzero(rws[1:] != rws[:-1]) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [len(nz)]))
            for a, b2, r in zip(starts.tolist(), ends.tolist(),
                                rws[starts].tolist()):
                d2 = jp_all[r]
                if d2:
                    for i5 in range(a, b2):
                        j2 = jl[i5]
                        d2[j2] = d2.get(j2, 0) + cl[i5]
                else:
                    jp_all[r] = dict(zip(jl[a:b2], cl[a:b2]))
        elif int(pj.max()) < (1 << 40) and self._n < (1 << 22):
            packed = (pr << 40) | pj
            u, cts = np.unique(packed, return_counts=True)
            mask = (1 << 40) - 1
            for v, c3 in zip(u.tolist(), cts.tolist()):
                d2 = jp_all[v >> 40]
                j2 = v & mask
                d2[j2] = d2.get(j2, 0) + c3
        else:  # astronomically long horizons: count pairwise instead
            for rr, jj in zip(pr.tolist(), pj.tolist()):
                d2 = jp_all[rr]
                d2[jj] = d2.get(jj, 0) + 1

    # -- hyperperiod memo protocol (mirrors sim.cache.HyperperiodMemo) -------

    def _signature(self, now: int) -> tuple:
        """Boundary state per task in task order — tuple-identical to
        :meth:`repro.sim.cache.HyperperiodMemo._signature`, which is what
        makes cache entries interchangeable between kernels."""
        live = self._live
        elig = self._elig
        quanta = self._quanta
        last_slot = self._last_slot
        last_job = self._last_job
        lp = self._lp
        sig: List[tuple] = []
        for pos, t in enumerate(self.tasks):
            r = self._row_of[pos]
            jobs = now // t.period
            if quanta[r] == 0:
                aff: tuple = (None, None, None)
            else:
                aff = (now - int(last_slot[r]), int(lp[r]),
                       int(last_job[r]) - jobs)
            sig.append((int(elig[r]) - now,
                        int(live[r]) - jobs * t.execution) + aff)
        return tuple(sig)

    def _snapshot(self) -> tuple:
        rows = []
        for pos in range(self._n):
            r = self._row_of[pos]
            rows.append((int(self._quanta[r]), int(self._pre[r]),
                         int(self._migr[r])))
        return (tuple(rows), self._busy, self._idle)

    def _measure(self, now: int, t0: int, snap: tuple):
        from .cache import CycleDelta

        rows_s, busy0, idle0 = snap
        per_task = []
        for pos, t in enumerate(self.tasks):
            r = self._row_of[pos]
            q0, p0, m0 = rows_s[pos]
            jobs0 = t0 // t.period
            jp_rel = tuple(sorted(
                (j - jobs0, cnt)
                for j, cnt in self._jp[r].items() if j > jobs0
            ))
            per_task.append((int(self._quanta[r]) - q0,
                             int(self._pre[r]) - p0,
                             int(self._migr[r]) - m0, jp_rel))
        return CycleDelta((now - t0) // self._H, tuple(per_task),
                          self._busy - busy0, self._idle - idle0)

    def _apply(self, now: int, delta, c: int) -> int:
        """Tile ``delta`` ``c`` times: advance counters, live indices and
        eligibilities by whole cycles without simulating them."""
        L = delta.cycles * self._H
        shift = c * L
        for pos, t in enumerate(self.tasks):
            r = self._row_of[pos]
            dq, dp, dm, jp_rel = delta.per_task[pos]
            self._quanta[r] += c * dq
            self._pre[r] += c * dp
            self._migr[r] += c * dm
            jobs_per_cycle = L // t.period
            if jp_rel:
                jp = self._jp[r]
                jobs_now = now // t.period
                for i in range(c):
                    base = jobs_now + i * jobs_per_cycle
                    for j_rel, cnt in jp_rel:
                        jp[base + j_rel] = cnt
            self._last_slot[r] += shift
            self._last_job[r] += c * jobs_per_cycle
            self._live[r] += c * jobs_per_cycle * t.execution
            self._elig[r] += shift
        self._busy += c * delta.busy
        self._idle += c * delta.idle
        return now + shift

    # -- result assembly -----------------------------------------------------

    def _materialize(self) -> None:
        """Fold the per-row columns into the public ``SimStats``."""
        per_task = self.stats.per_task
        rows = self._rows
        for r in self._order_seen:
            per_task[rows[r].task_id] = TaskStats(
                quanta=int(self._quanta[r]),
                preemptions=int(self._pre[r]),
                migrations=int(self._migr[r]),
                job_preemptions=self._jp[r],
                last_slot=int(self._last_slot[r]),
                last_proc=int(self._lp[r]),
                last_job=int(self._last_job[r]),
            )
        self.stats.busy_quanta = self._busy
        self.stats.idle_quanta = self._idle
        for r in range(self._n):
            if self._live[r] > 1:
                self.last_scheduled_index[rows[r].task_id] = \
                    int(self._live[r]) - 1

    def _finalize(self, horizon: int) -> SimResult:
        """Sweep unfinished subtasks for misses (canonical key order, the
        same order all three simulators emit) and package the result."""
        self.stats.slots = horizon
        leftovers = []
        if self._n and horizon > 0:
            # Vectorized deadline prefilter: only materialize Subtask
            # objects for rows whose pending subtask can actually miss.
            i0 = self._live - 1
            q, j = np.divmod(i0, self._e_arr)
            dl = (self._dl0c[self._barr + j] + q * self._p_arr
                  + self._ph_arr)
            for r in np.flatnonzero(dl <= horizon).tolist():
                st = self._rows[r].subtask(int(self._live[r]))
                if st is not None and st.deadline <= horizon:
                    leftovers.append((self.policy.key(st), st))
        leftovers.sort(key=lambda kv: kv[0])
        for _, st in leftovers:
            miss = DeadlineMiss(st.task, st.index, st.deadline, None)
            self.stats.misses.append(miss)
            if self.on_miss == "raise":
                raise DeadlineMissError(miss)
        return SimResult(
            stats=self.stats,
            trace=self.trace,
            horizon=horizon,
            processors=self.processors,
            policy_name=self.policy.name,
            tasks=self.tasks,
        )
