"""Staggered quanta: offsetting slot boundaries across processors.

Aligned quanta make every processor hit the memory bus at the same
instant (all context switches happen together); a known practical
variant — studied by Holman & Anderson for bus-contention smoothing —
*staggers* processor ``j``'s slot boundaries by ``j·q/M`` ticks.  Like
the variable-length quanta of :mod:`repro.sim.varquantum`, staggering
breaks the alignment Pfair's optimality proof assumes: a subtask released
at tick ``r·q`` may have to wait up to ``q·(M−1)/M`` ticks for *some*
processor's boundary, and one started at the last boundary before its
deadline overshoots it by a sub-quantum amount.

This simulator measures that overshoot.  Dispatch: at each processor's
own boundary, the highest-priority (PD²) subtask whose release tick has
passed is started and runs one full quantum.  The empirical finding
(``benchmarks/bench_ext_staggered.py``): misses occur on fully loaded
sets, with tardiness strictly below one quantum — and they vanish when
one slot of slack per period exists (total weight below M by one of the
lightest task's weight's worth), matching the intuition that staggering
costs at most a boundary's worth of displacement.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..core.priority import PD2Priority, PriorityPolicy
from ..core.task import PfairTask, Subtask
from .engine import EventQueue

__all__ = ["StaggeredResult", "StaggeredSimulator", "simulate_staggered"]


@dataclass
class StaggeredResult:
    """Outcome of a staggered-quanta run (times in ticks)."""

    horizon: int
    processors: int
    quantum: int
    offsets: Tuple[int, ...]
    completions: int = 0
    misses: List[Tuple[str, int, int, int]] = field(default_factory=list)

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    @property
    def max_tardiness_ticks(self) -> int:
        return max((c - d for _, _, d, c in self.misses), default=0)


class StaggeredSimulator:
    """PD² dispatching on per-processor staggered slot grids.

    ``offsets`` gives processor ``j``'s boundary phase in ticks
    (default: ``j * quantum // processors``, the even stagger).  Each
    dispatch occupies exactly one quantum starting at a boundary.
    """

    def __init__(self, tasks: Iterable[PfairTask], processors: int,
                 quantum: int, *,
                 offsets: Optional[Iterable[int]] = None,
                 policy: Optional[PriorityPolicy] = None) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        if quantum < 1:
            raise ValueError("quantum must be at least one tick")
        self.tasks = list(tasks)
        self.processors = processors
        self.quantum = quantum
        if offsets is None:
            self.offsets = tuple(j * quantum // processors
                                 for j in range(processors))
        else:
            self.offsets = tuple(offsets)
            if len(self.offsets) != processors:
                raise ValueError("need one offset per processor")
            if any(not 0 <= o < quantum for o in self.offsets):
                raise ValueError("offsets must lie in [0, quantum)")
        self.policy = policy if policy is not None else PD2Priority()

    def run(self, horizon: int) -> StaggeredResult:
        q = self.quantum
        res = StaggeredResult(horizon=horizon, processors=self.processors,
                              quantum=q, offsets=self.offsets)
        events: EventQueue = EventQueue()
        ready: List[Tuple[object, int, Subtask]] = []
        seq = 0
        #: Processors idle at their *next* boundary; (boundary_time, proc).
        idle: List[Tuple[int, int]] = []

        def activate(task: PfairTask, index: int, lower_bound: int) -> None:
            st = task.subtask(index)
            if st is None:
                return
            events.push(max(st.eligible * q, lower_bound), ("release", st))

        def next_boundary(proc: int, after: int) -> int:
            off = self.offsets[proc]
            if after <= off:
                return off
            k = -(-(after - off) // q)
            return off + k * q

        for task in self.tasks:
            activate(task, 1, 0)
        for proc in range(self.processors):
            heapq.heappush(idle, (next_boundary(proc, 0), proc))

        while True:
            # The next instant anything can happen: an event, or an idle
            # processor's boundary (only useful if work is ready by then).
            t_event = events.peek_time()
            t_bound = idle[0][0] if idle else None
            candidates = [c for c in (t_event, t_bound) if c is not None]
            if not candidates:
                break
            now = min(candidates)
            if now >= horizon:
                break
            while events and events.peek_time() <= now:
                for payload in events.pop_at(events.peek_time()):
                    kind = payload[0]
                    if kind == "complete":
                        _, proc, st, finish = payload
                        res.completions += 1
                        if finish > st.deadline * q:
                            res.misses.append((st.task.name, st.index,
                                               st.deadline * q, finish))
                        heapq.heappush(
                            idle, (next_boundary(proc, finish), proc))
                        activate(st.task, st.index + 1, finish)
                    else:
                        _, st = payload
                        seq += 1
                        heapq.heappush(ready,
                                       (self.policy.key(st), seq, st))
            # Dispatch every idle processor whose boundary has arrived.
            while idle and ready and idle[0][0] <= now:
                boundary, proc = heapq.heappop(idle)
                _, _, st = heapq.heappop(ready)
                finish = boundary + q
                events.push(finish, ("complete", proc, st, finish))
            # An idle processor whose boundary passed with no work waits
            # for the next event, then resumes at the boundary after it.
            if idle and not ready and idle[0][0] <= now:
                nxt = events.peek_time()
                if nxt is None:
                    break
                refreshed = [(next_boundary(p, nxt), p)
                             for (b, p) in idle if b <= now]
                kept = [(b, p) for (b, p) in idle if b > now]
                idle = kept + refreshed
                heapq.heapify(idle)
        return res


def simulate_staggered(tasks: Iterable[PfairTask], processors: int,
                       quantum: int, horizon: int, **kwargs: object
                       ) -> StaggeredResult:
    """One-call convenience wrapper."""
    return StaggeredSimulator(tasks, processors, quantum, **kwargs).run(horizon)
